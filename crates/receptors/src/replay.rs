//! Trace recording and replay.
//!
//! The paper's §5 evaluations ran over *recorded* deployments (the Intel
//! lab trace, the Sonoma redwood logs) — captured once, cleaned many times
//! under different pipelines. This module provides the same workflow for
//! simulated receptors: wrap any [`Source`] in a [`Recorder`], run it, and
//! serialize the captured trace to JSON; a [`RecordedTrace`] replays
//! byte-identically later (or on another machine), so pipeline comparisons
//! are guaranteed to see the very same dirty data.

use std::sync::{Arc, Mutex};

use serde_json::{json, Value as Json};

use esp_stream::{ScriptedSource, Source};
use esp_types::{Batch, DataType, EspError, Field, Result, Schema, Ts, Tuple, Value};

/// A captured source trace: one entry per poll, with the poll epoch and
/// the batch it returned.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordedTrace {
    /// (poll epoch, batch) pairs in poll order.
    pub entries: Vec<(Ts, Batch)>,
}

impl RecordedTrace {
    /// Total tuples recorded.
    pub fn len(&self) -> usize {
        self.entries.iter().map(|(_, b)| b.len()).sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialize to a self-describing JSON document.
    pub fn to_json(&self) -> String {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|(ts, batch)| {
                json!({
                    "epoch_ms": ts.as_millis(),
                    "tuples": batch.iter().map(tuple_to_json).collect::<Vec<Json>>(),
                })
            })
            .collect();
        serde_json::to_string_pretty(&json!({ "version": 1, "entries": entries }))
            .expect("trace serializes")
    }

    /// Parse a trace document produced by [`RecordedTrace::to_json`].
    pub fn from_json(text: &str) -> Result<RecordedTrace> {
        let doc: Json = serde_json::from_str(text)
            .map_err(|e| EspError::Config(format!("invalid trace document: {e}")))?;
        let entries = doc["entries"]
            .as_array()
            .ok_or_else(|| EspError::Config("trace document missing 'entries'".into()))?;
        let mut out = RecordedTrace::default();
        for e in entries {
            let ts = Ts::from_millis(
                e["epoch_ms"]
                    .as_u64()
                    .ok_or_else(|| EspError::Config("entry missing epoch_ms".into()))?,
            );
            let tuples = e["tuples"]
                .as_array()
                .ok_or_else(|| EspError::Config("entry missing tuples".into()))?
                .iter()
                .map(tuple_from_json)
                .collect::<Result<Batch>>()?;
            out.entries.push((ts, tuples));
        }
        Ok(out)
    }

    /// Turn the trace back into a replayable [`Source`].
    pub fn into_source(self, name: impl Into<String>) -> ScriptedSource {
        ScriptedSource::new(name, self.entries)
    }
}

/// Records everything a wrapped source produces, via a shared handle that
/// survives the source being moved into a processor.
#[derive(Clone, Default)]
pub struct Recorder {
    trace: Arc<Mutex<RecordedTrace>>,
}

impl Recorder {
    /// A fresh recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Wrap `source`; everything it emits is recorded here.
    pub fn wrap(&self, source: Box<dyn Source>) -> Box<dyn Source> {
        Box::new(RecordingSource {
            inner: source,
            trace: Arc::clone(&self.trace),
        })
    }

    /// Snapshot the trace recorded so far.
    pub fn snapshot(&self) -> RecordedTrace {
        self.trace.lock().expect("recorder lock").clone()
    }
}

struct RecordingSource {
    inner: Box<dyn Source>,
    trace: Arc<Mutex<RecordedTrace>>,
}

impl Source for RecordingSource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn poll(&mut self, epoch: Ts) -> Result<Batch> {
        let batch = self.inner.poll(epoch)?;
        self.trace
            .lock()
            .expect("recorder lock")
            .entries
            .push((epoch, batch.clone()));
        Ok(batch)
    }
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => json!({ "t": "null" }),
        Value::Bool(b) => json!({ "t": "bool", "v": b }),
        Value::Int(i) => json!({ "t": "int", "v": i }),
        Value::Float(f) => json!({ "t": "float", "v": f }),
        Value::Str(s) => json!({ "t": "str", "v": s.as_ref() }),
        Value::Ts(ts) => json!({ "t": "ts", "v": ts.as_millis() }),
    }
}

fn value_from_json(j: &Json) -> Result<Value> {
    let t = j["t"]
        .as_str()
        .ok_or_else(|| EspError::Config("value missing tag".into()))?;
    Ok(match t {
        "null" => Value::Null,
        "bool" => Value::Bool(j["v"].as_bool().unwrap_or(false)),
        "int" => Value::Int(
            j["v"]
                .as_i64()
                .ok_or_else(|| EspError::Config("bad int value".into()))?,
        ),
        "float" => Value::Float(
            j["v"]
                .as_f64()
                .ok_or_else(|| EspError::Config("bad float value".into()))?,
        ),
        "str" => Value::str(
            j["v"]
                .as_str()
                .ok_or_else(|| EspError::Config("bad str value".into()))?,
        ),
        "ts" => Value::Ts(Ts::from_millis(
            j["v"]
                .as_u64()
                .ok_or_else(|| EspError::Config("bad ts value".into()))?,
        )),
        other => return Err(EspError::Config(format!("unknown value tag '{other}'"))),
    })
}

fn datatype_name(d: DataType) -> &'static str {
    match d {
        DataType::Bool => "bool",
        DataType::Int => "int",
        DataType::Float => "float",
        DataType::Str => "str",
        DataType::Ts => "ts",
        DataType::Any => "any",
    }
}

fn datatype_from_name(s: &str) -> Result<DataType> {
    Ok(match s {
        "bool" => DataType::Bool,
        "int" => DataType::Int,
        "float" => DataType::Float,
        "str" => DataType::Str,
        "ts" => DataType::Ts,
        "any" => DataType::Any,
        other => return Err(EspError::Config(format!("unknown data type '{other}'"))),
    })
}

fn tuple_to_json(t: &Tuple) -> Json {
    let fields: Vec<Json> = t
        .schema()
        .fields()
        .iter()
        .zip(t.values())
        .map(|(f, v)| {
            json!({
                "name": f.name,
                "type": datatype_name(f.data_type),
                "value": value_to_json(v),
            })
        })
        .collect();
    json!({ "ts_ms": t.ts().as_millis(), "fields": fields })
}

fn tuple_from_json(j: &Json) -> Result<Tuple> {
    let ts = Ts::from_millis(
        j["ts_ms"]
            .as_u64()
            .ok_or_else(|| EspError::Config("tuple missing ts_ms".into()))?,
    );
    let fields = j["fields"]
        .as_array()
        .ok_or_else(|| EspError::Config("tuple missing fields".into()))?;
    let mut schema_fields = Vec::with_capacity(fields.len());
    let mut values = Vec::with_capacity(fields.len());
    for f in fields {
        let name = f["name"]
            .as_str()
            .ok_or_else(|| EspError::Config("field missing name".into()))?;
        let dt = datatype_from_name(
            f["type"]
                .as_str()
                .ok_or_else(|| EspError::Config("field missing type".into()))?,
        )?;
        schema_fields.push(Field::new(name, dt));
        values.push(value_from_json(&f["value"])?);
    }
    // Intern: without this every replayed tuple carries a fresh
    // `Arc<Schema>`, defeating the pointer-identity caches downstream
    // (granule injector, chunk builders, slot-compiled plans).
    let schema = esp_types::registry::intern(&Schema::new(schema_fields)?);
    Tuple::new(schema, ts, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rfid::ShelfScenario;
    use esp_types::TimeDelta;

    #[test]
    fn record_then_replay_is_identical() {
        let scenario = ShelfScenario::paper(33);
        let recorder = Recorder::new();
        let (_, src) = scenario.sources().remove(0);
        let mut wrapped = recorder.wrap(src);
        // Drive it directly for 20 polls.
        let mut t = Ts::ZERO;
        let mut live: Vec<Batch> = Vec::new();
        for _ in 0..20 {
            live.push(wrapped.poll(t).unwrap());
            t += TimeDelta::from_millis(200);
        }
        // Replay from the snapshot.
        let trace = recorder.snapshot();
        assert_eq!(trace.entries.len(), 20);
        let mut replay = trace.clone().into_source("replay");
        let mut t = Ts::ZERO;
        for want in &live {
            let got = replay.poll(t).unwrap();
            assert_eq!(&got, want);
            t += TimeDelta::from_millis(200);
        }
    }

    #[test]
    fn json_round_trip_preserves_the_trace() {
        let scenario = ShelfScenario::paper(7);
        let recorder = Recorder::new();
        let (_, src) = scenario.sources().remove(0);
        let mut wrapped = recorder.wrap(src);
        for i in 0..10u64 {
            wrapped.poll(Ts::from_millis(i * 200)).unwrap();
        }
        let trace = recorder.snapshot();
        let json = trace.to_json();
        let parsed = RecordedTrace::from_json(&json).unwrap();
        assert_eq!(parsed, trace);
        assert!(!parsed.is_empty());
    }

    #[test]
    fn replayed_tuples_share_one_interned_schema() {
        let scenario = ShelfScenario::paper(7);
        let recorder = Recorder::new();
        let (_, src) = scenario.sources().remove(0);
        let mut wrapped = recorder.wrap(src);
        for i in 0..10u64 {
            wrapped.poll(Ts::from_millis(i * 200)).unwrap();
        }
        let json = recorder.snapshot().to_json();
        let parsed = RecordedTrace::from_json(&json).unwrap();
        let tuples: Vec<&Tuple> = parsed.entries.iter().flat_map(|(_, b)| b.iter()).collect();
        assert!(tuples.len() > 1);
        for t in &tuples {
            assert!(
                std::sync::Arc::ptr_eq(t.schema(), tuples[0].schema()),
                "decoded tuples must share the interned schema Arc"
            );
        }
    }

    #[test]
    fn all_value_kinds_round_trip() {
        let schema = Schema::builder()
            .field("b", DataType::Bool)
            .field("i", DataType::Int)
            .field("f", DataType::Float)
            .field("s", DataType::Str)
            .field("t", DataType::Ts)
            .field("n", DataType::Any)
            .build()
            .unwrap();
        let tuple = Tuple::new(
            schema,
            Ts::from_millis(123),
            vec![
                Value::Bool(true),
                Value::Int(-9),
                Value::Float(2.5),
                Value::str("hello"),
                Value::Ts(Ts::from_secs(4)),
                Value::Null,
            ],
        )
        .unwrap();
        let trace = RecordedTrace {
            entries: vec![(Ts::from_millis(123), vec![tuple])],
        };
        let parsed = RecordedTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(RecordedTrace::from_json("{").is_err());
        assert!(RecordedTrace::from_json("{\"version\":1}").is_err());
        assert!(RecordedTrace::from_json(
            "{\"entries\":[{\"epoch_ms\":0,\"tuples\":[{\"ts_ms\":0,\"fields\":[{\"name\":\"x\",\"type\":\"martian\",\"value\":{\"t\":\"null\"}}]}]}]}"
        )
        .is_err());
    }
}
