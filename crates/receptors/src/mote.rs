//! Wireless sensor mote simulation.
//!
//! A [`MoteSource`] samples an environment model at a fixed period, adds
//! sensor noise, optionally *fails dirty* (keeps reporting, with readings
//! drifting away from reality — §5.1: 8 of 33 Sonoma motes failed and
//! "continued to report readings that slowly rose to above 100 °C"),
//! frames each sample to bytes ([`crate::wire`]) and sends it through a
//! lossy [`Channel`]; the receiving edge decodes surviving frames back into
//! tuples. Loss and corruption therefore happen to *bytes on the air*, as
//! in the real deployments.

use std::sync::Arc;

use esp_stream::Source;
use esp_types::{
    well_known, Batch, ReceptorId, Result, SampleRateHandle, Schema, TimeDelta, Ts, Tuple, Value,
};

use crate::channel::{Channel, Delivery};
use crate::wire::{self, Reading};

/// A deterministic model of the physical quantity a mote senses.
pub trait EnvModel: Send + Sync {
    /// The true value at `mote`'s location at time `ts`.
    fn value(&self, mote: ReceptorId, ts: Ts) -> f64;
}

impl<F: Fn(ReceptorId, Ts) -> f64 + Send + Sync> EnvModel for F {
    fn value(&self, mote: ReceptorId, ts: Ts) -> f64 {
        self(mote, ts)
    }
}

/// Fail-dirty behaviour: after `onset`, the mote's reported value ramps
/// linearly away from reality at `drift_per_hour`, saturating at
/// `ceiling` — the signature seen in both the Intel-lab and Sonoma traces.
#[derive(Debug, Clone, Copy)]
pub struct FailDirty {
    /// When the sensor fails.
    pub onset: Ts,
    /// Drift rate (units per hour) applied after onset.
    pub drift_per_hour: f64,
    /// The reading saturates here.
    pub ceiling: f64,
}

impl FailDirty {
    fn apply(&self, ts: Ts, healthy: f64) -> f64 {
        if ts < self.onset {
            return healthy;
        }
        let hours = (ts - self.onset).as_secs_f64() / 3600.0;
        (healthy + self.drift_per_hour * hours).min(self.ceiling)
    }
}

/// Battery-voltage channel: voltage tracks the *true* ambient temperature
/// (battery chemistry responds to the environment, not to the sensor), so
/// when a temperature sensor fails dirty the two channels diverge — the
/// correlation a BBQ-style model stage (paper §6.3.1) exploits.
#[derive(Debug, Clone, Copy)]
pub struct VoltageModel {
    /// Voltage at 0 °C.
    pub base_v: f64,
    /// Volts per °C of true ambient temperature.
    pub v_per_c: f64,
    /// Voltage measurement noise σ.
    pub noise_sd: f64,
}

impl Default for VoltageModel {
    fn default() -> VoltageModel {
        VoltageModel {
            base_v: 2.70,
            v_per_c: 0.008,
            noise_sd: 0.002,
        }
    }
}

/// Configuration for one mote.
pub struct MoteConfig {
    /// Device id.
    pub id: ReceptorId,
    /// Sampling period.
    pub sample_period: TimeDelta,
    /// Gaussian sensor-noise standard deviation.
    pub noise_sd: f64,
    /// Fail-dirty behaviour, if this mote fails.
    pub fail: Option<FailDirty>,
    /// RNG seed for the sensor noise.
    pub seed: u64,
    /// Output field name: [`well_known::TEMP`] or [`well_known::NOISE`].
    pub field: &'static str,
    /// When set, the mote co-samples battery voltage and emits
    /// `(receptor_id, temp, voltage)` tuples (dual-channel packets).
    pub voltage: Option<VoltageModel>,
}

impl MoteConfig {
    /// A plain temperature mote with no failure, no noise, 1 s sampling.
    pub fn simple(id: ReceptorId, seed: u64) -> MoteConfig {
        MoteConfig {
            id,
            sample_period: TimeDelta::from_secs(1),
            noise_sd: 0.0,
            fail: None,
            seed,
            field: well_known::TEMP,
            voltage: None,
        }
    }
}

/// A simulated mote: sensor + wire framing + lossy uplink, as an
/// [`esp_stream::Source`].
pub struct MoteSource {
    config: MoteConfig,
    env: Arc<dyn EnvModel>,
    channel: Box<dyn Channel>,
    rng: rand::rngs::StdRng,
    schema: Arc<Schema>,
    next_sample: Ts,
    name: String,
    sent: u64,
    delivered: u64,
    rate: SampleRateHandle,
}

impl MoteSource {
    /// Build a mote over an environment model and an uplink channel.
    pub fn new(
        config: MoteConfig,
        env: Arc<dyn EnvModel>,
        channel: Box<dyn Channel>,
    ) -> MoteSource {
        use rand::SeedableRng;
        let schema = if config.voltage.is_some() {
            well_known::temp_voltage_schema()
        } else {
            match config.field {
                well_known::NOISE => well_known::sound_schema(),
                _ => well_known::temp_schema(),
            }
        };
        let name = format!("mote-{}", config.id.0);
        let rate = SampleRateHandle::new(config.sample_period);
        MoteSource {
            rng: rand::rngs::StdRng::seed_from_u64(config.seed),
            env,
            channel,
            schema,
            next_sample: Ts::ZERO,
            name,
            sent: 0,
            delivered: 0,
            rate,
            config,
        }
    }

    /// The actuation handle controlling this mote's sample period
    /// (paper §5.3.1). Adjustments take effect at the next sample.
    pub fn actuation_handle(&self) -> SampleRateHandle {
        self.rate.clone()
    }

    /// Messages sent so far (before the channel).
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages that survived the channel so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    fn gaussian(&mut self, sd: f64) -> f64 {
        use rand::Rng;
        if sd <= 0.0 {
            return 0.0;
        }
        // Box–Muller, deterministic under the seed.
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * sd
    }

    /// Sample the sensor once at `ts` (noise + fail-dirty applied).
    fn sample(&mut self, ts: Ts) -> f64 {
        let healthy = self.env.value(self.config.id, ts);
        let value = healthy + self.gaussian(self.config.noise_sd);
        match &self.config.fail {
            Some(f) => f.apply(ts, value),
            None => value,
        }
    }

    /// Sample the battery-voltage channel at `ts`: a function of the TRUE
    /// environment, unaffected by the temperature sensor's failure.
    fn sample_voltage(&mut self, ts: Ts, vm: VoltageModel) -> f64 {
        let true_temp = self.env.value(self.config.id, ts);
        vm.base_v + vm.v_per_c * true_temp + self.gaussian(vm.noise_sd)
    }
}

impl Source for MoteSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, epoch: Ts) -> Result<Batch> {
        let mut out = Batch::new();
        while self.next_sample <= epoch {
            let ts = self.next_sample;
            self.next_sample += self.rate.period();
            let value = self.sample(ts);
            // Frame → channel → (maybe) decode at the edge.
            let reading = match self.config.voltage {
                Some(vm) => Reading::Dual {
                    receptor: self.config.id,
                    ts,
                    a: value,
                    b: self.sample_voltage(ts, vm),
                },
                None => Reading::Scalar {
                    receptor: self.config.id,
                    ts,
                    value,
                },
            };
            let frame = wire::encode(&reading);
            self.sent += 1;
            let frame = match self.channel.transmit() {
                Delivery::Lost => continue,
                Delivery::Corrupted => {
                    let mut bad = frame.to_vec();
                    let idx = bad.len() / 2;
                    bad[idx] ^= 0xff;
                    bytes::Bytes::from(bad)
                }
                Delivery::Delivered => frame,
            };
            // The edge silently drops corrupt frames (checksum), exactly
            // like the paper's out-of-the-box Point functionality.
            let Ok(decoded) = wire::decode(&frame) else {
                continue;
            };
            match decoded {
                Reading::Scalar {
                    receptor,
                    ts,
                    value,
                } => {
                    self.delivered += 1;
                    out.push(Tuple::new_unchecked(
                        Arc::clone(&self.schema),
                        ts,
                        vec![Value::Int(i64::from(receptor.0)), Value::Float(value)],
                    ));
                }
                Reading::Dual { receptor, ts, a, b } => {
                    self.delivered += 1;
                    out.push(Tuple::new_unchecked(
                        Arc::clone(&self.schema),
                        ts,
                        vec![
                            Value::Int(i64::from(receptor.0)),
                            Value::Float(a),
                            Value::Float(b),
                        ],
                    ));
                }
                _ => continue,
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{BernoulliChannel, PerfectChannel};

    fn flat_world() -> Arc<dyn EnvModel> {
        Arc::new(|_: ReceptorId, _: Ts| 20.0)
    }

    fn config(id: u32, fail: Option<FailDirty>) -> MoteConfig {
        MoteConfig {
            id: ReceptorId(id),
            sample_period: TimeDelta::from_secs(1),
            noise_sd: 0.0,
            fail,
            seed: id as u64,
            field: well_known::TEMP,
            voltage: None,
        }
    }

    #[test]
    fn samples_at_period_over_perfect_channel() {
        let mut m = MoteSource::new(config(1, None), flat_world(), Box::new(PerfectChannel));
        let batch = m.poll(Ts::from_secs(4)).unwrap();
        assert_eq!(batch.len(), 5, "samples at 0..=4s");
        assert_eq!(batch[0].get("temp"), Some(&Value::Float(20.0)));
        assert_eq!(batch[0].get("receptor_id"), Some(&Value::Int(1)));
        // Next poll resumes where it left off.
        let batch = m.poll(Ts::from_secs(6)).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(m.sent(), 7);
        assert_eq!(m.delivered(), 7);
    }

    #[test]
    fn fail_dirty_ramps_and_saturates() {
        let fail = FailDirty {
            onset: Ts::from_secs(3600),
            drift_per_hour: 40.0,
            ceiling: 120.0,
        };
        let mut cfg = config(2, Some(fail));
        cfg.sample_period = TimeDelta::from_mins(30);
        let mut m = MoteSource::new(cfg, flat_world(), Box::new(PerfectChannel));
        let batch = m.poll(Ts::from_secs(6 * 3600)).unwrap();
        let temps: Vec<f64> = batch
            .iter()
            .map(|t| t.get("temp").unwrap().as_f64().unwrap())
            .collect();
        // Healthy before onset.
        assert_eq!(temps[0], 20.0);
        assert_eq!(temps[2], 20.0); // t = 1h = onset boundary
                                    // Ramping after onset: +40 °C/h.
        assert!(
            (temps[4] - 60.0).abs() < 1e-9,
            "t=2h → 20+40 = 60, got {}",
            temps[4]
        );
        // Saturated at the ceiling by t=6h (20 + 40*5 = 220 > 120).
        assert_eq!(*temps.last().unwrap(), 120.0);
    }

    #[test]
    fn lossy_channel_reduces_delivered() {
        let mut m = MoteSource::new(
            config(3, None),
            flat_world(),
            Box::new(BernoulliChannel::new(3, 0.6, 0.0)),
        );
        let batch = m.poll(Ts::from_secs(999)).unwrap();
        assert_eq!(m.sent(), 1000);
        let rate = batch.len() as f64 / 1000.0;
        assert!((rate - 0.4).abs() < 0.06, "delivery rate {rate}");
    }

    #[test]
    fn corrupted_frames_dropped_at_edge() {
        let mut m = MoteSource::new(
            config(4, None),
            flat_world(),
            Box::new(BernoulliChannel::new(4, 0.0, 1.0)),
        );
        let batch = m.poll(Ts::from_secs(99)).unwrap();
        assert!(batch.is_empty(), "all frames corrupt → all dropped");
        assert_eq!(m.sent(), 100);
        assert_eq!(m.delivered(), 0);
    }

    #[test]
    fn noise_is_deterministic_under_seed() {
        let build = || {
            let mut cfg = config(5, None);
            cfg.noise_sd = 0.5;
            MoteSource::new(cfg, flat_world(), Box::new(PerfectChannel))
        };
        let a: Vec<Tuple> = build().poll(Ts::from_secs(50)).unwrap();
        let b: Vec<Tuple> = build().poll(Ts::from_secs(50)).unwrap();
        assert_eq!(a, b);
        // And the noise actually perturbs values.
        assert!(a
            .iter()
            .any(|t| t.get("temp").unwrap().as_f64().unwrap() != 20.0));
    }

    #[test]
    fn voltage_channel_tracks_truth_through_sensor_failure() {
        let fail = FailDirty {
            onset: Ts::from_secs(100),
            drift_per_hour: 3600.0, // +1 °C per second for a fast test
            ceiling: 200.0,
        };
        let mut cfg = config(9, Some(fail));
        cfg.voltage = Some(VoltageModel {
            base_v: 2.7,
            v_per_c: 0.01,
            noise_sd: 0.0,
        });
        let mut m = MoteSource::new(cfg, flat_world(), Box::new(PerfectChannel));
        let batch = m.poll(Ts::from_secs(300)).unwrap();
        let last = batch.last().unwrap();
        let temp = last.get("temp").unwrap().as_f64().unwrap();
        let volt = last.get("voltage").unwrap().as_f64().unwrap();
        assert!(temp > 100.0, "sensor failed dirty: {temp}");
        // Voltage still reflects the true 20 °C world: 2.7 + 0.01*20.
        assert!((volt - 2.9).abs() < 1e-9, "voltage {volt} tracks truth");
    }

    #[test]
    fn actuation_handle_changes_sample_rate_mid_run() {
        let mut m = MoteSource::new(config(10, None), flat_world(), Box::new(PerfectChannel));
        let handle = m.actuation_handle();
        // 1 Hz for the first 10 s: 11 samples (t = 0..=10).
        assert_eq!(m.poll(Ts::from_secs(10)).unwrap().len(), 11);
        // Actuate to 4 Hz: the next 10 s yield ~40 samples.
        handle.set_period(TimeDelta::from_millis(250));
        let n = m.poll(Ts::from_secs(20)).unwrap().len();
        assert!((36..=42).contains(&n), "actuated sample count {n}");
        // Relax back to 1 Hz.
        handle.set_period(TimeDelta::from_secs(1));
        let n = m.poll(Ts::from_secs(30)).unwrap().len();
        assert!((9..=11).contains(&n), "relaxed sample count {n}");
    }

    #[test]
    fn sound_field_uses_sound_schema() {
        let mut cfg = config(6, None);
        cfg.field = well_known::NOISE;
        let mut m = MoteSource::new(
            cfg,
            Arc::new(|_: ReceptorId, _: Ts| 500.0),
            Box::new(PerfectChannel),
        );
        let batch = m.poll(Ts::ZERO).unwrap();
        assert_eq!(batch[0].get("noise"), Some(&Value::Float(500.0)));
    }
}
