//! The §5.2 Sonoma redwood micro-climate scenario.
//!
//! 33 motes along the trunk of a redwood, sensing temperature every five
//! minutes and reporting over a lossy multi-hop network that delivered
//! only 40% of requested readings. Motes at nearby heights (< 1 ft apart)
//! form 2-node proximity groups; the application's spatial granule is the
//! altitude band.
//!
//! The synthetic micro-climate combines a diurnal cycle whose amplitude
//! grows toward the canopy (upper motes see more sun), a small altitude
//! lapse, and slow weather drift. Motes in the same pair sit at almost the
//! same height, so their true values are nearly identical — the property
//! Merge exploits.

use std::sync::Arc;

use esp_stream::Source;
use esp_types::{well_known, ReceptorId, TimeDelta, Ts};

use crate::channel::GilbertElliottChannel;
use crate::mote::{EnvModel, MoteConfig, MoteSource};
use crate::GroupSpec;

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct RedwoodConfig {
    /// Number of motes on the trunk (paper: 33).
    pub n_motes: usize,
    /// Sampling/reporting period (paper: 5 minutes).
    pub sample_period: TimeDelta,
    /// Long-run delivery rate of the multi-hop uplink (paper: 0.40).
    pub delivery_rate: f64,
    /// Mean loss-burst length in messages (multi-hop losses are bursty).
    pub mean_burst: f64,
    /// Sensor noise σ (°C).
    pub noise_sd: f64,
    /// Trunk height range instrumented, in metres.
    pub base_height_m: f64,
    /// Vertical spacing between successive pairs, in metres.
    pub pair_spacing_m: f64,
}

impl Default for RedwoodConfig {
    fn default() -> RedwoodConfig {
        RedwoodConfig {
            n_motes: 33,
            sample_period: TimeDelta::from_mins(5),
            delivery_rate: 0.40,
            mean_burst: 7.5,
            noise_sd: 0.15,
            base_height_m: 10.0,
            pair_spacing_m: 3.0,
        }
    }
}

/// The redwood micro-climate field.
#[derive(Debug, Clone)]
pub struct RedwoodWorld {
    config: RedwoodConfig,
}

impl RedwoodWorld {
    /// Build a world from explicit parameters.
    pub fn new(config: RedwoodConfig) -> RedwoodWorld {
        RedwoodWorld { config }
    }

    /// Height (metres) of mote `idx` (two motes per rung, < 1 ft apart).
    pub fn height_m(&self, idx: usize) -> f64 {
        let rung = idx / 2;
        let within = (idx % 2) as f64 * 0.25; // 25 cm apart within a pair
        self.config.base_height_m + rung as f64 * self.config.pair_spacing_m + within
    }

    /// The true temperature at height `h` metres at `ts`.
    pub fn temp_at(&self, h: f64, ts: Ts) -> f64 {
        let days = ts.as_secs_f64() / 86_400.0;
        let height_frac = (h - self.config.base_height_m)
            / (self.config.pair_spacing_m * ((self.config.n_motes / 2).max(1) as f64));
        // Diurnal swing grows toward the canopy; peak mid-afternoon.
        // Sonoma canopy swings are large (the paper's micro-climate study
        // motivation), which is what makes window lag cost accuracy.
        let amplitude = 7.0 + 5.0 * height_frac;
        let diurnal = amplitude * (std::f64::consts::TAU * (days - 0.125)).sin();
        // Slow multi-day weather drift.
        let weather = 2.0 * (std::f64::consts::TAU * days / 3.5).sin();
        // Mild lapse: higher is slightly cooler at the mean.
        12.0 + diurnal + weather - 0.02 * (h - self.config.base_height_m)
    }
}

impl EnvModel for RedwoodWorld {
    fn value(&self, mote: ReceptorId, ts: Ts) -> f64 {
        self.temp_at(self.height_m(mote.0 as usize), ts)
    }
}

/// The full scenario: world + motes + groups + ground truth.
#[derive(Debug, Clone)]
pub struct RedwoodScenario {
    world: RedwoodWorld,
    seed: u64,
}

impl RedwoodScenario {
    /// The paper's setup.
    pub fn paper(seed: u64) -> RedwoodScenario {
        RedwoodScenario::new(RedwoodConfig::default(), seed)
    }

    /// Explicit parameters.
    pub fn new(config: RedwoodConfig, seed: u64) -> RedwoodScenario {
        RedwoodScenario {
            world: RedwoodWorld { config },
            seed,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RedwoodConfig {
        &self.world.config
    }

    /// The world model.
    pub fn world(&self) -> &RedwoodWorld {
        &self.world
    }

    /// 2-node non-overlapping proximity groups by height (an odd final
    /// mote forms a singleton group, mirroring the paper's odd count).
    pub fn groups(&self) -> Vec<GroupSpec> {
        let n = self.world.config.n_motes;
        let mut groups = Vec::with_capacity(n.div_ceil(2));
        let mut i = 0;
        while i < n {
            let members: Vec<ReceptorId> =
                (i..n.min(i + 2)).map(|m| ReceptorId(m as u32)).collect();
            groups.push(GroupSpec {
                granule: format!("height-{}", groups.len()),
                members,
            });
            i += 2;
        }
        groups
    }

    /// Ground truth for a granule: mean true temperature of its members.
    pub fn granule_true_temp(&self, group_idx: usize, ts: Ts) -> f64 {
        let groups = self.groups();
        let members = &groups[group_idx].members;
        members
            .iter()
            .map(|m| self.world.value(*m, ts))
            .sum::<f64>()
            / members.len() as f64
    }

    /// Ground truth per mote (what a local log would record, minus noise).
    pub fn mote_true_temp(&self, mote: ReceptorId, ts: Ts) -> f64 {
        self.world.value(mote, ts)
    }

    /// Build the mote sources.
    pub fn sources(&self) -> Vec<(ReceptorId, Box<dyn Source>)> {
        let env: Arc<dyn EnvModel> = Arc::new(self.world.clone());
        (0..self.world.config.n_motes)
            .map(|i| {
                let id = ReceptorId(i as u32);
                let source = MoteSource::new(
                    MoteConfig {
                        id,
                        sample_period: self.world.config.sample_period,
                        noise_sd: self.world.config.noise_sd,
                        fail: None,
                        seed: self.seed.wrapping_add(i as u64),
                        field: well_known::TEMP,
                        voltage: None,
                    },
                    Arc::clone(&env),
                    Box::new(GilbertElliottChannel::with_yield(
                        self.seed.wrapping_add(1_000 + i as u64),
                        self.world.config.delivery_rate,
                        self.world.config.mean_burst,
                    )),
                );
                (id, Box::new(source) as Box<dyn Source>)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_plus_singleton_for_odd_counts() {
        let s = RedwoodScenario::paper(1);
        let groups = s.groups();
        assert_eq!(groups.len(), 17); // 16 pairs + 1 singleton
        assert!(groups[..16].iter().all(|g| g.members.len() == 2));
        assert_eq!(groups[16].members.len(), 1);
        // Non-overlapping.
        let mut all: Vec<u32> = groups
            .iter()
            .flat_map(|g| g.members.iter().map(|m| m.0))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..33).collect::<Vec<_>>());
    }

    #[test]
    fn pair_members_see_nearly_identical_temperatures() {
        let s = RedwoodScenario::paper(1);
        for rung in 0..16 {
            let (a, b) = (ReceptorId(rung * 2), ReceptorId(rung * 2 + 1));
            for hour in [0u64, 6, 12, 18] {
                let ts = Ts::from_secs(hour * 3600);
                let d = (s.mote_true_temp(a, ts) - s.mote_true_temp(b, ts)).abs();
                assert!(d < 0.1, "pair {rung} diverges by {d} at hour {hour}");
            }
        }
    }

    #[test]
    fn canopy_swings_more_than_base() {
        let s = RedwoodScenario::paper(1);
        let swing = |mote: u32| {
            let temps: Vec<f64> = (0..24)
                .map(|h| s.mote_true_temp(ReceptorId(mote), Ts::from_secs(h * 3600)))
                .collect();
            temps.iter().cloned().fold(f64::MIN, f64::max)
                - temps.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(swing(32) > swing(0), "canopy should swing more");
    }

    #[test]
    fn raw_epoch_yield_is_about_forty_percent() {
        let s = RedwoodScenario::paper(9);
        let mut sources = s.sources();
        let horizon = Ts::from_secs(86_400 * 2);
        let mut sent = 0usize;
        let mut got = 0usize;
        for (_, src) in &mut sources {
            let batch = src.poll(horizon).unwrap();
            got += batch.len();
            sent += (2 * 86_400 / 300 + 1) as usize;
        }
        let rate = got as f64 / sent as f64;
        assert!((rate - 0.40).abs() < 0.04, "epoch yield {rate}");
    }

    #[test]
    fn granule_truth_is_member_mean() {
        let s = RedwoodScenario::paper(1);
        let ts = Ts::from_secs(3600);
        let expected =
            (s.mote_true_temp(ReceptorId(0), ts) + s.mote_true_temp(ReceptorId(1), ts)) / 2.0;
        assert!((s.granule_true_temp(0, ts) - expected).abs() < 1e-12);
    }
}
