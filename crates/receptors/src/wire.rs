//! The simulated receptor wire format.
//!
//! Real receptors deliver readings over radios as framed bytes, and the
//! paper's RFID readers "provide Point functionality out of the box by
//! removing tags that fail a checksum" (§4). To keep that behaviour a real
//! code path, mote and RFID transports here encode every reading into a
//! small binary frame with a checksum; the receiving edge decodes frames
//! and silently drops corrupt ones, exactly like the hardware does.
//!
//! Frame layout (big-endian):
//!
//! ```text
//! magic     u16   0xE59C
//! kind      u8    0 = scalar, 1 = tag sighting, 2 = event, 3 = dual scalar
//! receptor  u32
//! ts_ms     u64
//! payload   (kind 0: f64) | (kind 1/2: u16 len + utf-8) | (kind 3: 2×f64)
//! checksum  u32   FNV-1a over everything before it
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use esp_types::{EspError, ReceptorId, Result, Ts};

const MAGIC: u16 = 0xE59C;

/// A decoded receptor reading.
#[derive(Debug, Clone, PartialEq)]
pub enum Reading {
    /// A scalar sample (temperature, sound level, …).
    Scalar {
        /// Producing device.
        receptor: ReceptorId,
        /// Sample time.
        ts: Ts,
        /// Sample value.
        value: f64,
    },
    /// An RFID tag sighting.
    Tag {
        /// Producing device.
        receptor: ReceptorId,
        /// Sighting time.
        ts: Ts,
        /// The tag id read.
        tag_id: String,
    },
    /// A discrete event report (X10 `"ON"`).
    Event {
        /// Producing device.
        receptor: ReceptorId,
        /// Event time.
        ts: Ts,
        /// Event payload.
        value: String,
    },
    /// Two co-sampled scalars in one packet (e.g. temperature + battery
    /// voltage — motes batch ADC channels to save radio time).
    Dual {
        /// Producing device.
        receptor: ReceptorId,
        /// Sample time.
        ts: Ts,
        /// First channel (temperature).
        a: f64,
        /// Second channel (voltage).
        b: f64,
    },
}

impl Reading {
    /// The producing device.
    pub fn receptor(&self) -> ReceptorId {
        match self {
            Reading::Scalar { receptor, .. }
            | Reading::Tag { receptor, .. }
            | Reading::Event { receptor, .. }
            | Reading::Dual { receptor, .. } => *receptor,
        }
    }

    /// The reading's timestamp.
    pub fn ts(&self) -> Ts {
        match self {
            Reading::Scalar { ts, .. }
            | Reading::Tag { ts, .. }
            | Reading::Event { ts, .. }
            | Reading::Dual { ts, .. } => *ts,
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for b in bytes {
        h ^= u32::from(*b);
        h = h.wrapping_mul(0x01000193);
    }
    h
}

/// Encode a reading into a checksummed frame.
pub fn encode(reading: &Reading) -> Bytes {
    let mut buf = BytesMut::with_capacity(32);
    buf.put_u16(MAGIC);
    match reading {
        Reading::Scalar {
            receptor,
            ts,
            value,
        } => {
            buf.put_u8(0);
            buf.put_u32(receptor.0);
            buf.put_u64(ts.as_millis());
            buf.put_f64(*value);
        }
        Reading::Tag {
            receptor,
            ts,
            tag_id,
        } => {
            buf.put_u8(1);
            buf.put_u32(receptor.0);
            buf.put_u64(ts.as_millis());
            buf.put_u16(tag_id.len() as u16);
            buf.put_slice(tag_id.as_bytes());
        }
        Reading::Event {
            receptor,
            ts,
            value,
        } => {
            buf.put_u8(2);
            buf.put_u32(receptor.0);
            buf.put_u64(ts.as_millis());
            buf.put_u16(value.len() as u16);
            buf.put_slice(value.as_bytes());
        }
        Reading::Dual { receptor, ts, a, b } => {
            buf.put_u8(3);
            buf.put_u32(receptor.0);
            buf.put_u64(ts.as_millis());
            buf.put_f64(*a);
            buf.put_f64(*b);
        }
    }
    let checksum = fnv1a(&buf);
    buf.put_u32(checksum);
    buf.freeze()
}

/// Decode one frame, verifying magic and checksum.
pub fn decode(frame: &Bytes) -> Result<Reading> {
    if frame.len() < 4 + 2 + 1 + 4 + 8 {
        return Err(EspError::Wire(format!(
            "frame too short ({} bytes)",
            frame.len()
        )));
    }
    let (body, check) = frame.split_at(frame.len() - 4);
    let mut check = check;
    let expected = check.get_u32();
    if fnv1a(body) != expected {
        return Err(EspError::Wire("checksum mismatch".into()));
    }
    let mut body = body;
    if body.get_u16() != MAGIC {
        return Err(EspError::Wire("bad magic".into()));
    }
    let kind = body.get_u8();
    let receptor = ReceptorId(body.get_u32());
    let ts = Ts::from_millis(body.get_u64());
    match kind {
        0 => {
            if body.remaining() != 8 {
                return Err(EspError::Wire(
                    "scalar frame with wrong payload size".into(),
                ));
            }
            Ok(Reading::Scalar {
                receptor,
                ts,
                value: body.get_f64(),
            })
        }
        1 | 2 => {
            if body.remaining() < 2 {
                return Err(EspError::Wire("string frame missing length".into()));
            }
            let len = body.get_u16() as usize;
            if body.remaining() != len {
                return Err(EspError::Wire("string frame length mismatch".into()));
            }
            let s = std::str::from_utf8(body.chunk())
                .map_err(|_| EspError::Wire("invalid utf-8 payload".into()))?
                .to_string();
            if kind == 1 {
                Ok(Reading::Tag {
                    receptor,
                    ts,
                    tag_id: s,
                })
            } else {
                Ok(Reading::Event {
                    receptor,
                    ts,
                    value: s,
                })
            }
        }
        3 => {
            if body.remaining() != 16 {
                return Err(EspError::Wire("dual frame with wrong payload size".into()));
            }
            let a = body.get_f64();
            let b = body.get_f64();
            Ok(Reading::Dual { receptor, ts, a, b })
        }
        k => Err(EspError::Wire(format!("unknown frame kind {k}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Reading> {
        vec![
            Reading::Scalar {
                receptor: ReceptorId(3),
                ts: Ts::from_millis(1500),
                value: 21.25,
            },
            Reading::Tag {
                receptor: ReceptorId(0),
                ts: Ts::from_secs(40),
                tag_id: "tag-1-7".into(),
            },
            Reading::Event {
                receptor: ReceptorId(9),
                ts: Ts::ZERO,
                value: "ON".into(),
            },
            Reading::Dual {
                receptor: ReceptorId(4),
                ts: Ts::from_secs(2),
                a: 21.5,
                b: 2.87,
            },
        ]
    }

    #[test]
    fn round_trips() {
        for r in samples() {
            let frame = encode(&r);
            assert_eq!(decode(&frame).unwrap(), r);
        }
    }

    #[test]
    fn corrupted_byte_fails_checksum() {
        for r in samples() {
            let frame = encode(&r);
            for i in 0..frame.len() {
                let mut bad = frame.to_vec();
                bad[i] ^= 0x40;
                let bad = Bytes::from(bad);
                assert!(
                    decode(&bad).is_err(),
                    "corruption at byte {i} of {r:?} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncated_frame_rejected() {
        let frame = encode(&samples()[0]);
        for cut in 0..frame.len() {
            let truncated = frame.slice(0..cut);
            assert!(decode(&truncated).is_err(), "truncation at {cut} accepted");
        }
    }

    #[test]
    fn empty_tag_id_round_trips() {
        let r = Reading::Tag {
            receptor: ReceptorId(1),
            ts: Ts::ZERO,
            tag_id: String::new(),
        };
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn accessors() {
        let r = samples().remove(0);
        assert_eq!(r.receptor(), ReceptorId(3));
        assert_eq!(r.ts(), Ts::from_millis(1500));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn scalar_round_trip(id in 0u32..1000, ms in 0u64..10_000_000, v in -1e9f64..1e9) {
                let r = Reading::Scalar {
                    receptor: ReceptorId(id),
                    ts: Ts::from_millis(ms),
                    value: v,
                };
                prop_assert_eq!(decode(&encode(&r)).unwrap(), r);
            }

            #[test]
            fn tag_round_trip(id in 0u32..1000, tag in "[a-z0-9-]{0,40}") {
                let r = Reading::Tag {
                    receptor: ReceptorId(id),
                    ts: Ts::ZERO,
                    tag_id: tag,
                };
                prop_assert_eq!(decode(&encode(&r)).unwrap(), r);
            }

            #[test]
            fn event_round_trip(id in 0u32..1000, ms in 0u64..10_000_000, value in "[A-Z]{1,16}") {
                let r = Reading::Event {
                    receptor: ReceptorId(id),
                    ts: Ts::from_millis(ms),
                    value,
                };
                prop_assert_eq!(decode(&encode(&r)).unwrap(), r);
            }

            #[test]
            fn dual_round_trip(
                id in 0u32..1000,
                ms in 0u64..10_000_000,
                a in -1e9f64..1e9,
                b in -1e9f64..1e9,
            ) {
                let r = Reading::Dual { receptor: ReceptorId(id), ts: Ts::from_millis(ms), a, b };
                prop_assert_eq!(decode(&encode(&r)).unwrap(), r);
            }

            #[test]
            fn single_bit_flip_rejected(
                kind in 0u8..4,
                id in 0u32..1000,
                ms in 0u64..10_000_000,
                v in -1e6f64..1e6,
                s in "[a-z0-9-]{0,12}",
                pos in any::<u16>(),
                bit in 0u8..8,
            ) {
                let r = match kind {
                    0 => Reading::Scalar { receptor: ReceptorId(id), ts: Ts::from_millis(ms), value: v },
                    1 => Reading::Tag { receptor: ReceptorId(id), ts: Ts::from_millis(ms), tag_id: s },
                    2 => Reading::Event { receptor: ReceptorId(id), ts: Ts::from_millis(ms), value: s },
                    _ => Reading::Dual { receptor: ReceptorId(id), ts: Ts::from_millis(ms), a: v, b: -v },
                };
                let frame = encode(&r);
                let idx = pos as usize % frame.len();
                let mut bad = frame.to_vec();
                bad[idx] ^= 1 << bit;
                let bad = Bytes::from(bad);
                prop_assert!(
                    decode(&bad).is_err(),
                    "bit {} of byte {} flipped in {:?} went undetected", bit, idx, r
                );
            }

            #[test]
            fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..64)) {
                let _ = decode(&Bytes::from(data));
            }
        }
    }
}
