//! The §4 RFID retail-shelf scenario.
//!
//! Two shelves, each watched by one reader polling at 5 Hz. Each shelf
//! holds 10 statically placed tags (5 near the antenna, 5 far) and 5
//! additional tagged items sit 9 feet out, relocated between the shelves
//! every 40 seconds. Detection is Bernoulli per poll with probabilities
//! calibrated to the paper's observations:
//!
//! * near/far tags on the reader's own shelf read at roughly the 60–80%
//!   rates reported for EPC Class-1 tags in a favourable setup;
//! * reader 0's antenna is *stronger* and overhears the other shelf's tags
//!   at a low per-poll rate — integrated over a 5 s smoothing window this
//!   produces the paper's "counts reported for shelf 0 were consistently
//!   4 to 5 items higher than reality" (§4.1), the error Arbitrate exists
//!   to fix;
//! * mobile items at 9 ft are hard to read (25%/poll) and slightly visible
//!   to the far reader, producing the "uneven portions" of Figure 3(d).
//!
//! Ground truth (`true_count`) is a pure function of time, so the scenario
//! needs no shared mutable world state.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use esp_stream::Source;
use esp_types::{well_known, Batch, ReceptorId, Result, Schema, TimeDelta, Ts, Tuple, Value};

use crate::GroupSpec;

/// Where a tag sits relative to its shelf's reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagPosition {
    /// 3 feet from the antenna.
    Near,
    /// 6 feet from the antenna.
    Far,
    /// 9 feet out, relocated between shelves every `relocate_every`.
    Mobile,
}

/// Scenario parameters (defaults reproduce the paper's setup).
#[derive(Debug, Clone)]
pub struct ShelfConfig {
    /// Number of shelves (= readers = proximity groups).
    pub n_shelves: usize,
    /// Static tags per shelf (half near, half far).
    pub static_tags_per_shelf: usize,
    /// Mobile tags shared between shelves.
    pub mobile_tags: usize,
    /// Relocation period of the mobile tags.
    pub relocate_every: TimeDelta,
    /// Reader poll period (5 Hz in the paper).
    pub sample_period: TimeDelta,
    /// Per-poll detection probability of a near tag by its own reader.
    pub p_near: f64,
    /// Per-poll detection probability of a far tag by its own reader.
    pub p_far: f64,
    /// Per-poll detection probability of a mobile tag by the shelf it is
    /// currently on.
    pub p_mobile_own: f64,
    /// Per-reader per-poll probability of reading a *static* tag on
    /// another shelf. Index = reader. Reader 0's antenna is stronger.
    pub overhear_static: Vec<f64>,
    /// Per-reader per-poll probability of reading a *mobile* tag currently
    /// on another shelf.
    pub overhear_mobile: Vec<f64>,
    /// Probability that a poll cycle is a *blackout* (interference, reader
    /// duty cycling): all detection probabilities are scaled down for the
    /// whole cycle. Blackouts are what make raw per-poll counts dip toward
    /// zero (Figure 3(b)) and restock alerts fire constantly.
    pub p_blackout: f64,
    /// Detection-probability multiplier during a blackout poll.
    pub blackout_factor: f64,
}

impl Default for ShelfConfig {
    fn default() -> ShelfConfig {
        ShelfConfig {
            n_shelves: 2,
            static_tags_per_shelf: 10,
            mobile_tags: 5,
            relocate_every: TimeDelta::from_secs(40),
            sample_period: TimeDelta::from_millis(200),
            p_near: 0.8,
            p_far: 0.6,
            p_mobile_own: 0.25,
            overhear_static: vec![0.025, 0.002],
            overhear_mobile: vec![0.02, 0.004],
            p_blackout: 0.2,
            blackout_factor: 0.12,
        }
    }
}

/// The shelf scenario: world model + reader factory + ground truth.
#[derive(Debug, Clone)]
pub struct ShelfScenario {
    config: ShelfConfig,
    seed: u64,
}

impl ShelfScenario {
    /// Build a scenario with the paper's defaults.
    pub fn paper(seed: u64) -> ShelfScenario {
        ShelfScenario::new(ShelfConfig::default(), seed)
    }

    /// Build a scenario from explicit parameters.
    pub fn new(config: ShelfConfig, seed: u64) -> ShelfScenario {
        ShelfScenario { config, seed }
    }

    /// The configuration.
    pub fn config(&self) -> &ShelfConfig {
        &self.config
    }

    /// The granule name for a shelf.
    pub fn granule_name(shelf: usize) -> String {
        format!("shelf{shelf}")
    }

    /// The proximity groups: one reader per shelf.
    pub fn groups(&self) -> Vec<GroupSpec> {
        (0..self.config.n_shelves)
            .map(|s| GroupSpec {
                granule: Self::granule_name(s),
                members: vec![ReceptorId(s as u32)],
            })
            .collect()
    }

    /// One reader source per shelf.
    pub fn sources(&self) -> Vec<(ReceptorId, Box<dyn Source>)> {
        (0..self.config.n_shelves)
            .map(|s| {
                let id = ReceptorId(s as u32);
                let src = RfidReaderSource {
                    reader: s,
                    id,
                    config: self.config.clone(),
                    rng: StdRng::seed_from_u64(self.seed.wrapping_add(s as u64)),
                    schema: well_known::rfid_schema(),
                    next_poll: Ts::ZERO,
                    name: format!("rfid-reader-{s}"),
                };
                (id, Box::new(src) as Box<dyn Source>)
            })
            .collect()
    }

    /// Which shelf the mobile tags are on at `ts`.
    pub fn mobile_shelf(&self, ts: Ts) -> usize {
        let period = self.config.relocate_every.as_millis().max(1);
        ((ts.as_millis() / period) as usize) % self.config.n_shelves
    }

    /// Ground truth: number of items physically on `shelf` at `ts`.
    pub fn true_count(&self, shelf: usize, ts: Ts) -> usize {
        let mobiles = if self.mobile_shelf(ts) == shelf {
            self.config.mobile_tags
        } else {
            0
        };
        self.config.static_tags_per_shelf + mobiles
    }

    /// Ground truth: the shelf a tag id is on at `ts`, if it exists.
    pub fn shelf_of_tag(&self, tag: &str, ts: Ts) -> Option<usize> {
        if let Some(rest) = tag.strip_prefix("tag-") {
            let shelf: usize = rest.split('-').next()?.parse().ok()?;
            return (shelf < self.config.n_shelves).then_some(shelf);
        }
        if tag.strip_prefix("mob-").is_some() {
            return Some(self.mobile_shelf(ts));
        }
        None
    }

    /// All tag ids that exist in the world.
    pub fn all_tags(&self) -> Vec<String> {
        let mut tags = Vec::new();
        for s in 0..self.config.n_shelves {
            for i in 0..self.config.static_tags_per_shelf {
                tags.push(format!("tag-{s}-{i}"));
            }
        }
        for m in 0..self.config.mobile_tags {
            tags.push(format!("mob-{m}"));
        }
        tags
    }
}

/// One simulated RFID reader.
struct RfidReaderSource {
    reader: usize,
    id: ReceptorId,
    config: ShelfConfig,
    rng: StdRng,
    schema: Arc<Schema>,
    next_poll: Ts,
    name: String,
}

impl RfidReaderSource {
    /// Per-poll detection probability of (shelf, position) by this reader.
    fn detection_p(&self, tag_shelf: usize, pos: TagPosition) -> f64 {
        let own = tag_shelf == self.reader;
        match (own, pos) {
            (true, TagPosition::Near) => self.config.p_near,
            (true, TagPosition::Far) => self.config.p_far,
            (true, TagPosition::Mobile) => self.config.p_mobile_own,
            (false, TagPosition::Mobile) => self
                .config
                .overhear_mobile
                .get(self.reader)
                .copied()
                .unwrap_or(0.0),
            (false, _) => self
                .config
                .overhear_static
                .get(self.reader)
                .copied()
                .unwrap_or(0.0),
        }
    }

    fn poll_once(&mut self, ts: Ts, out: &mut Batch) {
        let period = self.config.relocate_every.as_millis().max(1);
        let mobile_shelf = ((ts.as_millis() / period) as usize) % self.config.n_shelves;
        // Whole-cycle blackout (interference): scale every probability.
        let scale = if self.config.p_blackout > 0.0 && self.rng.gen_bool(self.config.p_blackout) {
            self.config.blackout_factor
        } else {
            1.0
        };
        // Static tags on every shelf.
        for shelf in 0..self.config.n_shelves {
            for i in 0..self.config.static_tags_per_shelf {
                let pos = if i < self.config.static_tags_per_shelf / 2 {
                    TagPosition::Near
                } else {
                    TagPosition::Far
                };
                let p = self.detection_p(shelf, pos) * scale;
                if p > 0.0 && self.rng.gen_bool(p) {
                    out.push(self.sighting(ts, &format!("tag-{shelf}-{i}")));
                }
            }
        }
        // Mobile tags.
        for m in 0..self.config.mobile_tags {
            let p = self.detection_p(mobile_shelf, TagPosition::Mobile) * scale;
            if p > 0.0 && self.rng.gen_bool(p) {
                out.push(self.sighting(ts, &format!("mob-{m}")));
            }
        }
    }

    fn sighting(&self, ts: Ts, tag: &str) -> Tuple {
        Tuple::new_unchecked(
            Arc::clone(&self.schema),
            ts,
            vec![Value::Int(i64::from(self.id.0)), Value::str(tag)],
        )
    }
}

impl Source for RfidReaderSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, epoch: Ts) -> Result<Batch> {
        let mut out = Batch::new();
        while self.next_poll <= epoch {
            let ts = self.next_poll;
            self.next_poll += self.config.sample_period;
            self.poll_once(ts, &mut out);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn ground_truth_alternates_with_relocation() {
        let s = ShelfScenario::paper(1);
        assert_eq!(s.true_count(0, Ts::ZERO), 15);
        assert_eq!(s.true_count(1, Ts::ZERO), 10);
        assert_eq!(s.true_count(0, Ts::from_secs(40)), 10);
        assert_eq!(s.true_count(1, Ts::from_secs(40)), 15);
        assert_eq!(s.true_count(0, Ts::from_secs(80)), 15);
    }

    #[test]
    fn groups_one_reader_per_shelf() {
        let s = ShelfScenario::paper(1);
        let groups = s.groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].granule, "shelf0");
        assert_eq!(groups[0].members, vec![ReceptorId(0)]);
        assert_eq!(groups[1].members, vec![ReceptorId(1)]);
    }

    #[test]
    fn shelf_of_tag_tracks_mobiles() {
        let s = ShelfScenario::paper(1);
        assert_eq!(s.shelf_of_tag("tag-0-3", Ts::ZERO), Some(0));
        assert_eq!(s.shelf_of_tag("tag-1-9", Ts::from_secs(100)), Some(1));
        assert_eq!(s.shelf_of_tag("mob-2", Ts::ZERO), Some(0));
        assert_eq!(s.shelf_of_tag("mob-2", Ts::from_secs(40)), Some(1));
        assert_eq!(s.shelf_of_tag("errant", Ts::ZERO), None);
        assert_eq!(s.shelf_of_tag("tag-9-0", Ts::ZERO), None);
    }

    #[test]
    fn all_tags_enumerates_world() {
        let s = ShelfScenario::paper(1);
        let tags = s.all_tags();
        assert_eq!(tags.len(), 25);
        assert!(tags.contains(&"tag-1-9".to_string()));
        assert!(tags.contains(&"mob-4".to_string()));
    }

    /// Read-rate calibration: own-shelf static tags should be read at
    /// roughly (p_near+p_far)/2 per poll, and the strong reader should
    /// overhear the other shelf at a low but non-zero rate. Blackouts are
    /// disabled so nominal rates are directly observable.
    #[test]
    fn read_rates_match_configuration() {
        let s = ShelfScenario::new(
            ShelfConfig {
                p_blackout: 0.0,
                ..ShelfConfig::default()
            },
            7,
        );
        let mut sources = s.sources();
        let polls = 2_000u64;
        let horizon = Ts::from_millis((polls - 1) * 200);
        let batch0 = sources[0].1.poll(horizon).unwrap();

        let mut per_tag: HashMap<String, usize> = HashMap::new();
        for t in &batch0 {
            *per_tag
                .entry(t.get("tag_id").unwrap().as_str().unwrap().to_string())
                .or_default() += 1;
        }
        // Near tag on own shelf ≈ 0.8.
        let near_rate = *per_tag.get("tag-0-0").unwrap_or(&0) as f64 / polls as f64;
        assert!((near_rate - 0.8).abs() < 0.05, "near rate {near_rate}");
        // Far tag ≈ 0.6.
        let far_rate = *per_tag.get("tag-0-9").unwrap_or(&0) as f64 / polls as f64;
        assert!((far_rate - 0.6).abs() < 0.05, "far rate {far_rate}");
        // Overheard tag from shelf 1 ≈ 0.025 for the strong reader.
        let overhear = *per_tag.get("tag-1-0").unwrap_or(&0) as f64 / polls as f64;
        assert!(
            overhear > 0.005 && overhear < 0.06,
            "overhear rate {overhear}"
        );
    }

    #[test]
    fn weak_reader_barely_overhears() {
        let s = ShelfScenario::paper(7);
        let mut sources = s.sources();
        let polls = 2_000u64;
        let horizon = Ts::from_millis((polls - 1) * 200);
        let batch1 = sources[1].1.poll(horizon).unwrap();
        let foreign = batch1
            .iter()
            .filter(|t| {
                t.get("tag_id")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .starts_with("tag-0-")
            })
            .count();
        let rate = foreign as f64 / (polls as f64 * 10.0);
        assert!(rate < 0.01, "weak reader overhear rate {rate}");
    }

    #[test]
    fn blackout_polls_produce_near_empty_cycles() {
        // With blackouts on (default 20% of cycles at 12% strength), some
        // poll cycles catch almost nothing — the Figure 3(b) dips.
        let s = ShelfScenario::paper(7);
        let mut sources = s.sources();
        let polls = 1_000u64;
        let horizon = Ts::from_millis((polls - 1) * 200);
        let batch = sources[0].1.poll(horizon).unwrap();
        let mut per_poll = vec![0usize; polls as usize];
        for t in &batch {
            per_poll[(t.ts().as_millis() / 200) as usize] += 1;
        }
        let starved = per_poll.iter().filter(|&&n| n <= 2).count();
        let frac = starved as f64 / polls as f64;
        assert!(frac > 0.1 && frac < 0.35, "starved-cycle fraction {frac}");
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let s = ShelfScenario::paper(42);
            let mut sources = s.sources();
            sources[0].1.poll(Ts::from_secs(5)).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn raw_per_poll_count_is_badly_wrong() {
        // The headline motivation: raw per-poll counts are off by ~40%.
        let s = ShelfScenario::paper(3);
        let mut sources = s.sources();
        let polls = 500u64;
        let horizon = Ts::from_millis((polls - 1) * 200);
        let batch = sources[0].1.poll(horizon).unwrap();
        let mean_count = batch.len() as f64 / polls as f64;
        // True count on shelf 0 averages ≈ 12.5; raw per-poll ≈ 7–9.
        assert!(
            mean_count < 10.0,
            "raw mean count {mean_count} should undercount"
        );
        assert!(mean_count > 4.0);
    }
}
