//! Lossy delivery channels.
//!
//! Wireless receptor uplinks drop messages — often in *bursts* (multi-hop
//! congestion, interference). The paper's redwood deployment delivered only
//! 40% of requested readings; the Intel lab deployment averaged 42%.
//! Burstiness matters to ESP because Smooth can only interpolate across a
//! gap if its window straddles the gap (§4.3.2), so the channel model here
//! is a two-state **Gilbert–Elliott** chain (Good/Bad states with distinct
//! delivery probabilities) whose stationary loss rate and mean burst length
//! are both configurable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A channel decides, message by message, whether delivery succeeds, and
/// may corrupt a delivered frame.
pub trait Channel: Send {
    /// Returns what happens to one message sent at this instant.
    fn transmit(&mut self) -> Delivery;
}

/// Outcome of one transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Frame arrives intact.
    Delivered,
    /// Frame is lost entirely.
    Lost,
    /// Frame arrives but with bit errors (will fail its checksum).
    Corrupted,
}

/// A perfect channel (wired bench receptor).
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectChannel;

impl Channel for PerfectChannel {
    fn transmit(&mut self) -> Delivery {
        Delivery::Delivered
    }
}

/// Independent (memoryless) loss with optional corruption.
#[derive(Debug)]
pub struct BernoulliChannel {
    rng: StdRng,
    p_loss: f64,
    p_corrupt: f64,
}

impl BernoulliChannel {
    /// Lose each message independently with probability `p_loss`; corrupt
    /// surviving messages with probability `p_corrupt`.
    pub fn new(seed: u64, p_loss: f64, p_corrupt: f64) -> BernoulliChannel {
        BernoulliChannel {
            rng: StdRng::seed_from_u64(seed),
            p_loss,
            p_corrupt,
        }
    }
}

impl Channel for BernoulliChannel {
    fn transmit(&mut self) -> Delivery {
        if self.rng.gen_bool(self.p_loss) {
            Delivery::Lost
        } else if self.p_corrupt > 0.0 && self.rng.gen_bool(self.p_corrupt) {
            Delivery::Corrupted
        } else {
            Delivery::Delivered
        }
    }
}

/// Two-state Gilbert–Elliott burst-loss channel.
#[derive(Debug)]
pub struct GilbertElliottChannel {
    rng: StdRng,
    /// P(transition Good → Bad) per message.
    p_gb: f64,
    /// P(transition Bad → Good) per message.
    p_bg: f64,
    /// Delivery probability in the Good state.
    p_deliver_good: f64,
    /// Delivery probability in the Bad state.
    p_deliver_bad: f64,
    in_bad: bool,
}

impl GilbertElliottChannel {
    /// Construct from raw chain parameters.
    pub fn new(
        seed: u64,
        p_gb: f64,
        p_bg: f64,
        p_deliver_good: f64,
        p_deliver_bad: f64,
    ) -> GilbertElliottChannel {
        GilbertElliottChannel {
            rng: StdRng::seed_from_u64(seed),
            p_gb,
            p_bg,
            p_deliver_good,
            p_deliver_bad,
            in_bad: false,
        }
    }

    /// Construct from the two quantities experiments care about: the
    /// long-run delivery rate and the mean bad-burst length (in messages).
    ///
    /// The Bad state delivers nothing and the Good state everything, so the
    /// stationary delivery rate is `P(Good) = p_bg / (p_gb + p_bg)` and the
    /// mean burst length is `1 / p_bg`.
    pub fn with_yield(seed: u64, delivery_rate: f64, mean_burst: f64) -> GilbertElliottChannel {
        let delivery_rate = delivery_rate.clamp(0.0, 1.0);
        let p_bg = 1.0 / mean_burst.max(1.0);
        if delivery_rate <= f64::EPSILON {
            // Degenerate: nothing ever gets through.
            return GilbertElliottChannel::new(seed, 1.0, 0.0, 0.0, 0.0);
        }
        // P(Good) = p_bg/(p_gb+p_bg) = rate  →  p_gb = p_bg (1-rate)/rate.
        let p_gb = (p_bg * (1.0 - delivery_rate) / delivery_rate).min(1.0);
        GilbertElliottChannel::new(seed, p_gb, p_bg, 1.0, 0.0)
    }

    /// True while the chain is in the Bad state (test observability).
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }
}

impl Channel for GilbertElliottChannel {
    fn transmit(&mut self) -> Delivery {
        // Transition, then sample delivery in the new state.
        let flip = if self.in_bad { self.p_bg } else { self.p_gb };
        if self.rng.gen_bool(flip) {
            self.in_bad = !self.in_bad;
        }
        let p = if self.in_bad {
            self.p_deliver_bad
        } else {
            self.p_deliver_good
        };
        if p >= 1.0 || (p > 0.0 && self.rng.gen_bool(p)) {
            Delivery::Delivered
        } else {
            Delivery::Lost
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_always_delivers() {
        let mut c = PerfectChannel;
        assert!((0..100).all(|_| c.transmit() == Delivery::Delivered));
    }

    #[test]
    fn bernoulli_rate_close_to_nominal() {
        let mut c = BernoulliChannel::new(42, 0.3, 0.0);
        let delivered = (0..20_000)
            .filter(|_| c.transmit() == Delivery::Delivered)
            .count();
        let rate = delivered as f64 / 20_000.0;
        assert!((rate - 0.7).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn bernoulli_corruption_occurs() {
        let mut c = BernoulliChannel::new(7, 0.0, 0.5);
        let outcomes: Vec<Delivery> = (0..100).map(|_| c.transmit()).collect();
        assert!(outcomes.contains(&Delivery::Corrupted));
        assert!(!outcomes.contains(&Delivery::Lost));
    }

    #[test]
    fn gilbert_elliott_hits_target_yield() {
        for target in [0.4, 0.42, 0.8] {
            let mut c = GilbertElliottChannel::with_yield(99, target, 5.0);
            let n = 100_000;
            let delivered = (0..n)
                .filter(|_| c.transmit() == Delivery::Delivered)
                .count();
            let rate = delivered as f64 / n as f64;
            assert!((rate - target).abs() < 0.02, "target {target}, got {rate}");
        }
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // With mean burst 10, consecutive-loss runs should be far longer
        // than a Bernoulli channel of the same rate would produce.
        let mut ge = GilbertElliottChannel::with_yield(1, 0.6, 10.0);
        let outcomes: Vec<bool> = (0..50_000)
            .map(|_| ge.transmit() == Delivery::Delivered)
            .collect();
        let mean_burst = mean_loss_run(&outcomes);
        assert!(mean_burst > 4.0, "bursts too short: {mean_burst}");

        let mut be = BernoulliChannel::new(1, 0.4, 0.0);
        let outcomes: Vec<bool> = (0..50_000)
            .map(|_| be.transmit() == Delivery::Delivered)
            .collect();
        let bernoulli_burst = mean_loss_run(&outcomes);
        assert!(
            mean_burst > 2.0 * bernoulli_burst,
            "GE {mean_burst} vs Bernoulli {bernoulli_burst}"
        );
    }

    fn mean_loss_run(delivered: &[bool]) -> f64 {
        let mut runs = Vec::new();
        let mut current = 0usize;
        for &d in delivered {
            if d {
                if current > 0 {
                    runs.push(current);
                    current = 0;
                }
            } else {
                current += 1;
            }
        }
        if current > 0 {
            runs.push(current);
        }
        if runs.is_empty() {
            return 0.0;
        }
        runs.iter().sum::<usize>() as f64 / runs.len() as f64
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = || -> Vec<Delivery> {
            let mut c = GilbertElliottChannel::with_yield(123, 0.5, 4.0);
            (0..1000).map(|_| c.transmit()).collect()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn degenerate_rates() {
        let mut never = GilbertElliottChannel::with_yield(5, 0.0, 3.0);
        assert!((0..1000).all(|_| never.transmit() == Delivery::Lost));
        let mut always = GilbertElliottChannel::with_yield(5, 1.0, 3.0);
        assert!((0..1000).all(|_| always.transmit() == Delivery::Delivered));
    }
}
