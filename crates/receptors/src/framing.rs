//! Length-delimited frame streaming over `Read`/`Write`.
//!
//! [`wire`](crate::wire) frames are checksummed but self-terminating only
//! when their boundaries are known; a byte stream (TCP socket, pipe, file)
//! needs explicit delimiting. This module adds the thinnest possible layer:
//! each frame is preceded by a big-endian `u32` length. The payload stays an
//! opaque byte blob at this layer — checksum verification (and the decision
//! to count-and-drop corrupt frames) belongs to the caller, mirroring how
//! the paper's receptor edge applies Point functionality *after* the radio
//! hands it a packet.
//!
//! ```text
//! len   u32 (big-endian, 0 < len <= MAX_FRAME_LEN)
//! frame len bytes — a wire::encode() frame, possibly corrupted in flight
//! ```

use std::io::{self, Read, Write};

use bytes::Bytes;

use crate::wire::{self, Reading};

/// Upper bound on a single frame (tag ids are <= 64 KiB by the `u16`
/// length in the wire format; anything bigger is stream corruption).
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// Writes length-delimited frames to a byte sink.
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    inner: W,
}

impl<W: Write> FrameWriter<W> {
    /// Wrap a sink. Callers that care about syscall counts should hand in
    /// a `BufWriter`.
    pub fn new(inner: W) -> FrameWriter<W> {
        FrameWriter { inner }
    }

    /// Encode `reading` and write it as one length-delimited frame.
    pub fn write_reading(&mut self, reading: &Reading) -> io::Result<()> {
        self.write_raw(&wire::encode(reading))
    }

    /// Write pre-encoded (possibly deliberately corrupted) frame bytes.
    /// Simulated lossy channels use this to deliver damaged frames that
    /// the receiving edge must reject by checksum.
    pub fn write_raw(&mut self, frame: &[u8]) -> io::Result<()> {
        if frame.is_empty() || frame.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame length {} outside 1..={MAX_FRAME_LEN}", frame.len()),
            ));
        }
        self.inner.write_all(&(frame.len() as u32).to_be_bytes())?;
        self.inner.write_all(frame)
    }

    /// Flush the underlying sink.
    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    /// Unwrap, returning the sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Reads length-delimited frames from a byte source.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a source. Callers that care about syscall counts should hand
    /// in a `BufReader`.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader { inner }
    }

    /// Read the next frame. Returns `Ok(None)` on a clean end-of-stream
    /// (EOF exactly at a frame boundary); EOF mid-frame is an error.
    pub fn read_frame(&mut self) -> io::Result<Option<Bytes>> {
        let mut len_buf = [0u8; 4];
        if !read_exact_or_eof(&mut self.inner, &mut len_buf)? {
            return Ok(None);
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} outside 1..={MAX_FRAME_LEN}"),
            ));
        }
        let mut frame = vec![0u8; len];
        self.inner.read_exact(&mut frame)?;
        Ok(Some(Bytes::from(frame)))
    }

    /// Unwrap, returning the source.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

/// Fill `buf` completely. Returns `Ok(false)` when EOF arrives before the
/// first byte, `Ok(true)` when the buffer was filled; EOF after a partial
/// read is an `UnexpectedEof` error.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_types::{ReceptorId, Ts};

    fn sample(i: u32) -> Reading {
        Reading::Scalar {
            receptor: ReceptorId(i),
            ts: Ts::from_millis(u64::from(i) * 10),
            value: f64::from(i),
        }
    }

    #[test]
    fn round_trips_many_frames() {
        let mut w = FrameWriter::new(Vec::new());
        for i in 0..20 {
            w.write_reading(&sample(i)).unwrap();
        }
        let bytes = w.into_inner();
        let mut r = FrameReader::new(&bytes[..]);
        for i in 0..20 {
            let frame = r.read_frame().unwrap().expect("frame present");
            assert_eq!(wire::decode(&frame).unwrap(), sample(i));
        }
        assert!(
            r.read_frame().unwrap().is_none(),
            "clean EOF after last frame"
        );
        assert!(r.read_frame().unwrap().is_none(), "EOF is sticky");
    }

    #[test]
    fn corrupt_payload_passes_framing_fails_checksum() {
        let mut w = FrameWriter::new(Vec::new());
        let mut bad = wire::encode(&sample(7)).to_vec();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        w.write_raw(&bad).unwrap();
        let bytes = w.into_inner();
        let mut r = FrameReader::new(&bytes[..]);
        let frame = r.read_frame().unwrap().expect("framing layer delivers it");
        assert!(wire::decode(&frame).is_err(), "checksum must reject it");
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut w = FrameWriter::new(Vec::new());
        w.write_reading(&sample(1)).unwrap();
        let bytes = w.into_inner();
        // Cut inside the header and inside the body.
        for cut in [2, bytes.len() - 3] {
            let mut r = FrameReader::new(&bytes[..cut]);
            assert!(r.read_frame().is_err(), "truncation at {cut} accepted");
        }
    }

    #[test]
    fn oversized_and_empty_lengths_rejected() {
        let mut r = FrameReader::new(&[0u8, 0, 0, 0][..]);
        assert!(r.read_frame().is_err(), "zero length accepted");
        let huge = (MAX_FRAME_LEN as u32 + 1).to_be_bytes();
        let mut r = FrameReader::new(&huge[..]);
        assert!(r.read_frame().is_err(), "oversized length accepted");

        let mut w = FrameWriter::new(Vec::new());
        assert!(w.write_raw(&[]).is_err());
        assert!(w.write_raw(&vec![0u8; MAX_FRAME_LEN + 1]).is_err());
    }
}
