//! Soundness of the E06xx abstract interpretation, checked against the
//! real query engine.
//!
//! The linter's semantic checks only hold weight if the abstract domain
//! in `esp_query::range` is *sound*: whatever interval or truth value it
//! predicts for an expression must cover every value the engine can
//! actually produce for inputs inside the declared field ranges. These
//! properties execute randomly generated predicates and arithmetic over
//! randomly generated in-range tuples and assert exactly that:
//!
//! * a predicate the analysis calls **always false** filters out every
//!   row (a dead stage really emits nothing);
//! * a predicate the analysis calls **always true** keeps every row;
//! * a projected expression's concrete value always falls inside the
//!   predicted interval (and a predicted `NULL` really is `NULL`).
//!
//! A final set of tests pins the linter's zero-false-positive bar: no
//! clean fixture and no embedded example may produce an E06xx/E07xx
//! finding.

use esp_lint::{
    lint_cql, lint_deployment, synthesize_witnesses, ExampleKind, WitnessOutcome, EXAMPLES,
};
use esp_query::range::Interval;
use esp_query::range::{range_of, AbstractBool, Ranged};
use esp_query::{parse, Engine};
use esp_types::{well_known, Ts, TupleBuilder, Value};
use proptest::collection::vec;
use proptest::prelude::*;

/// Randomly generated arithmetic over the two ranged fields.
#[derive(Debug, Clone)]
enum GenArith {
    Temp,
    Voltage,
    Lit(i64),
    Bin(&'static str, Box<GenArith>, Box<GenArith>),
    Neg(Box<GenArith>),
}

impl GenArith {
    fn sql(&self) -> String {
        match self {
            GenArith::Temp => "temp".into(),
            GenArith::Voltage => "voltage".into(),
            // Parenthesized so a negative literal after `-` or unary
            // minus never lexes as a `--` comment.
            GenArith::Lit(n) if *n < 0 => format!("({n})"),
            GenArith::Lit(n) => format!("{n}"),
            GenArith::Bin(op, a, b) => format!("({} {} {})", a.sql(), op, b.sql()),
            GenArith::Neg(a) => format!("(- {})", a.sql()),
        }
    }
}

/// Randomly generated predicate over arithmetic comparisons.
#[derive(Debug, Clone)]
enum GenPred {
    Cmp(&'static str, GenArith, GenArith),
    And(Box<GenPred>, Box<GenPred>),
    Or(Box<GenPred>, Box<GenPred>),
    Not(Box<GenPred>),
}

impl GenPred {
    fn sql(&self) -> String {
        match self {
            GenPred::Cmp(op, a, b) => format!("({} {} {})", a.sql(), op, b.sql()),
            GenPred::And(a, b) => format!("({} AND {})", a.sql(), b.sql()),
            GenPred::Or(a, b) => format!("({} OR {})", a.sql(), b.sql()),
            GenPred::Not(a) => format!("(NOT {})", a.sql()),
        }
    }
}

fn arith_strategy() -> BoxedStrategy<GenArith> {
    let leaf = prop_oneof![
        Just(GenArith::Temp),
        Just(GenArith::Voltage),
        (-9i64..10).prop_map(GenArith::Lit),
    ]
    .boxed();
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone(),
            (
                prop_oneof![Just("+"), Just("-"), Just("*"), Just("/"), Just("%")],
                inner.clone(),
                inner.clone(),
            )
                .prop_map(|(op, a, b)| GenArith::Bin(op, Box::new(a), Box::new(b))),
            inner.prop_map(|a| GenArith::Neg(Box::new(a))),
        ]
    })
}

fn pred_strategy() -> BoxedStrategy<GenPred> {
    let arith = arith_strategy();
    let leaf = (
        prop_oneof![
            Just("<"),
            Just("<="),
            Just("="),
            Just("<>"),
            Just(">="),
            Just(">")
        ],
        arith.clone(),
        arith,
    )
        .prop_map(|(op, a, b)| GenPred::Cmp(op, a, b))
        .boxed();
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone(),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenPred::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| GenPred::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| GenPred::Not(Box::new(a))),
        ]
    })
}

/// An interval plus concrete in-range samples: `(lo, width, fractions)`.
fn ranged_field() -> impl Strategy<Value = (Interval, Vec<f64>)> {
    (-40.0f64..40.0, 0.0f64..25.0, vec(0.0f64..1.0, 6)).prop_map(|(lo, width, fracs)| {
        let hi = lo + width;
        let iv = Interval::new(lo, hi).unwrap_or_else(|| Interval::point(lo));
        let samples = fracs
            .into_iter()
            .map(|f| (lo + f * (hi - lo)).clamp(lo, hi))
            .collect();
        (iv, samples)
    })
}

/// Run `sql` over `rows` of in-range `(temp, voltage)` pairs.
fn run_query(sql: &str, rows: &[(f64, f64)]) -> Vec<esp_types::Tuple> {
    let engine = Engine::new();
    let mut q = engine.compile(sql).expect("generated query must compile");
    let schema = well_known::temp_voltage_schema();
    let batch: Vec<_> = rows
        .iter()
        .map(|(t, v)| {
            TupleBuilder::new(&schema, Ts::ZERO)
                .set("receptor_id", 0i64)
                .unwrap()
                .set("temp", *t)
                .unwrap()
                .set("voltage", *v)
                .unwrap()
                .build()
                .unwrap()
        })
        .collect();
    q.push("readings", &batch).expect("push");
    q.tick(Ts::ZERO).expect("generated query must execute")
}

/// The abstract environment declaring the two field ranges.
fn env_for(temp: Interval, voltage: Interval) -> impl Fn(Option<&str>, &str) -> Ranged {
    move |_qual, name| match name {
        "temp" => Ranged::Num(temp),
        "voltage" => Ranged::Num(voltage),
        _ => Ranged::Unknown,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The three-valued verdict on a predicate is sound: `False` means
    /// the WHERE keeps nothing, `True` means it keeps everything.
    #[test]
    fn predicate_verdicts_match_concrete_filtering(
        pred in pred_strategy(),
        temp in ranged_field(),
        voltage in ranged_field(),
    ) {
        let (t_iv, t_samples) = temp;
        let (v_iv, v_samples) = voltage;
        let rows: Vec<(f64, f64)> =
            t_samples.into_iter().zip(v_samples).collect();

        let sql = format!("SELECT temp AS x FROM readings WHERE {}", pred.sql());
        let out = run_query(&sql, &rows);

        let stmt = parse(&sql).expect("generated query must parse");
        let where_expr = stmt.where_clause.expect("query has a WHERE");
        let env = env_for(t_iv, v_iv);
        match range_of(&where_expr, &env).truth() {
            AbstractBool::False => prop_assert_eq!(
                out.len(), 0,
                "predicate judged always-false kept rows: {}", sql
            ),
            AbstractBool::True => prop_assert_eq!(
                out.len(), rows.len(),
                "predicate judged always-true dropped rows: {}", sql
            ),
            AbstractBool::Maybe => {}
        }
    }

    /// Concrete values of projected expressions never escape the
    /// predicted interval; a predicted `NULL` is concretely `NULL`.
    #[test]
    fn projected_values_stay_inside_predicted_intervals(
        arith in arith_strategy(),
        temp in ranged_field(),
        voltage in ranged_field(),
    ) {
        let (t_iv, t_samples) = temp;
        let (v_iv, v_samples) = voltage;
        let rows: Vec<(f64, f64)> =
            t_samples.into_iter().zip(v_samples).collect();

        let sql = format!("SELECT {} AS x FROM readings", arith.sql());
        let out = run_query(&sql, &rows);
        prop_assert_eq!(out.len(), rows.len());

        let stmt = parse(&sql).expect("generated query must parse");
        let sel_expr = &stmt.select[0].expr;
        let env = env_for(t_iv, v_iv);
        let predicted = range_of(sel_expr, &env);
        for row in &out {
            let value = row.get("x").expect("projected column");
            match predicted {
                Ranged::Num(iv) => {
                    let x = value.as_f64().unwrap_or_else(|| {
                        panic!("predicted numeric, got {value:?} from {sql}")
                    });
                    prop_assert!(
                        iv.contains(x),
                        "{sql}: concrete {x} escapes predicted [{}, {}]",
                        iv.lo(), iv.hi()
                    );
                }
                Ranged::Null => prop_assert_eq!(
                    value, &Value::Null,
                    "predicted NULL, engine produced {:?} from {}", value, sql
                ),
                // Bool/Str impossible for arithmetic; Unknown decides
                // nothing, which is its job.
                _ => {}
            }
        }
    }
}

/// Pull the numeric value of `field` out of a rendered witness input
/// line like `readings(receptor_id=Int(0), temp=Float(2.5), ...)`.
fn witness_field_value(line: &str, field: &str) -> Option<f64> {
    let rest = line.split(&format!("{field}=")).nth(1)?;
    let inner = rest.split('(').nth(1)?.split(')').next()?;
    inner.parse().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Witness synthesis inverts the interval facts *faithfully*: every
    /// tuple it feeds the engine stays inside the declared field ranges,
    /// and a witness run never refutes a finding the (sound) abstract
    /// interpretation produced.
    #[test]
    fn witness_values_lie_within_declared_intervals(
        pred in pred_strategy(),
        temp in ranged_field(),
        voltage in ranged_field(),
    ) {
        let (t_iv, _) = temp;
        let (v_iv, _) = voltage;
        let source = format!(
            "-- lint: stream readings temp_voltage\n\
             -- lint: range readings.temp {}..{}\n\
             -- lint: range readings.voltage {}..{}\n\
             SELECT * FROM readings WHERE {}\n",
            t_iv.lo(), t_iv.hi(), v_iv.lo(), v_iv.hi(), pred.sql()
        );
        let mut diags = lint_cql(&source);
        let witnesses = synthesize_witnesses(&source, &mut diags);
        for w in &witnesses {
            for line in &w.inputs {
                if let Some(t) = witness_field_value(line, "temp") {
                    prop_assert!(
                        t_iv.contains(t),
                        "witness temp {t} escapes [{}, {}] in {line}",
                        t_iv.lo(), t_iv.hi()
                    );
                }
                if let Some(v) = witness_field_value(line, "voltage") {
                    prop_assert!(
                        v_iv.contains(v),
                        "witness voltage {v} escapes [{}, {}] in {line}",
                        v_iv.lo(), v_iv.hi()
                    );
                }
            }
            prop_assert!(
                !matches!(w.outcome, WitnessOutcome::Refuted { .. }),
                "engine refuted a sound finding:\n{}\nsource:\n{source}",
                w.render()
            );
        }
    }
}

/// The shipped E0601 fixture is not just syntactically dead: executing
/// its predicate over in-range data concretely emits zero tuples.
#[test]
fn dead_stage_fixture_emits_nothing_at_runtime() {
    let source = include_str!("../fixtures/fail/e0601_dead_point.cql");
    let diags = lint_cql(source);
    assert!(
        diags.iter().any(|d| d.code == "E0601"),
        "fixture must trip E0601: {diags:#?}"
    );

    // temp in 0..10, voltage in 20..30, as the fixture declares.
    let rows: Vec<(f64, f64)> = (0..20)
        .map(|i| (f64::from(i % 10), 20.0 + f64::from(i % 10)))
        .collect();
    let out = run_query("SELECT * FROM readings WHERE temp > voltage", &rows);
    assert!(
        out.is_empty(),
        "dead-flagged stage emitted {} tuples",
        out.len()
    );
}

/// Zero-false-positive bar: clean fixtures never gain a semantic
/// (E06xx) or concurrency (E07xx) finding.
#[test]
fn clean_fixtures_gain_no_semantic_findings() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/clean");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("clean fixture dir") {
        let path = entry.expect("dir entry").path();
        let source = std::fs::read_to_string(&path).expect("fixture readable");
        let diags = match path.extension().and_then(|e| e.to_str()) {
            Some("cql") => lint_cql(&source),
            Some("json") => lint_deployment(&source),
            _ => continue,
        };
        checked += 1;
        let semantic: Vec<_> = diags
            .iter()
            .filter(|d| d.code.starts_with("E06") || d.code.starts_with("E07"))
            .collect();
        assert!(
            semantic.is_empty(),
            "{} gained semantic findings: {semantic:#?}",
            path.display()
        );
    }
    assert!(
        checked >= 7,
        "expected the clean fixture set, saw {checked}"
    );
}

/// Embedded examples stay clean under the semantic checks too.
#[test]
fn examples_gain_no_semantic_findings() {
    for ex in EXAMPLES {
        let diags = match ex.kind {
            ExampleKind::Cql => lint_cql(ex.source),
            ExampleKind::Deployment => lint_deployment(ex.source),
            ExampleKind::Pipeline => esp_lint::lint_pipeline(ex.source),
        };
        let semantic: Vec<_> = diags
            .iter()
            .filter(|d| d.code.starts_with("E06") || d.code.starts_with("E07"))
            .collect();
        assert!(
            semantic.is_empty(),
            "example {} gained semantic findings: {semantic:#?}",
            ex.name
        );
    }
}
