//! Property tests for the monotone-framework fixpoint engine.
//!
//! The engine promises three things the E09xx analyses lean on:
//!
//! 1. **Termination** on *any* graph — including cycles and transfers
//!    that never stabilize — via the iteration cap.
//! 2. **Monotonicity**: a larger boundary fact can only enlarge the
//!    solution (no analysis can lose information by knowing more).
//! 3. **Precision**: on DAGs with distributive transfers, the computed
//!    MFP solution equals the meet-over-all-paths answer — checked here
//!    against a brute-force enumeration of every path.
//!
//! Facts are 32-bit bitsets (a gen/kill problem: `out = (in & keep) |
//! gen`), which is distributive, so MFP = MOP is the textbook theorem
//! the engine must reproduce exactly.
//!
//! The vendored proptest stand-in has no `prop_flat_map`, so graphs are
//! derived in-body from raw generated pairs: arbitrary graphs keep the
//! pairs as-is (out-of-range endpoints exercise the ignore contract),
//! DAGs fold each pair into a forward edge `from < to`.

use proptest::prelude::*;

use esp_lint::{fixpoint, Direction, Facts, FlowGraph, Lattice};

/// A 32-element powerset lattice; join is union.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Bits(u32);

impl Lattice for Bits {
    fn bottom() -> Self {
        Bits(0)
    }
    fn join(&mut self, other: &Self) {
        self.0 |= other.0;
    }
}

/// One node's distributive transfer: `out = (in & keep) | gen`.
#[derive(Debug, Clone, Copy)]
struct Transfer {
    keep: u32,
    gen: u32,
}

impl Transfer {
    fn apply(&self, fact: u32) -> u32 {
        (fact & self.keep) | self.gen
    }
}

fn build(n: usize, edges: &[(usize, usize)]) -> FlowGraph {
    let mut g = FlowGraph::new(n);
    for &(from, to) in edges {
        g.add_edge(from, to);
    }
    g
}

/// Fold raw pairs into DAG edges over `n >= 2` nodes: always `from < to`.
fn dag_edges(n: usize, raw: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let mut edges: Vec<(usize, usize)> = raw
        .iter()
        .map(|&(a, b)| {
            let from = a % (n - 1);
            let to = from + 1 + b % (n - 1 - from);
            (from, to)
        })
        .collect();
    edges.sort_unstable();
    edges.dedup();
    edges
}

fn transfers(n: usize, keeps: &[u32], gens: &[u32]) -> Vec<Transfer> {
    (0..n)
        .map(|i| Transfer {
            keep: keeps[i],
            gen: gens[i],
        })
        .collect()
}

fn run_forward(g: &FlowGraph, t: &[Transfer], boundary: u32) -> Facts<Bits> {
    fixpoint(g, Direction::Forward, &Bits(boundary), |i, inc: &Bits| {
        Bits(t[i].apply(inc.0))
    })
}

/// Brute-force meet-over-all-paths *exit* fact of `node`: join of the
/// transfer composition along every entry path, where entry nodes (no
/// predecessors) start from `boundary`. DAG-only (finite paths).
fn mop_exit(
    n: usize,
    edges: &[(usize, usize)],
    transfers: &[Transfer],
    boundary: u32,
    node: usize,
) -> u32 {
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(from, to) in edges {
        preds[to].push(from);
    }
    fn walk(node: usize, preds: &[Vec<usize>], transfers: &[Transfer], boundary: u32) -> Vec<u32> {
        if preds[node].is_empty() {
            return vec![transfers[node].apply(boundary)];
        }
        let mut out = Vec::new();
        for &p in &preds[node] {
            for fact in walk(p, preds, transfers, boundary) {
                out.push(transfers[node].apply(fact));
            }
        }
        out
    }
    walk(node, &preds, transfers, boundary)
        .into_iter()
        .fold(0, |acc, f| acc | f)
}

proptest! {
    /// The engine returns on arbitrary graphs — cycles, self-loops,
    /// dangling edges — even with a transfer that never stabilizes.
    #[test]
    fn terminates_on_arbitrary_graphs(
        n in 1..=8usize,
        raw_edges in proptest::collection::vec((0..12usize, 0..12usize), 0..=64),
        seeds in proptest::collection::vec(any::<u32>(), 8..=8),
    ) {
        let g = build(n, &raw_edges);
        let facts = fixpoint(&g, Direction::Forward, &Bits(u32::MAX), |i, inc: &Bits| {
            // Rotate-and-xor keeps some cycles churning forever without
            // the iteration cap.
            Bits(inc.0.rotate_left(1) ^ seeds[i])
        });
        prop_assert_eq!(facts.exit.len(), n);
        prop_assert_eq!(facts.entry.len(), n);
    }

    /// Enlarging the boundary can only enlarge every fact (monotonicity
    /// of the whole solution in the boundary, given monotone transfers).
    #[test]
    fn solution_is_monotone_in_the_boundary(
        n in 1..=8usize,
        raw_edges in proptest::collection::vec((0..8usize, 0..8usize), 0..=48),
        keeps in proptest::collection::vec(any::<u32>(), 8..=8),
        gens in proptest::collection::vec(any::<u32>(), 8..=8),
        small in any::<u32>(),
        extra in any::<u32>(),
    ) {
        let g = build(n, &raw_edges);
        let t = transfers(n, &keeps, &gens);
        let lo = run_forward(&g, &t, small);
        let hi = run_forward(&g, &t, small | extra);
        for i in 0..n {
            prop_assert_eq!(lo.exit[i].0 & hi.exit[i].0, lo.exit[i].0,
                "exit[{}] shrank when the boundary grew", i);
            prop_assert_eq!(lo.entry[i].0 & hi.entry[i].0, lo.entry[i].0,
                "entry[{}] shrank when the boundary grew", i);
        }
    }

    /// On DAGs with distributive transfers, the fixpoint (MFP) equals
    /// the brute-force join over every path (MOP) at every node.
    #[test]
    fn mfp_equals_meet_over_all_paths_on_dags(
        n in 2..=7usize,
        raw_edges in proptest::collection::vec((any::<usize>(), any::<usize>()), 0..=32),
        boundary in any::<u32>(),
        keeps in proptest::collection::vec(any::<u32>(), 7..=7),
        gens in proptest::collection::vec(any::<u32>(), 7..=7),
    ) {
        let edges = dag_edges(n, &raw_edges);
        let t = transfers(n, &keeps, &gens);
        let g = build(n, &edges);
        let facts = run_forward(&g, &t, boundary);
        for node in 0..n {
            let want = mop_exit(n, &edges, &t, boundary, node);
            prop_assert_eq!(facts.exit[node].0, want,
                "MFP != MOP at node {} of {:?}", node, &edges);
        }
    }

    /// A backward problem is the forward problem on the reversed graph:
    /// running Backward on G must equal running Forward on Gᵀ.
    #[test]
    fn backward_is_forward_on_the_transposed_graph(
        n in 2..=7usize,
        raw_edges in proptest::collection::vec((any::<usize>(), any::<usize>()), 0..=32),
        boundary in any::<u32>(),
        keeps in proptest::collection::vec(any::<u32>(), 7..=7),
        gens in proptest::collection::vec(any::<u32>(), 7..=7),
    ) {
        let edges = dag_edges(n, &raw_edges);
        let t = transfers(n, &keeps, &gens);
        let g = build(n, &edges);
        let backward = fixpoint(&g, Direction::Backward, &Bits(boundary), |i, inc: &Bits| {
            Bits(t[i].apply(inc.0))
        });
        let mut gt = FlowGraph::new(n);
        for &(from, to) in &edges {
            gt.add_edge(to, from);
        }
        let forward = run_forward(&gt, &t, boundary);
        for i in 0..n {
            prop_assert_eq!(backward.exit[i].0, forward.exit[i].0);
            prop_assert_eq!(backward.entry[i].0, forward.entry[i].0);
        }
    }
}
