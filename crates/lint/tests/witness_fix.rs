//! Evidence contract over the fixture corpus.
//!
//! Two properties hold for every fail fixture:
//!
//! 1. **Witnesses execute.** Every value-domain finding (`E0601`,
//!    `E0602`, `E0603` in CQL; `E0903`, `E0905` in pipeline documents)
//!    produces a witness that the shipped engine *confirms* — the
//!    interval analysis' claims are replayed, not trusted.
//! 2. **Fixes are idempotent.** Applying every machine-applicable
//!    suggestion and re-linting yields a document with zero
//!    machine-applicable findings, and a second `--fix` pass is a
//!    byte-for-byte no-op.

use std::fs;
use std::path::{Path, PathBuf};

use esp_lint::{apply_fixes, lint_cql, lint_json, synthesize_witnesses, WitnessOutcome};
use esp_types::{Diagnostic, Severity, Span};

fn fail_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("fail")
}

fn lint_file(path: &Path, source: &str) -> Vec<Diagnostic> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("cql") => lint_cql(source),
        Some("json") => lint_json(source),
        other => panic!("unexpected extension {other:?} for {}", path.display()),
    }
}

fn fail_fixtures() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = fs::read_dir(fail_dir())
        .expect("fixtures/fail exists")
        .map(|e| e.expect("readable entry").path())
        .collect();
    paths.sort();
    paths
}

const WITNESSED: &[&str] = &["E0601", "E0602", "E0603", "E0903", "E0905"];

/// The acceptance bar: every value-domain finding over the fixture
/// corpus synthesizes a witness the engine confirms. `NotAttempted` is a
/// failure here — the shipped fixtures are all executable.
#[test]
fn every_value_domain_fixture_finding_has_an_engine_confirmed_witness() {
    let mut confirmed = 0;
    for path in fail_fixtures() {
        let source = fs::read_to_string(&path).expect("fixture readable");
        let mut diags = lint_file(&path, &source);
        let targets: Vec<(&'static str, Option<Span>)> = diags
            .iter()
            .filter(|d| WITNESSED.contains(&d.code))
            .map(|d| (d.code, d.span))
            .collect();
        let witnesses = synthesize_witnesses(&source, &mut diags);
        for (code, span) in targets {
            let w = witnesses
                .iter()
                .find(|w| {
                    w.code == code
                        && w.span.map(|s| (s.start, s.end)) == span.map(|s| (s.start, s.end))
                })
                .unwrap_or_else(|| {
                    panic!("{}: no witness for {code}", path.display());
                });
            assert!(
                matches!(w.outcome, WitnessOutcome::Confirmed { .. }),
                "{}: witness for {code} not confirmed:\n{}",
                path.display(),
                w.render()
            );
            assert!(
                !w.inputs.is_empty(),
                "{}: confirmed witness for {code} carries no input tuples",
                path.display()
            );
            let transcript = w.render();
            assert!(transcript.contains("CONFIRMED"), "{transcript}");
            assert!(transcript.contains(code), "{transcript}");
            confirmed += 1;
        }
    }
    // The corpus ships (at least) one fixture per witnessed code.
    assert!(
        confirmed >= WITNESSED.len(),
        "expected >= {} confirmed witnesses across the corpus, got {confirmed}",
        WITNESSED.len()
    );
}

/// A finding the engine contradicts is downgraded, not shipped: hand the
/// synthesizer a fabricated `E0601` over a predicate that is plainly
/// satisfiable and watch it demote the diagnostic to a warning with an
/// explanatory note.
#[test]
fn refuted_witness_downgrades_the_finding() {
    let source = "\
-- lint: stream readings temp_voltage
-- lint: range readings.temp 0..10
SELECT * FROM readings WHERE temp < 5\n";
    let stmt = esp_query::parse(source).expect("parses");
    let span = stmt.where_clause.as_ref().expect("has WHERE").span();
    let mut diags = vec![Diagnostic::error(
        "E0601",
        "WHERE predicate is always false under the declared field ranges",
    )
    .with_span(span)];
    let witnesses = synthesize_witnesses(source, &mut diags);
    assert_eq!(witnesses.len(), 1);
    assert!(
        matches!(witnesses[0].outcome, WitnessOutcome::Refuted { .. }),
        "{}",
        witnesses[0].render()
    );
    assert_eq!(diags[0].severity, Severity::Warning, "not downgraded");
    assert!(
        diags[0].notes.iter().any(|n| n.contains("refuted")),
        "no refutation note: {:?}",
        diags[0].notes
    );
}

/// Fix idempotence, fixture by fixture: patch, re-lint, and the
/// machine-applicable surface must be *empty*; patch again and the
/// bytes must not move.
#[test]
fn fixes_are_idempotent_over_every_fail_fixture() {
    let mut fixed_any = 0;
    for path in fail_fixtures() {
        let source = fs::read_to_string(&path).expect("fixture readable");
        let diags = lint_file(&path, &source);
        let Some(out) = apply_fixes(&source, &diags) else {
            continue;
        };
        fixed_any += 1;
        assert_ne!(out.fixed, source, "{}: fix changed nothing", path.display());
        assert!(out.applied > 0);
        let rediags = lint_file(&path, &out.fixed);
        let leftover: Vec<_> = rediags
            .iter()
            .filter(|d| d.has_machine_applicable_fix())
            .collect();
        assert!(
            leftover.is_empty(),
            "{}: machine-applicable findings survive --fix: {leftover:#?}",
            path.display()
        );
        // Second pass: byte-for-byte no-op.
        assert!(
            apply_fixes(&out.fixed, &rediags).is_none(),
            "{}: second --fix pass still wants to patch",
            path.display()
        );
    }
    // The corpus ships machine-applicable repairs for at least the
    // always-true-filter, misaligned-window, and dead-column classes.
    assert!(
        fixed_any >= 4,
        "expected >= 4 fixtures with machine-applicable fixes, got {fixed_any}"
    );
}

/// The classes the issue names as force-fixable actually are.
#[test]
fn named_fixture_classes_carry_machine_applicable_fixes() {
    for name in [
        "e0201_window_below_epoch.cql",
        "e0202_window_not_multiple.cql",
        "e0602_redundant_filter.cql",
        "e0901_dead_count_column.json",
    ] {
        let path = fail_dir().join(name);
        let source = fs::read_to_string(&path).expect("fixture readable");
        let diags = lint_file(&path, &source);
        assert!(
            diags.iter().any(|d| d.has_machine_applicable_fix()),
            "{name}: no machine-applicable fix attached"
        );
    }
}

/// The maybe-incorrect classes are suggested but never auto-applied.
#[test]
fn durability_repairs_are_flagged_but_not_applied() {
    for name in [
        "e0804_declarative_stage_not_checkpointable.json",
        "e0903_volatile_stage_under_durability.json",
    ] {
        let path = fail_dir().join(name);
        let source = fs::read_to_string(&path).expect("fixture readable");
        let diags = lint_file(&path, &source);
        let suggestions: Vec<_> = diags.iter().flat_map(|d| d.suggestions.iter()).collect();
        assert!(!suggestions.is_empty(), "{name}: no suggestion attached");
        assert!(
            suggestions.iter().all(|s| !s.is_machine_applicable()),
            "{name}: durability repair must be maybe-incorrect"
        );
        assert!(
            apply_fixes(&source, &diags).is_none(),
            "{name}: --fix must not touch maybe-incorrect repairs"
        );
    }
}

/// The patched always-true-filter fixture drops the WHERE clause but
/// keeps the query meaning-preserving (it still parses and lints with
/// nothing but the now-impossible finding gone).
#[test]
fn patched_redundant_filter_still_parses() {
    let path = fail_dir().join("e0602_redundant_filter.cql");
    let source = fs::read_to_string(&path).expect("fixture readable");
    let out = apply_fixes(&source, &lint_cql(&source)).expect("has a fix");
    assert!(!out.fixed.to_uppercase().contains("WHERE"), "{}", out.fixed);
    esp_query::parse(&out.fixed).expect("patched CQL parses");
    assert!(
        lint_cql(&out.fixed).is_empty(),
        "patched fixture lints clean"
    );
}
