//! Fixture contract for the diagnostic catalog.
//!
//! Every file under `fixtures/fail/` is named `<code>_<slug>.<ext>`; the
//! linter must emit exactly that code against it, and when the file
//! carries an `-- expect: <text>` line the reported span must cover
//! exactly that slice of the source. Every file under `fixtures/clean/`
//! (the shipped example pipelines) must produce zero findings — the
//! false-positive bar.

use std::fs;
use std::path::{Path, PathBuf};

use esp_lint::{lint_cql, lint_json};
use esp_types::Diagnostic;

fn fixtures_dir(sub: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(sub)
}

fn lint_file(path: &Path, source: &str) -> Vec<Diagnostic> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("cql") => lint_cql(source),
        Some("json") => lint_json(source),
        other => panic!(
            "unexpected fixture extension {other:?} for {}",
            path.display()
        ),
    }
}

/// `e0101_unknown_field.cql` → `E0101`.
fn expected_code(path: &Path) -> String {
    let stem = path.file_stem().unwrap().to_str().unwrap();
    stem.split('_').next().unwrap().to_ascii_uppercase()
}

/// The `-- expect: <text>` annotation, when present. CQL fixtures carry
/// it as a comment line; JSON fixtures (which have no comments) carry it
/// as a trailing extra key, `"-- expect: <text>": true`, placed at the
/// *bottom* of the document so the linter's first-occurrence span search
/// hits the real token, not the annotation.
fn expected_slice(source: &str) -> Option<&str> {
    source.lines().find_map(|l| {
        let t = l.trim();
        if let Some(rest) = t.strip_prefix("-- expect: ") {
            return Some(rest);
        }
        t.strip_prefix("\"-- expect: ")
            .and_then(|rest| rest.split("\":").next())
    })
}

fn fail_fixtures() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = fs::read_dir(fixtures_dir("fail"))
        .expect("fixtures/fail exists")
        .map(|e| e.expect("readable entry").path())
        .collect();
    paths.sort();
    paths
}

#[test]
fn each_fail_fixture_trips_exactly_its_code() {
    let fixtures = fail_fixtures();
    // Satellite bar: at least 8 distinct defect classes demonstrated.
    let distinct: std::collections::BTreeSet<String> =
        fixtures.iter().map(|p| expected_code(p)).collect();
    assert!(
        distinct.len() >= 8,
        "need fixtures for >= 8 distinct codes, have {distinct:?}"
    );

    for path in fixtures {
        let source = fs::read_to_string(&path).expect("fixture readable");
        let code = expected_code(&path);
        let diags = lint_file(&path, &source);
        assert!(
            !diags.is_empty(),
            "{}: expected {code}, got no findings",
            path.display()
        );
        assert!(
            diags.iter().any(|d| d.code == code),
            "{}: expected {code}, got {:?}",
            path.display(),
            diags.iter().map(|d| d.code).collect::<Vec<_>>()
        );
        // No collateral noise: a fixture demonstrates one defect class.
        assert!(
            diags.iter().all(|d| d.code == code),
            "{}: stray findings besides {code}: {diags:#?}",
            path.display()
        );
        if let Some(want) = expected_slice(&source) {
            let d = diags.iter().find(|d| d.code == code).unwrap();
            let span = d
                .span
                .unwrap_or_else(|| panic!("{}: {code} carries no span", path.display()));
            let got = &source[span.start..span.end];
            assert_eq!(
                got,
                want,
                "{}: span points at the wrong source slice",
                path.display()
            );
        }
    }
}

#[test]
fn syntax_error_fixture_has_a_span_into_the_source() {
    let path = fixtures_dir("fail").join("e0001_syntax_error.cql");
    let source = fs::read_to_string(&path).unwrap();
    let diags = lint_cql(&source);
    assert_eq!(diags[0].code, "E0001");
    let span = diags[0].span.expect("parse errors carry an offset span");
    assert!(span.end <= source.len());
}

#[test]
fn clean_fixtures_and_examples_produce_zero_findings() {
    let mut checked = 0;
    for entry in fs::read_dir(fixtures_dir("clean")).expect("fixtures/clean exists") {
        let path = entry.expect("readable entry").path();
        let source = fs::read_to_string(&path).expect("fixture readable");
        let diags = lint_file(&path, &source);
        assert!(
            diags.is_empty(),
            "{} should lint clean, got {diags:#?}",
            path.display()
        );
        checked += 1;
    }
    assert!(
        checked >= 7,
        "expected the paper-query fixture set, found {checked}"
    );
    for ex in esp_lint::EXAMPLES {
        let diags = esp_lint::lint_example(ex.name).unwrap();
        assert!(diags.is_empty(), "embedded '{}': {diags:#?}", ex.name);
    }
}

/// Byte-identical regression guard over the whole diagnostic surface.
///
/// The query engine now slot-compiles field references and caches
/// per-schema plans (see `esp_query::plan`); the linter's shape checks
/// (E01xx) and the abstract-interpretation pass (E06xx) analyze the same
/// compiled tree. This test pins every fail fixture's *exact* output —
/// code, byte-offset span, and full rustc-style rendering — to a
/// checked-in snapshot, so any drift the compilation layers introduce in
/// diagnostics shows up as a readable text diff, not a silent behavior
/// change. Regenerate intentionally with `BLESS=1 cargo test -p esp-lint`.
#[test]
fn rendered_diagnostics_are_byte_identical_to_snapshots() {
    let dir = fixtures_dir("snapshots");
    let bless = std::env::var_os("BLESS").is_some();
    if bless {
        fs::create_dir_all(&dir).unwrap();
    }
    let mut expected_snaps = std::collections::BTreeSet::new();
    for path in fail_fixtures() {
        let source = fs::read_to_string(&path).expect("fixture readable");
        let name = path.file_name().unwrap().to_str().unwrap();
        let diags = lint_file(&path, &source);
        let mut rendered = String::new();
        for d in &diags {
            let span = match d.span {
                Some(s) => format!("{}..{}", s.start, s.end),
                None => "-".into(),
            };
            rendered.push_str(&format!("// span: {span}\n"));
            rendered.push_str(&d.render(name, Some(&source)));
            if !rendered.ends_with('\n') {
                rendered.push('\n');
            }
        }
        let stem = path.file_stem().unwrap().to_str().unwrap();
        let snap = dir.join(format!("{stem}.snap"));
        expected_snaps.insert(snap.file_name().unwrap().to_os_string());
        if bless {
            fs::write(&snap, &rendered).unwrap();
            continue;
        }
        let want = fs::read_to_string(&snap).unwrap_or_else(|_| {
            panic!(
                "missing snapshot {} — run `BLESS=1 cargo test -p esp-lint` and review the diff",
                snap.display()
            )
        });
        assert_eq!(
            rendered,
            want,
            "{}: diagnostics drifted from snapshot {}",
            path.display(),
            snap.display()
        );
    }
    // No orphaned snapshots for fixtures that no longer exist.
    for entry in fs::read_dir(&dir).expect("fixtures/snapshots exists") {
        let snap = entry.expect("readable entry").path();
        assert!(
            expected_snaps.contains(snap.file_name().unwrap()),
            "orphaned snapshot {} has no matching fail fixture",
            snap.display()
        );
    }
}

/// Diagnostic order is part of the snapshot contract: every linter
/// entry point must emit in the canonical order (span start, then code,
/// then severity) so snapshots, `--fix` patch order, and CI diffs are
/// reproducible run to run. Re-sorting must be a no-op.
#[test]
fn diagnostics_are_emitted_in_canonical_order() {
    for path in fail_fixtures() {
        let source = fs::read_to_string(&path).expect("fixture readable");
        let diags = lint_file(&path, &source);
        let mut resorted = diags.clone();
        esp_types::diag::sort_diagnostics(&mut resorted);
        let order = |ds: &[Diagnostic]| -> Vec<(Option<usize>, String)> {
            ds.iter()
                .map(|d| (d.span.map(|s| s.start), d.code.to_string()))
                .collect()
        };
        assert_eq!(
            order(&diags),
            order(&resorted),
            "{}: diagnostics not emitted in canonical order",
            path.display()
        );
    }
}

/// Every code the fixture corpus (and the embedded examples) can emit
/// has an entry in the `--explain` catalog — the catalog cannot lag the
/// emitters.
#[test]
fn every_emitted_code_is_in_the_explain_catalog() {
    let mut emitted = std::collections::BTreeSet::new();
    for path in fail_fixtures() {
        let source = fs::read_to_string(&path).expect("fixture readable");
        for d in lint_file(&path, &source) {
            emitted.insert(d.code);
        }
    }
    assert!(!emitted.is_empty());
    for code in emitted {
        assert!(
            esp_lint::explain(code).is_some(),
            "{code} is emitted but has no --explain catalog entry"
        );
    }
}

/// The diagnostics render in rustc style with a caret line locating the
/// span in the original CQL.
#[test]
fn rendering_points_into_the_original_source() {
    let path = fixtures_dir("fail").join("e0103_sum_over_string.cql");
    let source = fs::read_to_string(&path).unwrap();
    let diags = lint_cql(&source);
    let rendered = diags[0].render("e0103_sum_over_string.cql", Some(&source));
    assert!(rendered.contains("E0103"), "{rendered}");
    assert!(rendered.contains("sum(tag_id)"), "{rendered}");
    assert!(rendered.contains('^'), "no caret line:\n{rendered}");
}
