//! The single machine-readable catalog of every diagnostic code the
//! toolchain can emit, backing `esp-lint --explain <code>`.
//!
//! This table is the source of truth: the snapshot harness asserts that
//! every code emitted over the fixture corpus has an entry here, and a
//! unit test asserts that `DESIGN.md` documents every entry — so the
//! catalog, the emitters, and the prose cannot drift apart silently.

/// One catalog entry: the code, a one-line title, and the paragraph
/// `--explain` prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeInfo {
    /// The diagnostic code, e.g. `"E0601"`.
    pub code: &'static str,
    /// One-line summary (the table form used in DESIGN.md).
    pub title: &'static str,
    /// The longer explanation printed by `esp-lint --explain`.
    pub explanation: &'static str,
}

/// Every code the toolchain emits, sorted by code.
pub static CODES: &[CodeInfo] = &[
    CodeInfo {
        code: "E0001",
        title: "input does not parse",
        explanation: "The document could not be parsed at all — CQL with a byte-offset \
                      span pointing at the first offending token, JSON without one. \
                      Nothing else is checked until the parse succeeds.",
    },
    CodeInfo {
        code: "E0002",
        title: "malformed `-- lint:` directive",
        explanation: "A `-- lint:` comment exists but its body is not a valid stream, \
                      range, or epoch declaration. The directive is ignored for the \
                      rest of the run, which usually cascades into E0106/E0601 noise — \
                      fix the directive first.",
    },
    CodeInfo {
        code: "E0101",
        title: "unknown field for a known stream schema",
        explanation: "The query references a field that does not exist in the declared \
                      schema of the stream it resolves to. Either the field name is \
                      misspelled or the `-- lint: stream` declaration is stale.",
    },
    CodeInfo {
        code: "E0102",
        title: "field qualifier matches no FROM binding",
        explanation: "A qualified reference like `r.temp` uses a qualifier that is \
                      neither a stream name nor an alias bound in the FROM clause.",
    },
    CodeInfo {
        code: "E0103",
        title: "aggregate argument type mismatch",
        explanation: "An aggregate is applied to a field whose declared type it cannot \
                      consume — e.g. `sum` or `avg` over a string column.",
    },
    CodeInfo {
        code: "E0104",
        title: "arithmetic on a non-numeric operand",
        explanation: "An arithmetic operator (`+ - * / %`) has an operand whose \
                      declared type is not numeric. The engine would evaluate this to \
                      NULL on every tuple.",
    },
    CodeInfo {
        code: "E0105",
        title: "comparison between incomparable types",
        explanation: "A comparison mixes types with no defined ordering (e.g. a string \
                      against a number), making the predicate constant at runtime.",
    },
    CodeInfo {
        code: "E0106",
        title: "FROM references an undeclared stream",
        explanation: "The FROM clause names a stream with no `-- lint: stream` \
                      declaration, so nothing about its fields can be checked.",
    },
    CodeInfo {
        code: "E0201",
        title: "window narrower than the epoch/granule",
        explanation: "A window range (or deployment smoothing window) is narrower than \
                      the declared epoch or spatial granule, so some epochs contribute \
                      no tuples at all. The machine-applicable fix widens the window \
                      to exactly one epoch.",
    },
    CodeInfo {
        code: "E0202",
        title: "CQL window not a whole multiple of the epoch",
        explanation: "The window range does not divide evenly into the declared epoch, \
                      so window boundaries drift against epoch boundaries and \
                      per-epoch results become phase-dependent. The machine-applicable \
                      fix rounds the window up to the next epoch multiple.",
    },
    CodeInfo {
        code: "E0203",
        title: "deployment smoothing window not a multiple of the granule",
        explanation: "A deployment document declares a smoothing window that is not a \
                      whole multiple of its temporal granule; per-granule outputs \
                      would mix partially-covered windows.",
    },
    CodeInfo {
        code: "E0204",
        title: "unparseable time span",
        explanation: "A duration string in a deployment or durability document (e.g. \
                      `\"5 sec\"`) does not parse as a time span.",
    },
    CodeInfo {
        code: "E0301",
        title: "wired receptor belongs to no proximity group",
        explanation: "A receptor is wired into the pipeline but is not a member of any \
                      proximity group, so its readings can never be spatially \
                      aggregated.",
    },
    CodeInfo {
        code: "E0302",
        title: "proximity group has no members",
        explanation: "A declared proximity group contains zero receptors; its \
                      aggregation stage would never emit.",
    },
    CodeInfo {
        code: "E0303",
        title: "duplicate spatial granule",
        explanation: "Two proximity groups declare the same spatial granule, making \
                      group attribution of a reading ambiguous.",
    },
    CodeInfo {
        code: "E0304",
        title: "unknown receptor type",
        explanation: "The deployment references a receptor type with no registered \
                      schema.",
    },
    CodeInfo {
        code: "E0401",
        title: "operator graph contains a cycle",
        explanation: "The operator graph has a directed cycle. With bounded queues a \
                      cycle deadlocks as soon as every queue on it fills.",
    },
    CodeInfo {
        code: "E0402",
        title: "operator output neither consumed nor tapped",
        explanation: "An operator's output port has no outgoing edge and no tap; \
                      everything it produces is computed and discarded.",
    },
    CodeInfo {
        code: "E0403",
        title: "graph has no taps",
        explanation: "No operator output is tapped, so the graph has no observable \
                      output at all.",
    },
    CodeInfo {
        code: "E0404",
        title: "operator declares zero inputs",
        explanation: "A non-source operator has no incoming edges; it can never fire.",
    },
    CodeInfo {
        code: "E0405",
        title: "fan-in/port mismatch",
        explanation: "An operator's declared input ports do not match its incoming \
                      edges — a port is missing an edge, fed twice, or a source \
                      declares inputs.",
    },
    CodeInfo {
        code: "E0406",
        title: "edge or tap references a nonexistent node",
        explanation: "The graph wiring names an operator that is not defined in the \
                      document.",
    },
    CodeInfo {
        code: "E0407",
        title: "zero-capacity queue",
        explanation: "An edge declares a queue of capacity zero; the first send on it \
                      blocks forever.",
    },
    CodeInfo {
        code: "E0501",
        title: "accepted lateness ≥ smoothing window",
        explanation: "The gateway accepts readings later than the downstream smoothing \
                      window spans, so accepted-but-late readings land in windows that \
                      have already been emitted.",
    },
    CodeInfo {
        code: "E0502",
        title: "global-scope stage sharded across >1 shard",
        explanation: "A stage declared with global scope is deployed across more than \
                      one live gateway shard; each shard would compute a partial \
                      answer believing it is total.",
    },
    CodeInfo {
        code: "E0503",
        title: "degenerate gateway resources",
        explanation: "The gateway configuration is degenerate — zero shards, zero \
                      capacity, a zero reclamation period, or no proximity groups.",
    },
    CodeInfo {
        code: "E0601",
        title: "dead stage: predicate always false",
        explanation: "Interval analysis over the declared field ranges proves the \
                      WHERE/HAVING predicate can never hold, so the stage emits \
                      nothing. With `--witness`, the linter synthesizes in-range \
                      tuples and replays them through the engine to demonstrate the \
                      zero output (and downgrades the finding if the engine \
                      disagrees).",
    },
    CodeInfo {
        code: "E0602",
        title: "redundant filter: predicate always true",
        explanation: "Interval analysis proves the predicate holds for every in-range \
                      tuple, so the filter removes nothing. The machine-applicable \
                      fix deletes the clause; `--witness` replays sampled tuples to \
                      show the filtered and unfiltered runs emit identically.",
    },
    CodeInfo {
        code: "E0603",
        title: "divisor can be zero under declared ranges",
        explanation: "The declared range of a divisor contains zero (an error when it \
                      is provably exactly zero, a warning when it merely straddles \
                      it). The engine evaluates such divisions to NULL; `--witness` \
                      synthesizes a concrete zero-divisor tuple and shows that NULL \
                      emerge.",
    },
    CodeInfo {
        code: "E0604",
        title: "producer/consumer schema drift",
        explanation: "Across a dataflow edge the producer's output schema and the \
                      consumer's expectations disagree — a field the consumer reads \
                      is absent or retyped upstream.",
    },
    CodeInfo {
        code: "E0605",
        title: "granule-unit mismatch across a stage boundary",
        explanation: "A stage windows its input by a span that is not a whole multiple \
                      of the granule its upstream emits on, so the unit mismatch \
                      survives the boundary.",
    },
    CodeInfo {
        code: "E0701",
        title: "model checker: deadlock",
        explanation: "Exhaustive exploration of the runner model found a \
                      non-accepting terminal state: every thread blocked, no progress \
                      possible.",
    },
    CodeInfo {
        code: "E0702",
        title: "model checker: lost shutdown wakeup",
        explanation: "The model found a schedule where the queues drain but an \
                      operator never learns about shutdown and blocks on recv \
                      forever.",
    },
    CodeInfo {
        code: "E0703",
        title: "model checker: watermark regression",
        explanation: "The model found a schedule where the watermark moves backwards \
                      or a flush overtakes an in-contract reading.",
    },
    CodeInfo {
        code: "E0704",
        title: "model checker: epoch-order violation",
        explanation: "The model found a schedule where tapped tuples leave in an order \
                      that violates epoch monotonicity, losing or reordering tuples.",
    },
    CodeInfo {
        code: "E0801",
        title: "checkpoint interval not epoch-aligned",
        explanation: "The durability contract's checkpoint interval is not a whole \
                      multiple of the epoch period, so checkpoints would cut epochs \
                      in half and recovery could replay partial epochs.",
    },
    CodeInfo {
        code: "E0802",
        title: "reclamation inside the lateness horizon",
        explanation: "WAL segments would be reclaimed while readings that are still \
                      inside the accepted-lateness horizon could arrive, making \
                      recovery lossy.",
    },
    CodeInfo {
        code: "E0803",
        title: "degenerate snapshot retention",
        explanation: "The durability contract retains zero snapshots per shard; the \
                      first reclamation would delete the only recovery point.",
    },
    CodeInfo {
        code: "E0804",
        title: "declarative stage cannot be checkpointed",
        explanation: "A declarative (compiled-query) stage sits under a durable \
                      gateway, but compiled query state is not checkpointable; \
                      recovery would silently drop its window contents. The suggested \
                      (not auto-applied) repair removes the stage from the durability \
                      contract.",
    },
    CodeInfo {
        code: "E0901",
        title: "dead computed column",
        explanation: "Whole-pipeline liveness analysis found a computed column no \
                      downstream stage ever reads. The machine-applicable fix drops \
                      the column from the stage's select list.",
    },
    CodeInfo {
        code: "E0902",
        title: "distinctive fields dead before the cascade",
        explanation: "No distinctive field of a receptor group survives to the cascade \
                      entry, so the group's readings are indistinguishable \
                      downstream.",
    },
    CodeInfo {
        code: "E0903",
        title: "nondeterministic stage under a durable gateway",
        explanation: "Determinism-taint analysis found a stage whose output depends on \
                      volatile inputs (e.g. `now()`) inside a pipeline that is \
                      checkpointed and replayed; replay would diverge from the \
                      original run. With `--witness`, the linter runs the stage twice \
                      over identical input and shows the outputs differ.",
    },
    CodeInfo {
        code: "E0904",
        title: "lateness budget exceeded",
        explanation: "Worst-path lateness accumulated across the pipeline exceeds the \
                      accepted-lateness budget declared at the gateway.",
    },
    CodeInfo {
        code: "E0905",
        title: "unbounded or overcommitted grouping state",
        explanation: "A grouping key has no declared cardinality bound (state grows \
                      with the key's value universe), or the declared bounds \
                      overcommit the stage's memory budget. With `--witness`, the \
                      linter feeds the stage growing key populations and shows the \
                      retained group count growing with them.",
    },
];

/// Look up the catalog entry for `code`, if any.
pub fn explain(code: &str) -> Option<&'static CodeInfo> {
    CODES
        .binary_search_by(|info| info.code.cmp(code))
        .ok()
        .map(|i| &CODES[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_and_unique() {
        for pair in CODES.windows(2) {
            assert!(
                pair[0].code < pair[1].code,
                "catalog out of order at {}",
                pair[1].code
            );
        }
    }

    #[test]
    fn explain_finds_every_entry() {
        for info in CODES {
            assert_eq!(explain(info.code).map(|i| i.code), Some(info.code));
        }
        assert!(explain("E9999").is_none());
        assert!(explain("").is_none());
    }

    #[test]
    fn design_doc_documents_every_code() {
        let design = include_str!("../../../DESIGN.md");
        for info in CODES {
            assert!(
                design.contains(info.code),
                "DESIGN.md does not mention {}",
                info.code
            );
        }
    }

    #[test]
    fn catalog_has_all_known_families() {
        // One entry per code the emitters use; grow this list when a new
        // family lands.
        assert_eq!(CODES.len(), 44);
    }
}
