//! Structural linting of operator graphs.
//!
//! A [`Dataflow`](esp_stream::Dataflow) is built append-only — every
//! operator names its inputs at insertion, so cycles and forward
//! references are unrepresentable by construction. [`GraphSpec`] is the
//! edge-list form a *planned* topology takes before it is lowered to a
//! `Dataflow` (hand-written wiring plans, generated deployments), where
//! nothing rules those defects out; [`GraphSpec::validate`] finds them
//! statically. [`GraphSpec::of`] snapshots an existing `Dataflow` into
//! the same representation so one checker serves both.

use esp_stream::Dataflow;
use esp_types::Diagnostic;

/// What a node in a planned topology is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A tuple producer; takes no inputs.
    Source,
    /// An operator expecting exactly `n_inputs` input ports.
    Operator {
        /// Number of input ports the operator declares.
        n_inputs: usize,
    },
}

/// One node of a planned topology.
#[derive(Debug, Clone)]
pub struct GraphNode {
    /// Display name, used in diagnostics.
    pub name: String,
    /// Whether this is a source or an operator, and its arity.
    pub kind: NodeKind,
}

/// One directed edge of a planned topology: `from`'s output feeds
/// `to`'s input port `port`.
#[derive(Debug, Clone, Copy)]
pub struct GraphEdge {
    /// Index of the producing node.
    pub from: usize,
    /// Index of the consuming node.
    pub to: usize,
    /// Input port on the consuming node (0-based).
    pub port: usize,
}

/// A planned operator topology in edge-list form.
#[derive(Debug, Clone, Default)]
pub struct GraphSpec {
    /// Nodes, addressed by index from [`GraphSpec::edges`] and
    /// [`GraphSpec::taps`].
    pub nodes: Vec<GraphNode>,
    /// Directed edges wiring outputs to input ports.
    pub edges: Vec<GraphEdge>,
    /// Indices of nodes whose output is observed downstream.
    pub taps: Vec<usize>,
    /// Planned bounded-queue capacity between threaded operators, when
    /// known. `Some(0)` can never move a tuple and is rejected.
    pub queue_capacity: Option<usize>,
}

impl GraphSpec {
    /// Snapshot an existing dataflow into spec form, so the structural
    /// checks (and any tooling built on them) can run over graphs that
    /// were assembled programmatically.
    pub fn of(flow: &Dataflow) -> GraphSpec {
        let mut spec = GraphSpec::default();
        for id in flow.node_ids() {
            let kind = if flow.is_source(id) {
                NodeKind::Source
            } else {
                NodeKind::Operator {
                    n_inputs: flow.node_inputs(id).len(),
                }
            };
            spec.nodes.push(GraphNode {
                name: flow.node_name(id).to_string(),
                kind,
            });
            for (port, input) in flow.node_inputs(id).iter().enumerate() {
                spec.edges.push(GraphEdge {
                    from: input.index(),
                    to: id.index(),
                    port,
                });
            }
        }
        spec.taps = flow.tapped_nodes().iter().map(|t| t.index()).collect();
        spec
    }

    /// Check the topology and return every finding, sorted for
    /// presentation. Errors (cycles, arity mismatches, dangling
    /// references, zero-capacity queues) make the plan unrunnable;
    /// warnings (unconsumed outputs, no taps) flag work that would be
    /// silently discarded.
    pub fn validate(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let n = self.nodes.len();

        // Dangling references first: later checks index by node.
        let mut edges_ok = Vec::with_capacity(self.edges.len());
        for e in &self.edges {
            if e.from >= n || e.to >= n {
                diags.push(Diagnostic::error(
                    "E0406",
                    format!(
                        "edge {} -> {} (port {}) references a node that does not exist \
                         ({} nodes declared)",
                        e.from, e.to, e.port, n
                    ),
                ));
            } else {
                edges_ok.push(*e);
            }
        }
        for &t in &self.taps {
            if t >= n {
                diags.push(Diagnostic::error(
                    "E0406",
                    format!("tap references node {t}, but only {n} nodes are declared"),
                ));
            }
        }

        // Per-node port bookkeeping.
        let mut inbound: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &edges_ok {
            inbound[e.to].push(e.port);
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let ports = &mut inbound[i];
            ports.sort_unstable();
            match node.kind {
                NodeKind::Source => {
                    if !ports.is_empty() {
                        diags.push(Diagnostic::error(
                            "E0405",
                            format!(
                                "source '{}' has {} inbound edge(s); sources take no inputs",
                                node.name,
                                ports.len()
                            ),
                        ));
                    }
                }
                NodeKind::Operator { n_inputs } => {
                    if n_inputs == 0 {
                        diags.push(
                            Diagnostic::error(
                                "E0404",
                                format!("operator '{}' declares zero inputs", node.name),
                            )
                            .with_note(
                                "an operator with no inputs never fires; if it produces \
                                 tuples it should be a source",
                            ),
                        );
                    } else if ports.len() != n_inputs
                        || ports.iter().enumerate().any(|(want, &got)| want != got)
                    {
                        diags.push(
                            Diagnostic::error(
                                "E0405",
                                format!(
                                    "operator '{}' expects {} input port(s) but is wired \
                                     with {:?}",
                                    node.name,
                                    n_inputs,
                                    ports.as_slice()
                                ),
                            )
                            .with_note("every port 0..n_inputs must be fed by exactly one edge"),
                        );
                    }
                }
            }
        }

        if let Some(cycle) = self.find_cycle(&edges_ok) {
            let names: Vec<&str> = cycle.iter().map(|&i| self.nodes[i].name.as_str()).collect();
            diags.push(
                Diagnostic::error(
                    "E0401",
                    format!("operator graph contains a cycle: {}", names.join(" -> ")),
                )
                .with_note(
                    "push dataflow over bounded queues deadlocks on a cycle: every \
                     operator waits on its own downstream",
                ),
            );
        }

        if self.queue_capacity == Some(0) {
            diags.push(
                Diagnostic::error("E0407", "queue capacity 0 can never transfer a tuple")
                    .with_note(
                        "a bounded edge of capacity zero blocks the producer forever; \
                         the threaded runner would deadlock on the first send",
                    ),
            );
        }

        // Dangling outputs: produced but never consumed nor tapped.
        let mut consumed = vec![false; n];
        for e in &edges_ok {
            consumed[e.from] = true;
        }
        for &t in self.taps.iter().filter(|&&t| t < n) {
            consumed[t] = true;
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if !consumed[i] {
                diags.push(
                    Diagnostic::warning(
                        "E0402",
                        format!(
                            "output of '{}' is neither consumed by another operator \
                             nor tapped",
                            node.name
                        ),
                    )
                    .with_note("its tuples are computed and immediately discarded"),
                );
            }
        }
        if n > 0 && self.taps.is_empty() {
            diags.push(
                Diagnostic::warning("E0403", "graph has no taps; no output is observable")
                    .with_note("add a tap to the node whose cleaned stream you consume"),
            );
        }

        // Transitively dead regions: the direct E0402 check sees one hop;
        // a backward reachability fixpoint over the valid edges finds
        // nodes whose output *is* consumed, but only by chains that never
        // reach a tap — the whole sub-graph computes tuples nobody sees.
        if self.taps.iter().any(|&t| t < n) {
            let mut graph = crate::flow::FlowGraph::new(n);
            let mut feeds = vec![false; n];
            for e in &edges_ok {
                graph.add_edge(e.from, e.to);
                feeds[e.from] = true;
            }
            let mut is_tap = vec![false; n];
            for &t in self.taps.iter().filter(|&&t| t < n) {
                is_tap[t] = true;
            }
            let facts = crate::flow::fixpoint(
                &graph,
                crate::flow::Direction::Backward,
                &false,
                |i, reaches: &bool| *reaches || is_tap[i],
            );
            for (i, node) in self.nodes.iter().enumerate() {
                if feeds[i] && !facts.exit[i] {
                    diags.push(
                        Diagnostic::warning(
                            "E0902",
                            format!(
                                "output of '{}' is consumed, but never reaches any tap",
                                node.name
                            ),
                        )
                        .with_note(
                            "every downstream path from this node ends in an unobserved \
                             operator; tap one of them or remove the branch",
                        ),
                    );
                }
            }
        }

        esp_types::diag::sort_diagnostics(&mut diags);
        diags
    }

    /// DFS cycle detection (white/grey/black). Returns one witness cycle
    /// as a node-index path `a -> ... -> a`.
    fn find_cycle(&self, edges: &[GraphEdge]) -> Option<Vec<usize>> {
        let n = self.nodes.len();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in edges {
            succ[e.from].push(e.to);
        }
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut mark = vec![Mark::White; n];
        let mut parent = vec![usize::MAX; n];
        for start in 0..n {
            if mark[start] != Mark::White {
                continue;
            }
            // Iterative DFS: (node, next successor index) stack.
            let mut stack = vec![(start, 0usize)];
            mark[start] = Mark::Grey;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if let Some(&s) = succ[node].get(*next) {
                    *next += 1;
                    match mark[s] {
                        Mark::White => {
                            mark[s] = Mark::Grey;
                            parent[s] = node;
                            stack.push((s, 0));
                        }
                        Mark::Grey => {
                            // Back edge: walk parents from `node` to `s`.
                            let mut path = vec![s];
                            let mut cur = node;
                            while cur != s {
                                path.push(cur);
                                cur = parent[cur];
                            }
                            path.push(s);
                            path.reverse();
                            return Some(path);
                        }
                        Mark::Black => {}
                    }
                } else {
                    mark[node] = Mark::Black;
                    stack.pop();
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_stream::{Operator, ScriptedSource};
    use esp_types::{Batch, Ts};

    fn src(name: &str) -> GraphNode {
        GraphNode {
            name: name.into(),
            kind: NodeKind::Source,
        }
    }

    fn op(name: &str, n_inputs: usize) -> GraphNode {
        GraphNode {
            name: name.into(),
            kind: NodeKind::Operator { n_inputs },
        }
    }

    fn edge(from: usize, to: usize, port: usize) -> GraphEdge {
        GraphEdge { from, to, port }
    }

    fn codes(spec: &GraphSpec) -> Vec<&'static str> {
        spec.validate().into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn linear_chain_is_clean() {
        let spec = GraphSpec {
            nodes: vec![src("in"), op("point", 1), op("smooth", 1)],
            edges: vec![edge(0, 1, 0), edge(1, 2, 0)],
            taps: vec![2],
            queue_capacity: Some(64),
        };
        assert!(codes(&spec).is_empty(), "{:?}", spec.validate());
    }

    #[test]
    fn cycle_is_an_error() {
        let spec = GraphSpec {
            nodes: vec![op("a", 1), op("b", 1)],
            edges: vec![edge(0, 1, 0), edge(1, 0, 0)],
            taps: vec![1],
            queue_capacity: None,
        };
        assert!(codes(&spec).contains(&"E0401"), "{:?}", spec.validate());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let spec = GraphSpec {
            nodes: vec![op("a", 1)],
            edges: vec![edge(0, 0, 0)],
            taps: vec![0],
            queue_capacity: None,
        };
        assert!(codes(&spec).contains(&"E0401"));
    }

    #[test]
    fn dangling_output_and_missing_taps_warn() {
        let spec = GraphSpec {
            nodes: vec![src("in"), op("smooth", 1)],
            edges: vec![edge(0, 1, 0)],
            taps: vec![],
            queue_capacity: None,
        };
        let diags = spec.validate();
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"E0402"));
        assert!(codes.contains(&"E0403"));
        assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");
    }

    #[test]
    fn consumed_branch_that_never_reaches_a_tap_is_e0902() {
        // in → point → smooth(tap), plus a side branch in → fork → sink
        // where sink is unobserved: fork's output is consumed (by sink),
        // but nothing on that branch reaches the tap.
        let spec = GraphSpec {
            nodes: vec![
                src("in"),
                op("point", 1),
                op("smooth", 1),
                op("fork", 1),
                op("sink", 1),
            ],
            edges: vec![edge(0, 1, 0), edge(1, 2, 0), edge(0, 3, 0), edge(3, 4, 0)],
            taps: vec![2],
            queue_capacity: None,
        };
        let diags = spec.validate();
        let dead: Vec<_> = diags
            .iter()
            .filter(|d| d.code == "E0902")
            .map(|d| d.message.clone())
            .collect();
        assert_eq!(dead.len(), 1, "{diags:#?}");
        assert!(dead[0].contains("'fork'"), "{dead:?}");
        // The chain end itself is the one-hop E0402, not E0902.
        assert!(
            diags
                .iter()
                .any(|d| d.code == "E0402" && d.message.contains("'sink'")),
            "{diags:#?}"
        );
        // `in` feeds both branches; the tapped one keeps it alive.
        assert!(!dead[0].contains("'in'"));
    }

    #[test]
    fn zero_input_operator_is_an_error() {
        let spec = GraphSpec {
            nodes: vec![op("orphan", 0)],
            edges: vec![],
            taps: vec![0],
            queue_capacity: None,
        };
        assert!(codes(&spec).contains(&"E0404"));
    }

    #[test]
    fn fan_in_mismatches() {
        // Missing port 1, duplicate port 0, and an edge into a source.
        let spec = GraphSpec {
            nodes: vec![src("in"), op("merge", 2)],
            edges: vec![edge(0, 1, 0), edge(0, 1, 0), edge(1, 0, 0)],
            taps: vec![1],
            queue_capacity: None,
        };
        let codes = codes(&spec);
        assert_eq!(codes.iter().filter(|&&c| c == "E0405").count(), 2);
    }

    #[test]
    fn dangling_references() {
        let spec = GraphSpec {
            nodes: vec![src("in")],
            edges: vec![edge(0, 7, 0)],
            taps: vec![9],
            queue_capacity: None,
        };
        // The broken edge is dropped, so the source's output also counts
        // as dangling (E0402) — both E0406s must still be present.
        let codes = codes(&spec);
        assert_eq!(codes.iter().filter(|&&c| c == "E0406").count(), 2);
    }

    #[test]
    fn zero_capacity_queue() {
        let spec = GraphSpec {
            nodes: vec![src("in"), op("point", 1)],
            edges: vec![edge(0, 1, 0)],
            taps: vec![1],
            queue_capacity: Some(0),
        };
        assert!(codes(&spec).contains(&"E0407"));
    }

    #[test]
    fn snapshot_of_real_dataflow_is_clean() {
        struct Pass;
        impl Operator for Pass {
            fn name(&self) -> &str {
                "pass"
            }
            fn push(&mut self, _port: usize, _batch: &[esp_types::Tuple]) -> esp_types::Result<()> {
                Ok(())
            }
            fn flush(&mut self, _epoch: Ts) -> esp_types::Result<Batch> {
                Ok(Batch::new())
            }
        }
        let mut flow = Dataflow::new();
        let s = flow.add_source(Box::new(ScriptedSource::new("in", Vec::new())));
        let p = flow.add_operator(Box::new(Pass), &[s]).unwrap();
        flow.add_tap(p).unwrap();
        let spec = GraphSpec::of(&flow);
        assert_eq!(spec.nodes.len(), 2);
        assert!(spec.validate().is_empty(), "{:?}", spec.validate());
    }
}
