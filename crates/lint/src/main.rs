//! `esp-lint` — lint CQL queries and JSON deployment or durability
//! documents from the command line, before anything runs.
//!
//! ```text
//! esp-lint <file.cql|file.json>...   lint files (kind chosen by extension)
//! esp-lint --example <name>          lint one embedded example pipeline
//! esp-lint --all-examples            lint every embedded example
//! esp-lint --list-examples           print the embedded example names
//! esp-lint --format json ...         machine-readable findings on stdout
//! ```
//!
//! Exit status is 0 when every input linted clean, 1 when any diagnostic
//! (error *or* warning) was produced, 2 on usage or I/O errors — so CI
//! can gate on "no findings at all" while scripts can still distinguish
//! "dirty pipeline" from "couldn't read the file".
//!
//! With `--format json`, stdout carries a single JSON document
//! (`{"inputs": N, "findings": [...]}`, one object per finding with
//! `origin`/`code`/`severity`/`message`/`span`/`notes`) and the rendered
//! human diagnostics are suppressed; exit codes are unchanged, so CI can
//! both gate on the status and archive the document as an artifact.
//!
//! With `--format sarif`, stdout carries a minimal SARIF 2.1.0 log
//! (one run, one result per finding, byte spans converted to 1-based
//! line/column regions) so code-scanning UIs can ingest the findings
//! directly. Hand-rolled like the JSON form — the subset is small and
//! fixed.

use std::process::ExitCode;

use esp_lint::{lint_cql, lint_deployment, lint_json, ExampleKind, EXAMPLES};
use esp_types::Diagnostic;

const USAGE: &str = "\
usage: esp-lint [--format text|json|sarif] <file.cql|file.json>...
       esp-lint [--format text|json|sarif] --example <name>
       esp-lint [--format text|json|sarif] --all-examples
       esp-lint --list-examples

Lints CQL query text (.cql) and JSON deployment, durability, or
pipeline documents (.json; a top-level \"durability\" key selects the
durability linter, a top-level \"gateway\" key the whole-pipeline
dataflow linter) statically.
Exit 0: clean; 1: findings; 2: usage/I-O error.
--format json prints one machine-readable document on stdout;
--format sarif prints a SARIF 2.1.0 log for code-scanning uploads.";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

/// Findings for one linted input, with the source kept for rendering.
struct InputReport {
    origin: String,
    source: String,
    diags: Vec<Diagnostic>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut format = Format::Text;
    let mut reports: Vec<InputReport> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--format" => {
                match iter.next().map(String::as_str) {
                    Some("text") => format = Format::Text,
                    Some("json") => format = Format::Json,
                    Some("sarif") => format = Format::Sarif,
                    Some(other) => {
                        eprintln!(
                            "error: unknown format '{other}' (expected text, json, or sarif)"
                        );
                        return ExitCode::from(2);
                    }
                    None => {
                        eprintln!("error: --format needs a value (text, json, or sarif)");
                        return ExitCode::from(2);
                    }
                };
            }
            "--list-examples" => {
                for ex in EXAMPLES {
                    println!("{}", ex.name);
                }
            }
            "--all-examples" => {
                for ex in EXAMPLES {
                    reports.push(InputReport {
                        origin: format!("example:{}", ex.name),
                        source: ex.source.to_string(),
                        diags: lint_embedded(ex),
                    });
                }
            }
            "--example" => {
                let Some(name) = iter.next() else {
                    eprintln!("error: --example needs a name (try --list-examples)");
                    return ExitCode::from(2);
                };
                let Some(ex) = EXAMPLES.iter().find(|e| e.name == name.as_str()) else {
                    eprintln!("error: unknown example '{name}' (try --list-examples)");
                    return ExitCode::from(2);
                };
                reports.push(InputReport {
                    origin: format!("example:{}", ex.name),
                    source: ex.source.to_string(),
                    diags: lint_embedded(ex),
                });
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag '{flag}'\n{USAGE}");
                return ExitCode::from(2);
            }
            path => {
                let source = match std::fs::read_to_string(path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: cannot read {path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                let diags = if path.ends_with(".json") {
                    lint_json(&source)
                } else if path.ends_with(".cql") || path.ends_with(".sql") {
                    lint_cql(&source)
                } else {
                    eprintln!("error: {path}: expected a .cql or .json file");
                    return ExitCode::from(2);
                };
                reports.push(InputReport {
                    origin: path.to_string(),
                    source,
                    diags,
                });
            }
        }
    }

    let inputs = reports.len();
    let findings: usize = reports.iter().map(|r| r.diags.len()).sum();
    match format {
        Format::Text => {
            for r in &reports {
                for d in &r.diags {
                    eprintln!("{}", d.render(&r.origin, Some(&r.source)));
                }
            }
            if findings == 0 {
                println!("esp-lint: {inputs} input(s), no findings");
            } else {
                eprintln!("esp-lint: {findings} finding(s) across {inputs} input(s)");
            }
        }
        Format::Json => println!("{}", render_json(&reports)),
        Format::Sarif => println!("{}", render_sarif(&reports)),
    }
    if findings == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn lint_embedded(ex: &esp_lint::Example) -> Vec<Diagnostic> {
    match ex.kind {
        ExampleKind::Cql => lint_cql(ex.source),
        ExampleKind::Deployment => lint_deployment(ex.source),
        ExampleKind::Pipeline => esp_lint::lint_pipeline(ex.source),
    }
}

/// Render every finding as one JSON document. Built by hand — the
/// structure is flat and fixed, so a serializer dependency buys nothing.
fn render_json(reports: &[InputReport]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"inputs\": {},\n", reports.len()));
    out.push_str("  \"findings\": [");
    let mut first = true;
    for r in reports {
        for d in &r.diags {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    {");
            out.push_str(&format!("\"origin\": \"{}\", ", json_escape(&r.origin)));
            out.push_str(&format!("\"code\": \"{}\", ", json_escape(d.code)));
            out.push_str(&format!("\"severity\": \"{}\", ", d.severity));
            out.push_str(&format!("\"message\": \"{}\", ", json_escape(&d.message)));
            match d.span {
                Some(s) => out.push_str(&format!(
                    "\"span\": {{\"start\": {}, \"end\": {}}}, ",
                    s.start, s.end
                )),
                None => out.push_str("\"span\": null, "),
            }
            out.push_str("\"notes\": [");
            for (i, n) in d.notes.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", json_escape(n)));
            }
            out.push_str("]}");
        }
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

/// 1-based line/column of a byte offset in `source` (SARIF regions are
/// line-oriented; our spans are byte offsets into the original text).
fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let clamped = offset.min(source.len());
    let before = &source[..clamped];
    let line = before.matches('\n').count() + 1;
    let col = before
        .rfind('\n')
        .map(|p| clamped - p)
        .unwrap_or(clamped + 1);
    (line, col)
}

/// Render every finding as a minimal SARIF 2.1.0 log: one tool run,
/// one `result` per diagnostic, spans mapped to 1-based single-file
/// regions. Only the subset code-scanning ingestion requires.
fn render_sarif(reports: &[InputReport]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"runs\": [{\n");
    out.push_str("    \"tool\": {\"driver\": {\"name\": \"esp-lint\"}},\n");
    out.push_str("    \"results\": [");
    let mut first = true;
    for r in reports {
        for d in &r.diags {
            if !first {
                out.push(',');
            }
            first = false;
            let level = if d.is_error() { "error" } else { "warning" };
            out.push_str("\n      {");
            out.push_str(&format!("\"ruleId\": \"{}\", ", json_escape(d.code)));
            out.push_str(&format!("\"level\": \"{level}\", "));
            out.push_str(&format!(
                "\"message\": {{\"text\": \"{}\"}}, ",
                json_escape(&d.message)
            ));
            out.push_str("\"locations\": [{\"physicalLocation\": {");
            out.push_str(&format!(
                "\"artifactLocation\": {{\"uri\": \"{}\"}}",
                json_escape(&r.origin)
            ));
            if let Some(s) = d.span {
                let (sl, sc) = line_col(&r.source, s.start);
                let (el, ec) = line_col(&r.source, s.end);
                out.push_str(&format!(
                    ", \"region\": {{\"startLine\": {sl}, \"startColumn\": {sc}, \
                     \"endLine\": {el}, \"endColumn\": {ec}}}"
                ));
            }
            out.push_str("}}]}");
        }
    }
    if !first {
        out.push_str("\n    ");
    }
    out.push_str("]\n  }]\n}");
    out
}

/// Escape a string for embedding in a JSON string literal (RFC 8259:
/// quote, backslash, and control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
