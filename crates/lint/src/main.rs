//! `esp-lint` — lint CQL queries and JSON deployment or durability
//! documents from the command line, before anything runs.
//!
//! ```text
//! esp-lint <file.cql|file.json>...   lint files (kind chosen by extension)
//! esp-lint --example <name>          lint one embedded example pipeline
//! esp-lint --all-examples            lint every embedded example
//! esp-lint --list-examples           print the embedded example names
//! esp-lint --explain E0602           print the catalog entry for a code
//! esp-lint --fix <file>...           apply machine-applicable fixes in place
//! esp-lint --fix-dry-run <file>...   print the patched document, write nothing
//! esp-lint --witness ...             synthesize + engine-validate counterexamples
//! esp-lint --format json ...         machine-readable findings on stdout
//! ```
//!
//! Exit status is 0 when every input linted clean, 1 when any diagnostic
//! (error *or* warning) was produced, 2 on usage or I/O errors — so CI
//! can gate on "no findings at all" while scripts can still distinguish
//! "dirty pipeline" from "couldn't read the file". With `--fix`, the
//! status reflects the findings that *remain after* patching.
//!
//! With `--format json`, stdout carries a single JSON document
//! (`{"inputs": N, "findings": [...]}`, one object per finding with
//! `origin`/`code`/`severity`/`message`/`span`/`notes`/`suggestions`,
//! plus a top-level `witnesses` array under `--witness`) and the
//! rendered human diagnostics are suppressed; exit codes are unchanged,
//! so CI can both gate on the status and archive the document as an
//! artifact.
//!
//! With `--format sarif`, stdout carries a minimal SARIF 2.1.0 log
//! (one run, one result per finding, byte spans converted to 1-based
//! line/column regions, machine-applicable suggestions as `fixes`,
//! every suggestion span as a `relatedLocation`) so code-scanning UIs
//! can ingest the findings — and surface the repairs — directly.
//! Hand-rolled like the JSON form — the subset is small and fixed.

use std::process::ExitCode;

use esp_lint::{
    apply_fixes, explain, lint_cql, lint_deployment, lint_json, synthesize_witnesses, ExampleKind,
    Witness, WitnessOutcome, EXAMPLES,
};
use esp_types::diag::floor_char_boundary;
use esp_types::Diagnostic;

const USAGE: &str = "\
usage: esp-lint [options] <file.cql|file.json>...
       esp-lint [options] --example <name>
       esp-lint [options] --all-examples
       esp-lint --list-examples
       esp-lint --explain <code>

options:
  --format text|json|sarif  output form (default text)
  --fix                     apply machine-applicable fixes to files in place,
                            then report what remains
  --fix-dry-run             compute fixes and print the patched document to
                            stdout without writing anything
  --witness                 synthesize counterexample inputs for value-domain
                            findings and validate them through the engine;
                            refuted findings are downgraded to warnings

Lints CQL query text (.cql) and JSON deployment, durability, or
pipeline documents (.json; a top-level \"durability\" key selects the
durability linter, a top-level \"gateway\" key the whole-pipeline
dataflow linter) statically.
Exit 0: clean; 1: findings; 2: usage/I-O error.
--format json prints one machine-readable document on stdout;
--format sarif prints a SARIF 2.1.0 log (with fixes) for code-scanning.";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum FixMode {
    Off,
    Apply,
    DryRun,
}

/// What one fix pass did to an input.
struct FixSummary {
    applied: usize,
    skipped_overlapping: usize,
    wrote: bool,
}

/// Findings for one linted input, with the source kept for rendering.
struct InputReport {
    origin: String,
    source: String,
    diags: Vec<Diagnostic>,
    witnesses: Vec<Witness>,
    fix: Option<FixSummary>,
}

enum Input {
    Path(String),
    Example(&'static esp_lint::Example),
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut format = Format::Text;
    let mut fix_mode = FixMode::Off;
    let mut witness = false;
    let mut inputs: Vec<Input> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(code) = iter.next() else {
                    eprintln!("error: --explain needs a diagnostic code (e.g. E0602)");
                    return ExitCode::from(2);
                };
                let normalized = code.to_ascii_uppercase();
                let Some(info) = explain(&normalized) else {
                    eprintln!("error: unknown diagnostic code '{code}'");
                    return ExitCode::from(2);
                };
                println!("{}: {}", info.code, info.title);
                println!();
                println!("{}", info.explanation);
                return ExitCode::SUCCESS;
            }
            "--format" => {
                match iter.next().map(String::as_str) {
                    Some("text") => format = Format::Text,
                    Some("json") => format = Format::Json,
                    Some("sarif") => format = Format::Sarif,
                    Some(other) => {
                        eprintln!(
                            "error: unknown format '{other}' (expected text, json, or sarif)"
                        );
                        return ExitCode::from(2);
                    }
                    None => {
                        eprintln!("error: --format needs a value (text, json, or sarif)");
                        return ExitCode::from(2);
                    }
                };
            }
            "--fix" => fix_mode = FixMode::Apply,
            "--fix-dry-run" => fix_mode = FixMode::DryRun,
            "--witness" => witness = true,
            "--list-examples" => {
                for ex in EXAMPLES {
                    println!("{}", ex.name);
                }
            }
            "--all-examples" => inputs.extend(EXAMPLES.iter().map(Input::Example)),
            "--example" => {
                let Some(name) = iter.next() else {
                    eprintln!("error: --example needs a name (try --list-examples)");
                    return ExitCode::from(2);
                };
                let Some(ex) = EXAMPLES.iter().find(|e| e.name == name.as_str()) else {
                    eprintln!("error: unknown example '{name}' (try --list-examples)");
                    return ExitCode::from(2);
                };
                inputs.push(Input::Example(ex));
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag '{flag}'\n{USAGE}");
                return ExitCode::from(2);
            }
            path => inputs.push(Input::Path(path.to_string())),
        }
    }

    if fix_mode == FixMode::Apply && inputs.iter().any(|i| matches!(i, Input::Example(_))) {
        eprintln!("error: --fix cannot write back to embedded examples (use --fix-dry-run)");
        return ExitCode::from(2);
    }

    let mut reports: Vec<InputReport> = Vec::new();
    for input in inputs {
        let (origin, source, kind) = match &input {
            Input::Example(ex) => (format!("example:{}", ex.name), ex.source.to_string(), {
                match ex.kind {
                    ExampleKind::Cql => Kind::Cql,
                    ExampleKind::Deployment => Kind::Deployment,
                    ExampleKind::Pipeline => Kind::Pipeline,
                }
            }),
            Input::Path(path) => {
                let source = match std::fs::read_to_string(path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: cannot read {path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                let kind = if path.ends_with(".json") {
                    Kind::Json
                } else if path.ends_with(".cql") || path.ends_with(".sql") {
                    Kind::Cql
                } else {
                    eprintln!("error: {path}: expected a .cql or .json file");
                    return ExitCode::from(2);
                };
                (path.to_string(), source, kind)
            }
        };

        let mut source = source;
        let mut diags = lint_kind(kind, &source);
        let mut fix = None;
        if fix_mode != FixMode::Off {
            if let Some(out) = apply_fixes(&source, &diags) {
                let wrote = match (&input, fix_mode) {
                    (Input::Path(path), FixMode::Apply) => {
                        if let Err(e) = std::fs::write(path, &out.fixed) {
                            eprintln!("error: cannot write {path}: {e}");
                            return ExitCode::from(2);
                        }
                        true
                    }
                    _ => {
                        if format == Format::Text {
                            print!("{}", out.fixed);
                            if !out.fixed.ends_with('\n') {
                                println!();
                            }
                        }
                        false
                    }
                };
                fix = Some(FixSummary {
                    applied: out.applied,
                    skipped_overlapping: out.skipped_overlapping,
                    wrote,
                });
                // Report against the patched document: what remains is
                // what the user still has to look at.
                source = out.fixed;
                diags = lint_kind(kind, &source);
            }
        }
        let witnesses = if witness {
            synthesize_witnesses(&source, &mut diags)
        } else {
            Vec::new()
        };
        reports.push(InputReport {
            origin,
            source,
            diags,
            witnesses,
            fix,
        });
    }

    let inputs = reports.len();
    let findings: usize = reports.iter().map(|r| r.diags.len()).sum();
    match format {
        Format::Text => {
            for r in &reports {
                for d in &r.diags {
                    eprintln!("{}", d.render(&r.origin, Some(&r.source)));
                }
                for w in &r.witnesses {
                    print!("{}", w.render());
                }
                if let Some(f) = &r.fix {
                    let verb = if f.wrote { "applied" } else { "would apply" };
                    let mut line =
                        format!("esp-lint: {verb} {} fix(es) to {}", f.applied, r.origin);
                    if f.skipped_overlapping > 0 {
                        line.push_str(&format!(
                            " ({} overlapping fix(es) skipped)",
                            f.skipped_overlapping
                        ));
                    }
                    eprintln!("{line}");
                }
            }
            if findings == 0 {
                println!("esp-lint: {inputs} input(s), no findings");
            } else {
                eprintln!("esp-lint: {findings} finding(s) across {inputs} input(s)");
            }
        }
        Format::Json => println!("{}", render_json(&reports)),
        Format::Sarif => println!("{}", render_sarif(&reports)),
    }
    if findings == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[derive(Clone, Copy)]
enum Kind {
    Cql,
    Json,
    Deployment,
    Pipeline,
}

fn lint_kind(kind: Kind, source: &str) -> Vec<Diagnostic> {
    match kind {
        Kind::Cql => lint_cql(source),
        Kind::Json => lint_json(source),
        Kind::Deployment => lint_deployment(source),
        Kind::Pipeline => esp_lint::lint_pipeline(source),
    }
}

/// Render every finding as one JSON document. Built by hand — the
/// structure is flat and fixed, so a serializer dependency buys nothing.
fn render_json(reports: &[InputReport]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"inputs\": {},\n", reports.len()));
    out.push_str("  \"findings\": [");
    let mut first = true;
    for r in reports {
        for d in &r.diags {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    {");
            out.push_str(&format!("\"origin\": \"{}\", ", json_escape(&r.origin)));
            out.push_str(&format!("\"code\": \"{}\", ", json_escape(d.code)));
            out.push_str(&format!("\"severity\": \"{}\", ", d.severity));
            out.push_str(&format!("\"message\": \"{}\", ", json_escape(&d.message)));
            match d.span {
                Some(s) => out.push_str(&format!(
                    "\"span\": {{\"start\": {}, \"end\": {}}}, ",
                    s.start, s.end
                )),
                None => out.push_str("\"span\": null, "),
            }
            out.push_str("\"notes\": [");
            for (i, n) in d.notes.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", json_escape(n)));
            }
            out.push_str("], \"suggestions\": [");
            for (i, s) in d.suggestions.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"message\": \"{}\", \"span\": {{\"start\": {}, \"end\": {}}}, \
                     \"replacement\": \"{}\", \"applicability\": \"{}\"}}",
                    json_escape(&s.message),
                    s.span.start,
                    s.span.end,
                    json_escape(&s.replacement),
                    s.applicability
                ));
            }
            out.push_str("]}");
        }
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"witnesses\": [");
    let mut first = true;
    for r in reports {
        for w in &r.witnesses {
            if !first {
                out.push(',');
            }
            first = false;
            let (verdict, detail) = match &w.outcome {
                WitnessOutcome::Confirmed { evidence } => ("confirmed", evidence.as_str()),
                WitnessOutcome::Refuted { observed } => ("refuted", observed.as_str()),
                WitnessOutcome::NotAttempted { reason } => ("not_attempted", reason.as_str()),
            };
            out.push_str("\n    {");
            out.push_str(&format!("\"origin\": \"{}\", ", json_escape(&r.origin)));
            out.push_str(&format!("\"code\": \"{}\", ", json_escape(w.code)));
            match w.span {
                Some(s) => out.push_str(&format!(
                    "\"span\": {{\"start\": {}, \"end\": {}}}, ",
                    s.start, s.end
                )),
                None => out.push_str("\"span\": null, "),
            }
            out.push_str(&format!("\"claim\": \"{}\", ", json_escape(&w.claim)));
            out.push_str("\"inputs\": [");
            for (i, line) in w.inputs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", json_escape(line)));
            }
            out.push_str(&format!(
                "], \"verdict\": \"{verdict}\", \"detail\": \"{}\"}}",
                json_escape(detail)
            ));
        }
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

/// 1-based line and **character** column of a byte offset in `source`
/// (SARIF regions are line/column-oriented; our spans are byte offsets
/// into the original text, which disagree on multi-byte lines).
fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let clamped = floor_char_boundary(source, offset.min(source.len()));
    let before = &source[..clamped];
    let line = before.matches('\n').count() + 1;
    let line_start = before.rfind('\n').map(|p| p + 1).unwrap_or(0);
    let col = before[line_start..].chars().count() + 1;
    (line, col)
}

fn sarif_region(source: &str, span: esp_types::Span) -> String {
    let (sl, sc) = line_col(source, span.start);
    let (el, ec) = line_col(source, span.end);
    format!(
        "\"region\": {{\"startLine\": {sl}, \"startColumn\": {sc}, \
         \"endLine\": {el}, \"endColumn\": {ec}}}"
    )
}

/// Render every finding as a minimal SARIF 2.1.0 log: one tool run,
/// one `result` per diagnostic, spans mapped to 1-based single-file
/// regions, machine-applicable suggestions as `fixes`, and every
/// suggestion span as a `relatedLocation`. Only the subset
/// code-scanning ingestion requires.
fn render_sarif(reports: &[InputReport]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"runs\": [{\n");
    out.push_str("    \"tool\": {\"driver\": {\"name\": \"esp-lint\"}},\n");
    out.push_str("    \"results\": [");
    let mut first = true;
    for r in reports {
        for d in &r.diags {
            if !first {
                out.push(',');
            }
            first = false;
            let level = if d.is_error() { "error" } else { "warning" };
            out.push_str("\n      {");
            out.push_str(&format!("\"ruleId\": \"{}\", ", json_escape(d.code)));
            out.push_str(&format!("\"level\": \"{level}\", "));
            out.push_str(&format!(
                "\"message\": {{\"text\": \"{}\"}}, ",
                json_escape(&d.message)
            ));
            out.push_str("\"locations\": [{\"physicalLocation\": {");
            out.push_str(&format!(
                "\"artifactLocation\": {{\"uri\": \"{}\"}}",
                json_escape(&r.origin)
            ));
            if let Some(s) = d.span {
                out.push_str(", ");
                out.push_str(&sarif_region(&r.source, s));
            }
            out.push_str("}}]");
            if !d.suggestions.is_empty() {
                out.push_str(", \"relatedLocations\": [");
                for (i, s) in d.suggestions.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str("{\"physicalLocation\": {");
                    out.push_str(&format!(
                        "\"artifactLocation\": {{\"uri\": \"{}\"}}, ",
                        json_escape(&r.origin)
                    ));
                    out.push_str(&sarif_region(&r.source, s.span));
                    out.push_str(&format!(
                        "}}, \"message\": {{\"text\": \"{}\"}}}}",
                        json_escape(&s.message)
                    ));
                }
                out.push(']');
            }
            let fixes: Vec<_> = d
                .suggestions
                .iter()
                .filter(|s| s.is_machine_applicable())
                .collect();
            if !fixes.is_empty() {
                out.push_str(", \"fixes\": [");
                for (i, s) in fixes.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!(
                        "{{\"description\": {{\"text\": \"{}\"}}, \"artifactChanges\": \
                         [{{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"replacements\": \
                         [{{\"deletedRegion\": {{\"charOffset\": {}, \"charLength\": {}}}, \
                         \"insertedContent\": {{\"text\": \"{}\"}}}}]}}]}}",
                        json_escape(&s.message),
                        json_escape(&r.origin),
                        s.span.start,
                        s.span.end.saturating_sub(s.span.start),
                        json_escape(&s.replacement)
                    ));
                }
                out.push(']');
            }
            out.push('}');
        }
    }
    if !first {
        out.push_str("\n    ");
    }
    out.push_str("]\n  }]\n}");
    out
}

/// Escape a string for embedding in a JSON string literal (RFC 8259:
/// quote, backslash, and control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
