//! `esp-lint` — lint CQL queries and JSON deployment documents from the
//! command line, before anything runs.
//!
//! ```text
//! esp-lint <file.cql|file.json>...   lint files (kind chosen by extension)
//! esp-lint --example <name>          lint one embedded example pipeline
//! esp-lint --all-examples            lint every embedded example
//! esp-lint --list-examples           print the embedded example names
//! ```
//!
//! Exit status is 0 when every input linted clean, 1 when any diagnostic
//! (error *or* warning) was produced, 2 on usage or I/O errors — so CI
//! can gate on "no findings at all" while scripts can still distinguish
//! "dirty pipeline" from "couldn't read the file".

use std::process::ExitCode;

use esp_lint::{lint_cql, lint_deployment, ExampleKind, EXAMPLES};
use esp_types::Diagnostic;

const USAGE: &str = "\
usage: esp-lint <file.cql|file.json>...
       esp-lint --example <name>
       esp-lint --all-examples
       esp-lint --list-examples

Lints CQL query text (.cql) and JSON deployment documents (.json)
statically. Exit 0: clean; 1: findings; 2: usage/I-O error.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut findings = 0usize;
    let mut inputs = 0usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--list-examples" => {
                for ex in EXAMPLES {
                    println!("{}", ex.name);
                }
            }
            "--all-examples" => {
                for ex in EXAMPLES {
                    inputs += 1;
                    findings += report(&lint_embedded(ex), &format!("example:{}", ex.name), ex);
                }
            }
            "--example" => {
                let Some(name) = iter.next() else {
                    eprintln!("error: --example needs a name (try --list-examples)");
                    return ExitCode::from(2);
                };
                let Some(ex) = EXAMPLES.iter().find(|e| e.name == name.as_str()) else {
                    eprintln!("error: unknown example '{name}' (try --list-examples)");
                    return ExitCode::from(2);
                };
                inputs += 1;
                findings += report(&lint_embedded(ex), &format!("example:{}", ex.name), ex);
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag '{flag}'\n{USAGE}");
                return ExitCode::from(2);
            }
            path => {
                let source = match std::fs::read_to_string(path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: cannot read {path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                let diags = if path.ends_with(".json") {
                    lint_deployment(&source)
                } else if path.ends_with(".cql") || path.ends_with(".sql") {
                    lint_cql(&source)
                } else {
                    eprintln!("error: {path}: expected a .cql or .json file");
                    return ExitCode::from(2);
                };
                inputs += 1;
                for d in &diags {
                    eprintln!("{}", d.render(path, Some(&source)));
                }
                findings += diags.len();
            }
        }
    }

    if findings == 0 {
        println!("esp-lint: {inputs} input(s), no findings");
        ExitCode::SUCCESS
    } else {
        eprintln!("esp-lint: {findings} finding(s) across {inputs} input(s)");
        ExitCode::FAILURE
    }
}

fn lint_embedded(ex: &esp_lint::Example) -> Vec<Diagnostic> {
    match ex.kind {
        ExampleKind::Cql => lint_cql(ex.source),
        ExampleKind::Deployment => lint_deployment(ex.source),
    }
}

fn report(diags: &[Diagnostic], origin: &str, ex: &esp_lint::Example) -> usize {
    for d in diags {
        eprintln!("{}", d.render(origin, Some(ex.source)));
    }
    diags.len()
}
