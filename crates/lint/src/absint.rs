//! Semantic (E06xx) checks over CQL: abstract interpretation of
//! predicates and arithmetic under declared field ranges.
//!
//! Declared via `-- lint: range <stream>.<field> <lo>..<hi>` directives,
//! field ranges let the linter *prove* dataflow facts the shape checks
//! (E01xx/E02xx) cannot see:
//!
//! * `E0601` — a `WHERE`/`HAVING` predicate that can never hold: the
//!   stage is dead and will emit nothing, ever.
//! * `E0602` — a predicate that always holds: the filter is redundant
//!   (or the declared ranges are wrong — either way worth a look).
//! * `E0603` — a division (or modulo) whose divisor can be zero under
//!   the declared ranges. The engine yields SQL `NULL` on a zero
//!   divisor, which then silently fails every comparison it feeds.
//!
//! The abstract domain lives in [`esp_query::range`]; its soundness
//! contract (concrete values never escape predicted intervals) is
//! enforced by property tests in this crate's test suite. Everything
//! undeclared stays [`Ranged::Unknown`], which decides nothing — the
//! linter's zero-false-positive bar depends on that conservatism.

use std::collections::HashMap;

use esp_query::ast::{ArithOp, Expr};
use esp_query::range::{range_of, AbstractBool, Interval, RangeEnv, Ranged};
use esp_query::Catalog;
use esp_types::{DataType, Diagnostic, Schema};

use crate::cql::Binding;

/// Declared ranges, keyed by `(stream, field)`.
pub(crate) type RangeDecls = HashMap<(String, String), Interval>;

/// Field-range environment for one query scope: resolves references the
/// way the runtime does (qualifier first, then first schema in scope),
/// then attaches the declared interval or a type-shaped default.
pub(crate) struct ScopeEnv<'a> {
    pub scope: &'a [Binding],
    pub ranges: &'a RangeDecls,
    pub catalog: &'a Catalog,
    /// True when evaluating under a non-empty `GROUP BY`: every group
    /// then holds at least one row, so `min`/`max`/`avg` cannot be NULL
    /// and `count(*)` is at least 1.
    pub grouped: bool,
}

impl ScopeEnv<'_> {
    fn binding_range(&self, b: &Binding, field: &str) -> Ranged {
        let Some(schema) = &b.schema else {
            return Ranged::Unknown;
        };
        let Some(f) = schema.field(field) else {
            return Ranged::Unknown;
        };
        if let Some(stream) = &b.stream {
            if let Some(iv) = self.ranges.get(&(stream.clone(), field.to_string())) {
                return Ranged::Num(*iv);
            }
        }
        type_default(f.data_type)
    }
}

/// When no range is declared, the schema's type still bounds the shape.
fn type_default(dt: DataType) -> Ranged {
    match dt {
        DataType::Int | DataType::Float | DataType::Ts => Ranged::Num(Interval::TOP),
        DataType::Str => Ranged::Str,
        DataType::Bool => Ranged::Bool(AbstractBool::Maybe),
        DataType::Any => Ranged::Unknown,
    }
}

impl RangeEnv for ScopeEnv<'_> {
    fn field_range(&self, qualifier: Option<&str>, name: &str) -> Ranged {
        match qualifier {
            Some(q) => match self.scope.iter().find(|b| b.name.as_deref() == Some(q)) {
                Some(b) => self.binding_range(b, name),
                None => Ranged::Unknown,
            },
            None => {
                // First schema that carries the field wins (mirrors the
                // resolution in `check_field` / the runtime); any binding
                // with an unknown schema could supply it, so give up.
                for b in self.scope {
                    match &b.schema {
                        None => return Ranged::Unknown,
                        Some(s) => {
                            if s.field(name).is_some() {
                                return self.binding_range(b, name);
                            }
                        }
                    }
                }
                Ranged::Unknown
            }
        }
    }

    fn call_range(&self, name: &str, args: &[Ranged], star: bool) -> Ranged {
        if !self.catalog.is_aggregate(name) {
            return Ranged::Unknown;
        }
        match name {
            // count(*) over a non-empty group is at least 1; count(expr)
            // counts non-NULL values, so 0 stays possible.
            "count" => {
                let lo = if star && self.grouped { 1.0 } else { 0.0 };
                match Interval::new(lo, f64::INFINITY) {
                    Some(iv) => Ranged::Num(iv),
                    None => Ranged::Unknown,
                }
            }
            // Selection aggregates stay inside their argument's range —
            // but only a non-empty group guarantees a non-NULL result,
            // and only a grouped query guarantees non-empty groups.
            "min" | "max" | "avg" if self.grouped => match args.first() {
                Some(Ranged::Num(iv)) => Ranged::Num(*iv),
                _ => Ranged::Unknown,
            },
            _ => Ranged::Unknown,
        }
    }
}

/// Check one predicate clause (`WHERE` or `HAVING`) for dead/redundant
/// truth under the environment.
pub(crate) fn check_predicate(
    expr: &Expr,
    env: &ScopeEnv<'_>,
    clause: &str,
    diags: &mut Vec<Diagnostic>,
) {
    match range_of(expr, env).truth() {
        AbstractBool::False => {
            diags.push(
                Diagnostic::error(
                    "E0601",
                    format!("{clause} predicate is always false under the declared field ranges"),
                )
                .with_span(expr.span())
                .with_note(
                    "no tuple can ever satisfy it — this stage is dead and will emit nothing",
                ),
            );
        }
        AbstractBool::True => {
            diags.push(
                Diagnostic::warning(
                    "E0602",
                    format!("{clause} predicate is always true under the declared field ranges"),
                )
                .with_span(expr.span())
                .with_note(
                    "every tuple satisfies it — drop the redundant filter or tighten the \
                     declared ranges",
                ),
            );
        }
        AbstractBool::Maybe => {}
    }
}

/// Walk an expression tree flagging divisions whose divisor can be zero
/// under the declared ranges. Subqueries are *not* entered — they are
/// checked in their own scope by `check_select`.
pub(crate) fn check_div_hazards(expr: &Expr, env: &ScopeEnv<'_>, diags: &mut Vec<Diagnostic>) {
    match expr {
        Expr::Arith { lhs, op, rhs } => {
            check_div_hazards(lhs, env, diags);
            check_div_hazards(rhs, env, diags);
            if !matches!(op, ArithOp::Div | ArithOp::Mod) {
                return;
            }
            let Some(iv) = range_of(rhs, env).as_interval() else {
                return;
            };
            let verb = match op {
                ArithOp::Div => "division",
                _ => "modulo",
            };
            if iv.is_point() && iv.contains(0.0) {
                diags.push(
                    Diagnostic::error("E0603", format!("{verb} by a divisor that is always zero"))
                        .with_span(expr.span())
                        .with_note(
                            "the engine yields NULL on a zero divisor, so this expression \
                             is always NULL",
                        ),
                );
            } else if iv.contains(0.0) && !iv.is_top() {
                diags.push(
                    Diagnostic::warning(
                        "E0603",
                        format!("{verb} by a divisor whose declared range includes zero"),
                    )
                    .with_span(expr.span())
                    .with_note(
                        "a zero divisor yields NULL, which then fails every comparison \
                         it feeds; exclude zero from the range or guard the division",
                    ),
                );
            }
        }
        Expr::Cmp { lhs, rhs, .. } => {
            check_div_hazards(lhs, env, diags);
            check_div_hazards(rhs, env, diags);
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            check_div_hazards(a, env, diags);
            check_div_hazards(b, env, diags);
        }
        Expr::Not(e) | Expr::Neg(e) => check_div_hazards(e, env, diags),
        Expr::Call { args, .. } => {
            for a in args {
                check_div_hazards(a, env, diags);
            }
        }
        Expr::QuantifiedCmp { lhs, .. } => check_div_hazards(lhs, env, diags),
        Expr::Literal(_) | Expr::Field { .. } => {}
    }
}

/// Parse the payload of a `range` directive:
/// `<stream>.<field> <lo>..<hi>` → `((stream, field), interval)`.
pub(crate) fn parse_range_directive(spec: &str) -> Result<((String, String), Interval), String> {
    let (target, bounds) = spec
        .trim()
        .split_once(char::is_whitespace)
        .ok_or("expected 'range <stream>.<field> <lo>..<hi>'")?;
    let (stream, field) = target
        .split_once('.')
        .ok_or_else(|| format!("range target '{target}' must be <stream>.<field>"))?;
    if stream.is_empty() || field.is_empty() {
        return Err(format!("range target '{target}' must be <stream>.<field>"));
    }
    let (lo, hi) = bounds
        .trim()
        .split_once("..")
        .ok_or_else(|| format!("range bounds '{}' must be <lo>..<hi>", bounds.trim()))?;
    let parse = |s: &str| -> Result<f64, String> {
        let v: f64 = s
            .trim()
            .parse()
            .map_err(|_| format!("'{}' is not a number", s.trim()))?;
        if v.is_nan() {
            return Err("range bound is NaN".into());
        }
        Ok(v)
    };
    let (lo, hi) = (parse(lo)?, parse(hi)?);
    let iv = Interval::new(lo, hi).ok_or(format!("empty range: {lo} > {hi}"))?;
    Ok(((stream.to_string(), field.to_string()), iv))
}

/// Validate one parsed range declaration against the declared streams;
/// an error message when it names something that does not exist or is
/// not numeric.
pub(crate) fn validate_range_decl(
    stream: &str,
    field: &str,
    streams: &HashMap<String, std::sync::Arc<Schema>>,
) -> Result<(), String> {
    let Some(schema) = streams.get(stream) else {
        return Err(format!(
            "range directive names undeclared stream '{stream}' \
             (declare it with a 'stream' directive first)"
        ));
    };
    let Some(f) = schema.field(field) else {
        return Err(format!("stream '{stream}' has no field '{field}'"));
    };
    match f.data_type {
        DataType::Int | DataType::Float | DataType::Ts => Ok(()),
        other => Err(format!(
            "range declared for non-numeric field '{stream}.{field}' ({other:?})"
        )),
    }
}
