//! Linting of CQL query text against declared stream schemas and the
//! scheduler epoch.
//!
//! The query language has no DDL — at runtime a [`ContinuousQuery`]
//! discovers its input schema from the first tuple that arrives. To check
//! a query *statically* the linter therefore needs the schemas declared
//! out of band, via `-- lint:` directives embedded in the query text
//! (ordinary CQL comments, invisible to the parser):
//!
//! ```text
//! -- lint: stream rfid_data rfid
//! -- lint: stream readings (receptor_id int, temp float)
//! -- lint: epoch 5 sec
//! SELECT tag_id, count(*) FROM rfid_data [Range By '5 sec'] GROUP BY tag_id
//! ```
//!
//! `stream <name> <schema>` binds a stream name to either a well-known
//! schema (`rfid`, `temp`, `temp_voltage`, `sound`, `motion`) or an inline
//! field list. `epoch <span>` declares the scheduler epoch the window
//! clauses are checked against. `range <stream>.<field> <lo>..<hi>`
//! declares the physical range of a numeric field, enabling the semantic
//! E06xx checks (dead predicates, redundant filters, reachable division
//! by zero — see [`crate::absint`]). Without directives the linter still
//! checks everything that needs no declaration (syntax, qualifier
//! resolution, literal-only type errors); it never guesses a schema, so
//! an undeclared stream silences the checks that would need one.
//!
//! [`ContinuousQuery`]: esp_query::ContinuousQuery

use std::collections::HashMap;
use std::sync::Arc;

use esp_query::ast::{ArithOp, Expr, FromItem, FromSource, SelectItem, SelectStmt};
use esp_query::Catalog;
use esp_types::{
    Applicability, DataType, Diagnostic, EspError, Schema, Span, Suggestion, TimeDelta, Value,
};

use crate::absint::{
    check_div_hazards, check_predicate, parse_range_directive, validate_range_decl, RangeDecls,
    ScopeEnv,
};

/// Lint one CQL source text (with optional `-- lint:` directives) and
/// return every finding, sorted for presentation.
pub fn lint_cql(source: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let directives = parse_directives(source, &mut diags);
    match esp_query::parse(source) {
        Ok(stmt) => {
            let catalog = Catalog::new();
            let mut ctx = LintCtx {
                catalog: &catalog,
                streams: &directives.streams,
                ranges: &directives.ranges,
                epoch: directives.epoch,
                diags: &mut diags,
            };
            ctx.check_select(&stmt, &[]);
        }
        Err(EspError::Parse { message, offset }) => {
            let mut d = Diagnostic::error("E0001", format!("query does not parse: {message}"));
            if let Some(off) = offset {
                d = d.with_span(Span::new(off, off + 1));
            }
            diags.push(d);
        }
        Err(other) => {
            diags.push(Diagnostic::error(
                "E0001",
                format!("query does not parse: {other}"),
            ));
        }
    }
    crate::fix::attach_cql_suggestions(source, &mut diags);
    esp_types::diag::sort_diagnostics(&mut diags);
    diags
}

/// Declarations recovered from `-- lint:` directive comments.
pub(crate) struct Directives {
    pub(crate) streams: HashMap<String, Arc<Schema>>,
    pub(crate) ranges: RangeDecls,
    pub(crate) epoch: Option<TimeDelta>,
}

pub(crate) fn parse_directives(source: &str, diags: &mut Vec<Diagnostic>) -> Directives {
    let mut streams = HashMap::new();
    let mut ranges = RangeDecls::new();
    // Range directives may precede the stream they constrain; validate
    // them against the schemas once every directive has been read.
    let mut pending_ranges: Vec<((String, String), Span)> = Vec::new();
    let mut epoch = None;
    let mut offset = 0;
    for line in source.split_inclusive('\n') {
        let line_start = offset;
        offset += line.len();
        let trimmed = line.trim_start();
        let Some(rest) = trimmed.strip_prefix("-- lint:") else {
            continue;
        };
        let indent = line.len() - trimmed.len();
        let span = Span::new(
            line_start + indent,
            line_start + indent + trimmed.trim_end().len(),
        );
        let rest = rest.trim();
        if let Some(spec) = rest.strip_prefix("stream ") {
            match parse_stream_directive(spec.trim()) {
                Ok((name, schema)) => {
                    streams.insert(name, schema);
                }
                Err(msg) => diags.push(
                    Diagnostic::error("E0002", format!("bad lint directive: {msg}"))
                        .with_span(span),
                ),
            }
        } else if let Some(spec) = rest.strip_prefix("range ") {
            match parse_range_directive(spec) {
                Ok((key, iv)) => {
                    pending_ranges.push((key.clone(), span));
                    ranges.insert(key, iv);
                }
                Err(msg) => diags.push(
                    Diagnostic::error("E0002", format!("bad lint directive: {msg}"))
                        .with_span(span),
                ),
            }
        } else if let Some(spec) = rest.strip_prefix("epoch ") {
            match TimeDelta::parse(spec.trim()) {
                Ok(e) if e != TimeDelta::ZERO => epoch = Some(e),
                Ok(_) => diags.push(
                    Diagnostic::error("E0002", "bad lint directive: epoch must be positive")
                        .with_span(span),
                ),
                Err(e) => diags.push(
                    Diagnostic::error("E0002", format!("bad lint directive: {e}")).with_span(span),
                ),
            }
        } else {
            diags.push(
                Diagnostic::error(
                    "E0002",
                    format!("bad lint directive: unknown form '{rest}'"),
                )
                .with_span(span),
            );
        }
    }
    for ((stream, field), span) in pending_ranges {
        if let Err(msg) = validate_range_decl(&stream, &field, &streams) {
            diags.push(
                Diagnostic::error("E0002", format!("bad lint directive: {msg}")).with_span(span),
            );
            ranges.remove(&(stream, field));
        }
    }
    Directives {
        streams,
        ranges,
        epoch,
    }
}

fn parse_stream_directive(spec: &str) -> Result<(String, Arc<Schema>), String> {
    let (name, schema_spec) = spec
        .split_once(char::is_whitespace)
        .ok_or("expected 'stream <name> <schema>'")?;
    let schema_spec = schema_spec.trim();
    let schema = if let Some(fields) = schema_spec
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
    {
        let mut builder = Schema::builder();
        for field in fields.split(',') {
            let (fname, ftype) = field
                .trim()
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("field '{}' needs a type", field.trim()))?;
            builder = builder.field(fname.trim(), parse_data_type(ftype.trim())?);
        }
        builder.build().map_err(|e| e.to_string())?
    } else {
        well_known_schema(schema_spec)
            .ok_or_else(|| format!("unknown well-known schema '{schema_spec}'"))?
    };
    Ok((name.to_string(), schema))
}

fn parse_data_type(s: &str) -> Result<DataType, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "int" => DataType::Int,
        "float" => DataType::Float,
        "str" | "string" => DataType::Str,
        "bool" => DataType::Bool,
        "ts" => DataType::Ts,
        "any" => DataType::Any,
        other => return Err(format!("unknown data type '{other}'")),
    })
}

fn well_known_schema(name: &str) -> Option<Arc<Schema>> {
    use esp_types::well_known;
    Some(match name {
        "rfid" => well_known::rfid_schema(),
        "temp" => well_known::temp_schema(),
        "temp_voltage" => well_known::temp_voltage_schema(),
        "sound" => well_known::sound_schema(),
        "motion" => well_known::motion_schema(),
        _ => return None,
    })
}

/// One name visible in a query scope: a `FROM` binding and (when the
/// linter could determine it) its schema.
#[derive(Clone)]
pub(crate) struct Binding {
    /// The name this item binds (alias or bare stream name).
    pub(crate) name: Option<String>,
    /// The schema, when determinable.
    pub(crate) schema: Option<Arc<Schema>>,
    /// The underlying declared stream (`None` for derived tables) —
    /// the key under which `range` directives attach.
    pub(crate) stream: Option<String>,
}

struct LintCtx<'a> {
    catalog: &'a Catalog,
    streams: &'a HashMap<String, Arc<Schema>>,
    ranges: &'a RangeDecls,
    epoch: Option<TimeDelta>,
    diags: &'a mut Vec<Diagnostic>,
}

impl LintCtx<'_> {
    /// Check one `SELECT` (recursively) under `outer` scope (for
    /// correlated subqueries) and return its output schema when fully
    /// determined.
    fn check_select(&mut self, stmt: &SelectStmt, outer: &[Binding]) -> Option<Arc<Schema>> {
        let mut scope: Vec<Binding> = Vec::new();
        for item in &stmt.from {
            scope.push(self.check_from_item(item, outer));
        }
        scope.extend(outer.iter().cloned());

        for item in &stmt.select {
            self.check_expr(&item.expr, &scope);
        }
        for e in stmt
            .where_clause
            .iter()
            .chain(stmt.group_by.iter())
            .chain(stmt.having.iter())
        {
            self.check_expr(e, &scope);
        }
        self.check_semantics(stmt, &scope);
        self.output_schema(stmt, &scope)
    }

    /// The E06xx abstract-interpretation pass over one (sub)query's
    /// clauses: dead/redundant predicates and reachable zero divisors.
    fn check_semantics(&mut self, stmt: &SelectStmt, scope: &[Binding]) {
        let env = ScopeEnv {
            scope,
            ranges: self.ranges,
            catalog: self.catalog,
            grouped: false,
        };
        for item in &stmt.select {
            check_div_hazards(&item.expr, &env, self.diags);
        }
        for g in &stmt.group_by {
            check_div_hazards(g, &env, self.diags);
        }
        if let Some(w) = &stmt.where_clause {
            check_predicate(w, &env, "WHERE", self.diags);
            check_div_hazards(w, &env, self.diags);
        }
        if let Some(h) = &stmt.having {
            // HAVING sees per-group aggregates; a non-empty GROUP BY
            // guarantees non-empty groups, which sharpens them.
            let env = ScopeEnv {
                grouped: !stmt.group_by.is_empty(),
                ..env
            };
            check_predicate(h, &env, "HAVING", self.diags);
            check_div_hazards(h, &env, self.diags);
        }
    }

    fn check_from_item(&mut self, item: &FromItem, outer: &[Binding]) -> Binding {
        if let Some(w) = &item.window {
            if let Some(epoch) = self.epoch {
                // The NOW window (zero range) is always epoch-aligned.
                if w.range != TimeDelta::ZERO {
                    if w.range < epoch {
                        self.diags.push(
                            Diagnostic::error(
                                "E0201",
                                format!(
                                    "window range ({}) is narrower than the scheduler \
                                     epoch ({epoch})",
                                    w.range
                                ),
                            )
                            .with_span(w.span)
                            .with_note(
                                "tuples from earlier epochs are evicted before the next \
                                 tick ever sees them",
                            )
                            .with_suggestion(Suggestion::new(
                                format!("widen the window to the epoch ({epoch})"),
                                w.span,
                                format!("[Range By '{epoch}']"),
                                Applicability::MachineApplicable,
                            )),
                        );
                    } else if epoch.as_millis() > 0 && w.range.as_millis() % epoch.as_millis() != 0
                    {
                        self.diags.push(
                            Diagnostic::error(
                                "E0202",
                                format!(
                                    "window range ({}) is not a whole multiple of the \
                                     scheduler epoch ({epoch})",
                                    w.range
                                ),
                            )
                            .with_span(w.span)
                            .with_note(
                                "eviction would cut through an epoch's tuples; use an \
                                 integer multiple of the epoch",
                            )
                            .with_suggestion(aligned_window_suggestion(w.range, epoch, w.span)),
                        );
                    }
                }
            }
        }
        match &item.source {
            FromSource::Named(name) => {
                let schema = self.streams.get(name).cloned();
                if schema.is_none() && !self.streams.is_empty() {
                    self.diags.push(
                        Diagnostic::error("E0106", format!("unknown stream '{name}'"))
                            .with_span(item.span)
                            .with_note(format!("declared streams: {}", sorted_names(self.streams))),
                    );
                }
                Binding {
                    name: item.binding().map(str::to_string),
                    schema,
                    stream: Some(name.clone()),
                }
            }
            FromSource::Derived(sub) => {
                let schema = self.check_select(sub, outer);
                Binding {
                    name: item.alias.clone(),
                    schema,
                    stream: None,
                }
            }
        }
    }

    /// Check an expression tree and return its inferred static type
    /// (`None` when undeterminable).
    fn check_expr(&mut self, expr: &Expr, scope: &[Binding]) -> Option<DataType> {
        match expr {
            Expr::Literal(v) => literal_type(v),
            Expr::Field {
                qualifier,
                name,
                span,
            } => self.check_field(qualifier.as_deref(), name, *span, scope),
            Expr::Call {
                name,
                args,
                star,
                span,
                ..
            } => self.check_call(name, args, *star, *span, scope),
            Expr::Arith { lhs, op, rhs } => {
                let lt = self.check_expr(lhs, scope);
                let rt = self.check_expr(rhs, scope);
                for (t, side) in [(lt, lhs), (rt, rhs)] {
                    if t == Some(DataType::Str) {
                        self.diags.push(
                            Diagnostic::error(
                                "E0104",
                                format!("arithmetic '{}' applied to a string operand", op.symbol()),
                            )
                            .with_span(side.span())
                            .with_note("only INT and FLOAT values support arithmetic"),
                        );
                    }
                }
                arith_type(*op, lt, rt)
            }
            Expr::Cmp { lhs, op, rhs } => {
                let lt = self.check_expr(lhs, scope);
                let rt = self.check_expr(rhs, scope);
                if let (Some(a), Some(b)) = (lt, rt) {
                    if !comparable(a, b) {
                        self.diags.push(
                            Diagnostic::error(
                                "E0105",
                                format!(
                                    "comparison '{}' between incompatible types \
                                     {a:?} and {b:?}",
                                    op.symbol()
                                ),
                            )
                            .with_span(lhs.span().join(rhs.span()))
                            .with_note(
                                "a string never compares equal to a number; this \
                                 predicate is constant",
                            ),
                        );
                    }
                }
                Some(DataType::Bool)
            }
            Expr::QuantifiedCmp { lhs, subquery, .. } => {
                self.check_expr(lhs, scope);
                self.check_select(subquery, scope);
                Some(DataType::Bool)
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                self.check_expr(a, scope);
                self.check_expr(b, scope);
                Some(DataType::Bool)
            }
            Expr::Not(e) => {
                self.check_expr(e, scope);
                Some(DataType::Bool)
            }
            Expr::Neg(e) => {
                let t = self.check_expr(e, scope);
                if t == Some(DataType::Str) {
                    self.diags.push(
                        Diagnostic::error("E0104", "unary minus applied to a string")
                            .with_span(e.span()),
                    );
                }
                t
            }
        }
    }

    fn check_field(
        &mut self,
        qualifier: Option<&str>,
        name: &str,
        span: Span,
        scope: &[Binding],
    ) -> Option<DataType> {
        if let Some(q) = qualifier {
            let Some(binding) = scope.iter().find(|b| b.name.as_deref() == Some(q)) else {
                self.diags.push(
                    Diagnostic::error("E0102", format!("unknown qualifier '{q}' in '{q}.{name}'"))
                        .with_span(span)
                        .with_note("qualifiers must match a FROM source name or alias"),
                );
                return None;
            };
            let schema = binding.schema.as_ref()?;
            match schema.field(name) {
                Some(f) => Some(f.data_type),
                None => {
                    self.diags.push(
                        Diagnostic::error("E0101", format!("stream '{q}' has no field '{name}'"))
                            .with_span(span)
                            .with_note(format!("available fields: {}", field_names(schema))),
                    );
                    None
                }
            }
        } else {
            // Unqualified: resolvable against any binding. Only report a
            // missing field when *every* schema in scope is known — an
            // undeclared stream could always have supplied it.
            let mut found = None;
            for b in scope {
                match &b.schema {
                    Some(s) => {
                        if let Some(f) = s.field(name) {
                            found = Some(f.data_type);
                            break;
                        }
                    }
                    None => return None,
                }
            }
            if found.is_none() && !scope.is_empty() {
                self.diags.push(
                    Diagnostic::error("E0101", format!("no stream in scope has a field '{name}'"))
                        .with_span(span),
                );
            }
            found
        }
    }

    fn check_call(
        &mut self,
        name: &str,
        args: &[Expr],
        star: bool,
        span: Span,
        scope: &[Binding],
    ) -> Option<DataType> {
        let arg_types: Vec<Option<DataType>> =
            args.iter().map(|a| self.check_expr(a, scope)).collect();
        if let Some(factory) = self.catalog.aggregate(name) {
            if !star {
                if let Some(Some(dt)) = arg_types.first() {
                    let req = factory.arg_requirement();
                    if !req.admits(*dt) {
                        self.diags.push(
                            Diagnostic::error(
                                "E0103",
                                format!(
                                    "aggregate '{name}' requires a numeric argument, \
                                     but its input is {dt:?}"
                                ),
                            )
                            .with_span(span)
                            .with_note(
                                "the runtime would only fail on the first non-numeric \
                                 row; fix the column or the aggregate",
                            ),
                        );
                        return None;
                    }
                }
            }
            return aggregate_return_type(name, arg_types.first().copied().flatten());
        }
        // Scalar functions: abs preserves its argument type, coalesce its
        // first; anything unregistered is unknown (the engine may have
        // UDFs the linter cannot see).
        match name {
            "abs" => arg_types.first().copied().flatten(),
            "coalesce" => arg_types.first().copied().flatten(),
            _ => None,
        }
    }

    /// Output schema of a select, when every column's name and type can be
    /// determined statically. Conservative: any uncertainty yields `None`
    /// so downstream checks stay silent rather than guess.
    fn output_schema(&self, stmt: &SelectStmt, scope: &[Binding]) -> Option<Arc<Schema>> {
        if stmt.is_star() {
            // `SELECT *`: the concatenation of all source schemas.
            if scope.len() == 1 {
                return scope[0].schema.clone();
            }
            return None;
        }
        let mut builder = Schema::builder();
        for item in &stmt.select {
            let (name, dt) = self.output_column(item, scope)?;
            builder = builder.field(name, dt);
        }
        builder.build().ok()
    }

    fn output_column(&self, item: &SelectItem, scope: &[Binding]) -> Option<(String, DataType)> {
        let dt = self.peek_type(&item.expr, scope).unwrap_or(DataType::Any);
        if let Some(alias) = &item.alias {
            return Some((alias.clone(), dt));
        }
        match &item.expr {
            Expr::Field { name, .. } => Some((name.clone(), dt)),
            // Unaliased computed columns: the engine synthesizes a name
            // the linter does not reproduce; give up on the whole schema.
            _ => None,
        }
    }

    /// Side-effect-free type peek (no diagnostics), for output schemas.
    fn peek_type(&self, expr: &Expr, scope: &[Binding]) -> Option<DataType> {
        match expr {
            Expr::Literal(v) => literal_type(v),
            Expr::Field {
                qualifier, name, ..
            } => {
                let schemas: Vec<&Arc<Schema>> = scope
                    .iter()
                    .filter(|b| match qualifier {
                        Some(q) => b.name.as_deref() == Some(q),
                        None => true,
                    })
                    .filter_map(|b| b.schema.as_ref())
                    .collect();
                schemas
                    .iter()
                    .find_map(|s| s.field(name))
                    .map(|f| f.data_type)
            }
            Expr::Call { name, args, .. } => {
                let arg = args.first().and_then(|a| self.peek_type(a, scope));
                if self.catalog.is_aggregate(name) {
                    aggregate_return_type(name, arg)
                } else {
                    match name.as_str() {
                        "abs" | "coalesce" => arg,
                        _ => None,
                    }
                }
            }
            Expr::Arith { lhs, op, rhs } => {
                arith_type(*op, self.peek_type(lhs, scope), self.peek_type(rhs, scope))
            }
            Expr::Cmp { .. }
            | Expr::QuantifiedCmp { .. }
            | Expr::And(..)
            | Expr::Or(..)
            | Expr::Not(_) => Some(DataType::Bool),
            Expr::Neg(e) => self.peek_type(e, scope),
        }
    }
}

/// The forced repair for an unaligned window (`E0202`): round the range
/// up to the next whole multiple of the epoch.
fn aligned_window_suggestion(range: TimeDelta, epoch: TimeDelta, span: Span) -> Suggestion {
    let e = epoch.as_millis().max(1);
    let k = range.as_millis().div_ceil(e).max(1);
    let aligned = TimeDelta::from_millis(k * e);
    Suggestion::new(
        format!("round the window up to the next epoch multiple ({aligned})"),
        span,
        format!("[Range By '{aligned}']"),
        Applicability::MachineApplicable,
    )
}

fn literal_type(v: &Value) -> Option<DataType> {
    Some(match v {
        Value::Null => return None,
        Value::Bool(_) => DataType::Bool,
        Value::Int(_) => DataType::Int,
        Value::Float(_) => DataType::Float,
        Value::Str(_) => DataType::Str,
        Value::Ts(_) => DataType::Ts,
    })
}

/// Static return types of the built-in aggregates. `sum`/`min`/`max`
/// preserve their argument's type; `count` counts; `avg`/`stdev` are
/// always float.
fn aggregate_return_type(name: &str, arg: Option<DataType>) -> Option<DataType> {
    match name {
        "count" => Some(DataType::Int),
        "avg" | "stdev" => Some(DataType::Float),
        "sum" | "min" | "max" => arg,
        _ => None,
    }
}

fn arith_type(op: ArithOp, lt: Option<DataType>, rt: Option<DataType>) -> Option<DataType> {
    match (op, lt?, rt?) {
        (ArithOp::Div, ..) => Some(DataType::Float),
        (_, DataType::Int, DataType::Int) => Some(DataType::Int),
        (_, DataType::Int | DataType::Float, DataType::Int | DataType::Float) => {
            Some(DataType::Float)
        }
        _ => None,
    }
}

/// Whether two static types can meaningfully compare. `Any` (and unknown)
/// compares with everything; strings only with strings; numerics with
/// numerics and timestamps.
fn comparable(a: DataType, b: DataType) -> bool {
    use DataType::*;
    if a == Any || b == Any {
        return true;
    }
    let numeric = |t: DataType| matches!(t, Int | Float | Ts);
    (numeric(a) && numeric(b)) || a == b
}

fn field_names(schema: &Schema) -> String {
    schema
        .fields()
        .iter()
        .map(|f| f.name.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

fn sorted_names(streams: &HashMap<String, Arc<Schema>>) -> String {
    let mut names: Vec<&str> = streams.keys().map(String::as_str).collect();
    names.sort_unstable();
    names.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(source: &str) -> Vec<&'static str> {
        lint_cql(source).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_query_with_directives_has_no_findings() {
        let src = "-- lint: stream rfid_data rfid\n\
                   -- lint: epoch 5 sec\n\
                   SELECT tag_id, count(*) FROM rfid_data [Range By '5 sec'] GROUP BY tag_id";
        assert!(codes(src).is_empty(), "{:?}", lint_cql(src));
    }

    #[test]
    fn no_directives_means_no_schema_findings() {
        let src = "SELECT anything FROM wherever [Range By '7 sec']";
        assert!(codes(src).is_empty(), "{:?}", lint_cql(src));
    }

    #[test]
    fn unknown_field_and_stream() {
        let src = "-- lint: stream rfid_data rfid\n\
                   SELECT noise FROM rfid_data";
        assert_eq!(codes(src), vec!["E0101"]);
        let src = "-- lint: stream rfid_data rfid\n\
                   SELECT tag_id FROM rfid_tada";
        assert_eq!(codes(src), vec!["E0106"]);
    }

    #[test]
    fn qualifier_resolution() {
        let src = "-- lint: stream rfid_data rfid\n\
                   SELECT r.tag_id FROM rfid_data r";
        assert!(codes(src).is_empty());
        let src = "-- lint: stream rfid_data rfid\n\
                   SELECT x.tag_id FROM rfid_data r";
        assert_eq!(codes(src), vec!["E0102"]);
    }

    #[test]
    fn aggregate_argument_types() {
        let src = "-- lint: stream rfid_data rfid\n\
                   SELECT sum(tag_id) FROM rfid_data";
        assert_eq!(codes(src), vec!["E0103"]);
        let src = "-- lint: stream temps temp\n\
                   SELECT avg(temp), min(temp) FROM temps";
        assert!(codes(src).is_empty());
        // count and min/max admit strings.
        let src = "-- lint: stream rfid_data rfid\n\
                   SELECT count(tag_id), max(tag_id) FROM rfid_data";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn arithmetic_and_comparison_type_errors() {
        let src = "-- lint: stream rfid_data rfid\n\
                   SELECT tag_id + 1 FROM rfid_data";
        assert_eq!(codes(src), vec!["E0104"]);
        let src = "-- lint: stream rfid_data rfid\n\
                   SELECT tag_id FROM rfid_data WHERE tag_id > 5";
        assert_eq!(codes(src), vec!["E0105"]);
        let src = "-- lint: stream rfid_data rfid\n\
                   SELECT tag_id FROM rfid_data WHERE tag_id = 'shelf'";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn window_epoch_alignment() {
        let src = "-- lint: stream t temp\n-- lint: epoch 5 sec\n\
                   SELECT temp FROM t [Range By '1 sec']";
        assert_eq!(codes(src), vec!["E0201"]);
        let src = "-- lint: stream t temp\n-- lint: epoch 5 sec\n\
                   SELECT temp FROM t [Range By '12 sec']";
        assert_eq!(codes(src), vec!["E0202"]);
        // NOW windows are exempt; multiples are fine.
        let src = "-- lint: stream t temp\n-- lint: epoch 5 sec\n\
                   SELECT temp FROM t [Range By 'NOW']";
        assert!(codes(src).is_empty());
        let src = "-- lint: stream t temp\n-- lint: epoch 5 sec\n\
                   SELECT temp FROM t [Range By '30 sec']";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn syntax_error_with_span() {
        let diags = lint_cql("SELEC oops");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "E0001");
        assert!(diags[0].span.is_some());
    }

    #[test]
    fn bad_directives_are_reported() {
        let src = "-- lint: stream s (a widget)\nSELECT 1 FROM s";
        assert_eq!(codes(src), vec!["E0002"]);
        let src = "-- lint: epoch sideways\nSELECT 1 FROM s";
        assert_eq!(codes(src), vec!["E0002"]);
        let src = "-- lint: frobnicate\nSELECT 1 FROM s";
        assert_eq!(codes(src), vec!["E0002"]);
    }

    #[test]
    fn derived_tables_propagate_schemas() {
        // The derived table exports (spatial_granule, avg_t); referencing
        // a misspelled alias through it is caught.
        let src = "-- lint: stream temps (spatial_granule str, temp float)\n\
                   SELECT avg_tt FROM \
                   (SELECT spatial_granule, avg(temp) AS avg_t FROM temps \
                    GROUP BY spatial_granule) sub";
        assert_eq!(codes(src), vec!["E0101"], "{:?}", lint_cql(src));
        let src = "-- lint: stream temps (spatial_granule str, temp float)\n\
                   SELECT avg_t FROM \
                   (SELECT spatial_granule, avg(temp) AS avg_t FROM temps \
                    GROUP BY spatial_granule) sub";
        assert!(codes(src).is_empty(), "{:?}", lint_cql(src));
    }

    #[test]
    fn correlated_subquery_sees_outer_scope() {
        let src = "-- lint: stream rfid_data rfid\n\
                   SELECT spatial_granule, tag_id FROM rfid_data \
                   GROUP BY spatial_granule, tag_id \
                   HAVING count(*) >= ALL(SELECT count(*) FROM rfid_data \
                                          GROUP BY spatial_granule)";
        // spatial_granule is injected by the processor, not in the raw
        // rfid schema — both uses flag E0101 (the directive must describe
        // the schema at the point the query runs).
        assert!(codes(src).iter().all(|&c| c == "E0101"));
    }

    #[test]
    fn inline_schema_directive() {
        let src = "-- lint: stream s (spatial_granule str, tag_id str)\n\
                   SELECT spatial_granule, count(distinct tag_id) FROM s \
                   [Range By '5 sec'] GROUP BY spatial_granule";
        assert!(codes(src).is_empty(), "{:?}", lint_cql(src));
    }

    #[test]
    fn dead_predicate_under_disjoint_ranges() {
        let src = "-- lint: stream s temp_voltage\n\
                   -- lint: range s.temp 0..10\n\
                   -- lint: range s.voltage 20..30\n\
                   SELECT * FROM s WHERE temp > voltage";
        assert_eq!(codes(src), vec!["E0601"], "{:?}", lint_cql(src));
        // The span covers exactly the unsatisfiable predicate.
        let src_str = src;
        let d = lint_cql(src_str).remove(0);
        let span = d.span.expect("E0601 carries a span");
        assert_eq!(&src_str[span.start..span.end], "temp > voltage");
    }

    #[test]
    fn redundant_predicate_under_ordered_ranges() {
        let src = "-- lint: stream s temp_voltage\n\
                   -- lint: range s.temp 0..10\n\
                   -- lint: range s.voltage 20..30\n\
                   SELECT * FROM s WHERE temp < voltage";
        assert_eq!(codes(src), vec!["E0602"], "{:?}", lint_cql(src));
    }

    #[test]
    fn overlapping_ranges_decide_nothing() {
        let src = "-- lint: stream s temp_voltage\n\
                   -- lint: range s.temp 0..25\n\
                   -- lint: range s.voltage 20..30\n\
                   SELECT * FROM s WHERE temp > voltage";
        assert!(codes(src).is_empty(), "{:?}", lint_cql(src));
    }

    #[test]
    fn undeclared_fields_stay_undecided() {
        // Without a range directive a Float field spans all of f64, so
        // any literal comparison remains satisfiable both ways.
        let src = "-- lint: stream s temp\n\
                   SELECT * FROM s WHERE temp < 50";
        assert!(codes(src).is_empty(), "{:?}", lint_cql(src));
    }

    #[test]
    fn grouped_having_sharpens_aggregates() {
        // Non-empty groups make count(*) >= 1 provable...
        let src = "-- lint: stream s rfid\n\
                   SELECT tag_id, count(*) FROM s [Range By '5 sec'] \
                   GROUP BY tag_id HAVING count(*) >= 1";
        assert_eq!(codes(src), vec!["E0602"], "{:?}", lint_cql(src));
        // ...but an ungrouped aggregate may see an empty input.
        let src = "-- lint: stream s rfid\n\
                   SELECT count(*) FROM s [Range By '5 sec'] \
                   HAVING count(*) >= 1";
        assert!(codes(src).is_empty(), "{:?}", lint_cql(src));
        // Grouped min() stays inside the declared argument range.
        let src = "-- lint: stream s temp_voltage\n\
                   -- lint: range s.temp 0..10\n\
                   SELECT receptor_id, min(temp) FROM s [Range By '5 sec'] \
                   GROUP BY receptor_id HAVING min(temp) > 50";
        assert_eq!(codes(src), vec!["E0601"], "{:?}", lint_cql(src));
    }

    #[test]
    fn division_hazards() {
        // A divisor range straddling zero warns.
        let src = "-- lint: stream s temp_voltage\n\
                   -- lint: range s.voltage -1..1\n\
                   SELECT temp / voltage AS ratio FROM s";
        assert_eq!(codes(src), vec!["E0603"], "{:?}", lint_cql(src));
        // A divisor that is identically zero errors.
        let src = "-- lint: stream s temp_voltage\n\
                   -- lint: range s.voltage 0..0\n\
                   SELECT temp % voltage AS r FROM s";
        let diags = lint_cql(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E0603");
        assert!(diags[0].message.contains("always zero"), "{diags:?}");
        // A range excluding zero is quiet, as is no range at all.
        let src = "-- lint: stream s temp_voltage\n\
                   -- lint: range s.voltage 3..5\n\
                   SELECT temp / voltage AS ratio FROM s";
        assert!(codes(src).is_empty(), "{:?}", lint_cql(src));
        let src = "-- lint: stream s temp_voltage\n\
                   SELECT temp / voltage AS ratio FROM s";
        assert!(codes(src).is_empty(), "{:?}", lint_cql(src));
    }

    #[test]
    fn ranges_do_not_flow_through_derived_tables() {
        // The inner query exports `t` from a derived table; the declared
        // range on s.temp must not follow it out (aliases/expressions can
        // reshape values arbitrarily), so the outer filter stays Maybe.
        let src = "-- lint: stream s temp_voltage\n\
                   -- lint: range s.temp 0..10\n\
                   SELECT t FROM (SELECT temp AS t FROM s) d WHERE t > 100";
        assert!(codes(src).is_empty(), "{:?}", lint_cql(src));
    }

    #[test]
    fn bad_range_directives_are_reported() {
        // Malformed payloads.
        for bad in [
            "-- lint: range nonsense\nSELECT 1 FROM s",
            "-- lint: range s.temp 5..\nSELECT 1 FROM s",
            "-- lint: range s.temp 9..1\nSELECT 1 FROM s",
            "-- lint: range temp 0..1\nSELECT 1 FROM s",
        ] {
            assert_eq!(codes(bad), vec!["E0002"], "{bad}: {:?}", lint_cql(bad));
        }
        // Undeclared stream, unknown field, non-numeric field.
        let src = "-- lint: range ghost.temp 0..1\nSELECT 1 FROM s";
        assert_eq!(codes(src), vec!["E0002"], "{:?}", lint_cql(src));
        let src = "-- lint: stream s temp\n\
                   -- lint: range s.humidity 0..1\n\
                   SELECT temp FROM s";
        assert_eq!(codes(src), vec!["E0002"], "{:?}", lint_cql(src));
        let src = "-- lint: stream s rfid\n\
                   -- lint: range s.tag_id 0..1\n\
                   SELECT tag_id FROM s";
        assert_eq!(codes(src), vec!["E0002"], "{:?}", lint_cql(src));
    }

    #[test]
    fn range_directive_order_is_irrelevant() {
        // `range` before the `stream` it refines still validates.
        let src = "-- lint: range s.temp 0..10\n\
                   -- lint: stream s temp_voltage\n\
                   -- lint: range s.voltage 20..30\n\
                   SELECT * FROM s WHERE temp > voltage";
        assert_eq!(codes(src), vec!["E0601"], "{:?}", lint_cql(src));
    }
}
