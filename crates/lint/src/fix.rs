//! Machine-applicable fixes: the span-based patcher behind
//! `esp-lint --fix`, plus the helpers that *construct* suggestions at
//! the analysis sites.
//!
//! A [`Suggestion`] is only attached where the repair is forced by the
//! analysis — removing a provably-always-true filter, aligning a window
//! to the declared epoch, dropping a computed column no stage reads.
//! Everything else (disabling durability, deleting a stage) is attached
//! as [`Applicability::MaybeIncorrect`] and never applied automatically.
//!
//! The patcher works on byte spans into the *original* document (CQL
//! text or JSON configuration alike — it never re-serializes, so
//! untouched bytes survive byte-for-byte). Its contract, enforced by the
//! idempotence tests over every fail fixture:
//!
//! 1. spans are clamped to char boundaries and sorted; overlapping
//!    suggestions are rejected (first wins, the rest are counted);
//! 2. applying all machine-applicable suggestions and re-linting yields
//!    a document with **zero** machine-applicable findings;
//! 3. a second `--fix` pass is a byte-for-byte no-op.

use esp_query::parse;
use esp_types::diag::floor_char_boundary;
use esp_types::{Applicability, Diagnostic, Span, Suggestion};

/// Result of one patch pass over a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixOutcome {
    /// The patched document.
    pub fixed: String,
    /// How many suggestions were applied.
    pub applied: usize,
    /// How many machine-applicable suggestions were skipped because
    /// their span overlapped an earlier (already accepted) one.
    pub skipped_overlapping: usize,
}

/// Apply every [`Applicability::MachineApplicable`] suggestion carried
/// by `diags` to `source`. Returns `None` when there is nothing to
/// apply; otherwise the patched text plus counts.
///
/// Suggestions are applied in one deterministic pass: sorted by span
/// start (the diagnostics themselves are already emitted in that order —
/// see [`esp_types::diag::sort_diagnostics`]), deduplicated, and checked
/// for overlap. Overlap is *rejected*, not merged: two analyses fighting
/// over the same bytes means neither fix is forced, so the first keeps
/// its claim and the rest are reported as skipped.
pub fn apply_fixes(source: &str, diags: &[Diagnostic]) -> Option<FixOutcome> {
    let mut suggestions: Vec<&Suggestion> = diags
        .iter()
        .flat_map(|d| d.suggestions.iter())
        .filter(|s| s.is_machine_applicable())
        .collect();
    if suggestions.is_empty() {
        return None;
    }
    suggestions.sort_by_key(|s| (s.span.start, s.span.end));
    suggestions.dedup_by(|a, b| {
        a.span.start == b.span.start && a.span.end == b.span.end && a.replacement == b.replacement
    });

    // Accept non-overlapping spans left to right.
    let mut accepted: Vec<(usize, usize, &str)> = Vec::new();
    let mut skipped = 0usize;
    for s in suggestions {
        let start = floor_char_boundary(source, s.span.start);
        let end = floor_char_boundary(source, s.span.end).max(start);
        match accepted.last() {
            Some(&(_, prev_end, _)) if start < prev_end => skipped += 1,
            _ => accepted.push((start, end, s.replacement.as_str())),
        }
    }

    // Patch right to left so earlier offsets stay valid.
    let mut fixed = source.to_string();
    for &(start, end, replacement) in accepted.iter().rev() {
        fixed.replace_range(start..end, replacement);
    }
    Some(FixOutcome {
        fixed,
        applied: accepted.len(),
        skipped_overlapping: skipped,
    })
}

/// Attach clause-removal suggestions to `E0602` findings (always-true
/// `WHERE`/`HAVING` predicates). The diagnostic's span covers the
/// predicate expression; the fix must also delete the introducing
/// keyword, which only the source text knows — scan backwards for it.
pub(crate) fn attach_cql_suggestions(source: &str, diags: &mut [Diagnostic]) {
    for d in diags.iter_mut() {
        if d.code != "E0602" {
            continue;
        }
        let Some(span) = d.span else { continue };
        let clause = if d.message.starts_with("HAVING") {
            "HAVING"
        } else {
            "WHERE"
        };
        let Some(kw_start) = keyword_before(source, span.start, clause) else {
            continue;
        };
        // Swallow the whitespace run before the keyword so the deletion
        // leaves no double space behind.
        let ws_start = source[..kw_start]
            .rfind(|c: char| !c.is_whitespace())
            .map(|i| i + 1)
            .unwrap_or(0);
        d.suggestions.push(Suggestion::new(
            format!("drop the always-true {clause} clause"),
            Span::new(ws_start, span.end),
            "",
            Applicability::MachineApplicable,
        ));
    }
}

/// Byte offset of the last whole-word, case-insensitive occurrence of
/// `word` strictly before `before` in `source`.
fn keyword_before(source: &str, before: usize, word: &str) -> Option<usize> {
    let hay = source
        .get(..floor_char_boundary(source, before))?
        .as_bytes();
    let needle = word.as_bytes();
    let boundary = |b: u8| !(b.is_ascii_alphanumeric() || b == b'_');
    let mut i = hay.len().checked_sub(needle.len())?;
    loop {
        let here = &hay[i..i + needle.len()];
        if here.eq_ignore_ascii_case(needle)
            && (i == 0 || boundary(hay[i - 1]))
            && (i + needle.len() == hay.len() || boundary(hay[i + needle.len()]))
        {
            return Some(i);
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
}

/// `E0901`: drop the dead computed column `col` from a declarative stage
/// query embedded in a JSON document. The repaired query is rebuilt from
/// the AST (pretty-print round-trips through the parser), and the
/// suggestion replaces the whole embedded query string so no JSON
/// escaping arithmetic is needed. `None` when the query text does not
/// appear verbatim in the document (escaped forms) or the removal would
/// empty the select list.
pub(crate) fn drop_column_suggestion(source: &str, query: &str, col: &str) -> Option<Suggestion> {
    let offset = source.find(query)?;
    let mut stmt = parse(query).ok()?;
    let before = stmt.select.len();
    stmt.select
        .retain(|item| item.alias.as_deref() != Some(col));
    if stmt.select.len() != before - 1 || stmt.select.is_empty() {
        return None;
    }
    let rebuilt = stmt.to_string();
    // The replacement lands inside a JSON string literal; the rebuilt
    // query must not need escaping there.
    if rebuilt.contains(['"', '\\', '\n']) {
        return None;
    }
    Some(Suggestion::new(
        format!("drop the dead computed column '{col}'"),
        Span::new(offset, offset + query.len()),
        rebuilt,
        Applicability::MachineApplicable,
    ))
}

/// `E0903`: a nondeterministic stage under a durable gateway. The two
/// defensible repairs (make the stage deterministic, or disable
/// durability) both change intent, so flag `"durable": true` as
/// [`Applicability::MaybeIncorrect`].
pub(crate) fn durable_false_suggestion(source: &str) -> Option<Suggestion> {
    let needle = "\"durable\": true";
    let offset = source.find(needle)?;
    Some(Suggestion::new(
        "disable durability for this gateway",
        Span::new(offset, offset + needle.len()),
        "\"durable\": false",
        Applicability::MaybeIncorrect,
    ))
}

/// `E0804`: a declarative stage in a durability document's `stages`
/// list. Removing the stage changes the pipeline, so the flag is
/// [`Applicability::MaybeIncorrect`]; the span covers the offending
/// list entry (with its leading comma, when present) so the repair is
/// one deletion.
pub(crate) fn declarative_stage_suggestion(source: &str) -> Option<Suggestion> {
    let needle = "\"declarative\"";
    let offset = source.find(needle)?;
    // Extend left over a separating comma so the list stays valid JSON.
    let mut start = offset;
    let head = source[..offset].trim_end();
    if head.ends_with(',') {
        start = head.len() - 1;
    }
    Some(Suggestion::new(
        "remove the non-checkpointable declarative stage from the durability contract",
        Span::new(start, offset + needle.len()),
        "",
        Applicability::MaybeIncorrect,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ma(span: Span, replacement: &str) -> Diagnostic {
        Diagnostic::warning("E0602", "x").with_suggestion(Suggestion::new(
            "s",
            span,
            replacement,
            Applicability::MachineApplicable,
        ))
    }

    #[test]
    fn applies_spans_right_to_left() {
        let src = "abc def ghi";
        let diags = vec![ma(Span::new(0, 3), "X"), ma(Span::new(8, 11), "YZ")];
        let out = apply_fixes(src, &diags).expect("applies");
        assert_eq!(out.fixed, "X def YZ");
        assert_eq!(out.applied, 2);
        assert_eq!(out.skipped_overlapping, 0);
    }

    #[test]
    fn rejects_overlaps_first_wins() {
        let src = "abcdef";
        let diags = vec![ma(Span::new(0, 4), "X"), ma(Span::new(2, 6), "Y")];
        let out = apply_fixes(src, &diags).expect("applies");
        assert_eq!(out.fixed, "Xef");
        assert_eq!(out.applied, 1);
        assert_eq!(out.skipped_overlapping, 1);
    }

    #[test]
    fn dedups_identical_suggestions() {
        let src = "abcdef";
        let diags = vec![ma(Span::new(0, 3), "X"), ma(Span::new(0, 3), "X")];
        let out = apply_fixes(src, &diags).expect("applies");
        assert_eq!(out.fixed, "Xdef");
        assert_eq!(out.applied, 1);
        assert_eq!(out.skipped_overlapping, 0);
    }

    #[test]
    fn maybe_incorrect_is_never_applied() {
        let src = "abc";
        let diags = vec![
            Diagnostic::warning("E0903", "x").with_suggestion(Suggestion::new(
                "s",
                Span::new(0, 3),
                "Z",
                Applicability::MaybeIncorrect,
            )),
        ];
        assert!(apply_fixes(src, &diags).is_none());
    }

    #[test]
    fn spans_clamp_to_char_boundaries() {
        let src = "aµb"; // µ spans bytes 1..3
        let diags = vec![ma(Span::new(2, 3), "X")]; // start mid-µ
        let out = apply_fixes(src, &diags).expect("applies");
        // start clamps down to 1; the patch replaces the whole µ..
        assert_eq!(out.fixed, "aXb");
    }

    #[test]
    fn keyword_scan_is_word_and_case_insensitive() {
        let src = "SELECT anywhere FROM s where temp < 5";
        let pred = src.find("temp").unwrap();
        // "anywhere" must not match; the standalone lowercase "where" must.
        assert_eq!(
            keyword_before(src, pred, "WHERE"),
            Some(src.rfind("where").unwrap())
        );
        assert_eq!(keyword_before(src, pred, "HAVING"), None);
    }

    #[test]
    fn drop_column_rebuilds_query() {
        let doc =
            r#"{"query": "SELECT temp, count(*) AS n FROM s [Range By '5 sec'] GROUP BY temp"}"#;
        let query = "SELECT temp, count(*) AS n FROM s [Range By '5 sec'] GROUP BY temp";
        let s = drop_column_suggestion(doc, query, "n").expect("suggestion");
        assert!(s.is_machine_applicable());
        assert!(!s.replacement.contains("count"), "{}", s.replacement);
        assert_eq!(&doc[s.span.start..s.span.end], query);
        // Removing the only column refuses.
        let doc = r#"{"query": "SELECT count(*) AS n FROM s"}"#;
        assert!(drop_column_suggestion(doc, "SELECT count(*) AS n FROM s", "n").is_none());
    }
}
