//! # esp-lint
//!
//! Static analysis for ESP pipelines — every check runs **before any
//! tuple flows**, so a misconfigured deployment is rejected at the desk,
//! not discovered as silently wrong output in production.
//!
//! The paper's framework is configuration-heavy: CQL stage queries,
//! temporal granules, proximity groups, operator wiring, gateway
//! sharding. Each knob has failure modes that type-check fine in Rust
//! and only bite at runtime (an aggregate over a string column, a window
//! eviction that cuts through an epoch, a receptor no Merge group
//! covers, a global-scope stage split across gateway shards). This crate
//! collects those checks under stable diagnostic codes:
//!
//! | range | area | examples |
//! |-------|------|----------|
//! | E00xx | input itself | `E0001` syntax error, `E0002` bad lint directive |
//! | E01xx | schema / types | `E0101` unknown field, `E0103` aggregate arg type |
//! | E02xx | temporal granules | `E0201` window below epoch, `E0202` not a multiple |
//! | E03xx | spatial granules | `E0301` ungrouped receptor, `E0303` duplicate granule |
//! | E04xx | graph structure | `E0401` cycle, `E0405` fan-in mismatch |
//! | E05xx | gateway | `E0501` lateness ≥ window, `E0502` global stage sharded |
//! | E06xx | semantics (abstract interpretation) | `E0601` dead stage, `E0603` reachable zero divisor, `E0604` schema drift |
//! | E07xx | concurrency (model checker) | `E0701` deadlock, `E0702` lost shutdown wakeup, `E0703` watermark regression |
//! | E08xx | durability | `E0801` unaligned checkpoint interval, `E0802` WAL retention below lateness, `E0803` zero snapshot retention, `E0804` non-checkpointable stage |
//! | E09xx | whole-pipeline dataflow (fixpoint engine) | `E0901` dead computed column, `E0902` receptor stream reaching no output, `E0903` nondeterministic stage under durability, `E0904` lateness exceeds window depth, `E0905` unbounded retained state |
//!
//! The `E06xx` pass interprets predicates and arithmetic over declared
//! field ranges (`-- lint: range <stream>.<field> <lo>..<hi>`) and
//! deployment documents; the `E07xx` codes are emitted by the
//! deterministic schedule explorers in `esp-stream::model` and
//! `esp-gateway::model`, which exhaust every interleaving of small
//! runner/gateway configurations. The `E09xx` family is computed by the
//! [`flow`] module's generic monotone-framework fixpoint engine over the
//! whole stage cascade (backward field liveness, forward determinism
//! taint, lateness and state-bound budget propagation); pipeline
//! documents — a deployment plus the gateway knobs it runs under — are
//! linted end to end by [`flow::lint_pipeline`].
//!
//! Three surfaces expose the checks:
//!
//! - **library**: [`lint_cql`], [`lint_deployment`], [`lint_gateway`],
//!   and [`GraphSpec::validate`]. The same validators gate the runtime
//!   entry points — `EspProcessor::deploy` and `Gateway::spawn` refuse
//!   to start on any error, returning the diagnostics in
//!   `EspError::Invalid`.
//! - **CLI**: the `esp-lint` binary lints `.cql` and deployment `.json`
//!   files with rustc-style rendering and spans into the original text.
//! - **CI**: the `lint-pipelines` job runs the CLI over every shipped
//!   example and fixture; any diagnostic fails the build.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// The linter must never panic on the inputs it exists to criticize.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod absint;
pub mod codes;
pub mod cql;
pub mod fix;
pub mod flow;
pub mod graphspec;
pub mod witness;

pub use codes::{explain, CodeInfo, CODES};
pub use cql::lint_cql;
pub use fix::{apply_fixes, FixOutcome};
pub use flow::{fixpoint, lint_pipeline, Direction, Facts, FlowGraph, Lattice, PipelineSpec};
pub use graphspec::{GraphEdge, GraphNode, GraphSpec, NodeKind};
pub use witness::{synthesize_witnesses, Witness, WitnessOutcome};

use esp_core::DeploymentSpec;
use esp_durability::DurabilitySpec;
use esp_gateway::GatewayConfig;
use esp_types::{Diagnostic, TimeDelta};

/// The single `E0001` every JSON linter emits for a document that fails
/// to deserialize, so the failure shape stays uniform across deployment,
/// durability, and pipeline inputs.
pub(crate) fn parse_failure(kind: &str, err: &dyn std::fmt::Display) -> Vec<Diagnostic> {
    vec![Diagnostic::error(
        "E0001",
        format!("{kind} document does not parse: {err}"),
    )]
}

/// Lint a JSON deployment document (the [`DeploymentSpec`] wire form).
///
/// A document that does not deserialize yields a single `E0001`; one
/// that does is checked for temporal-granule consistency (E0201/E0203/
/// E0204), spatial-group defects (E0302/E0303/E0304), the semantic
/// `E06xx` pass ([`DeploymentSpec::analyze`] — dead Point filters,
/// receptor schema drift, granule-unit mismatches), and the backward
/// field-liveness pass (E0901 dead computed column, E0902 receptor
/// stream whose fields are never read).
pub fn lint_deployment(json: &str) -> Vec<Diagnostic> {
    match DeploymentSpec::from_json(json) {
        Ok(spec) => {
            let mut diags = spec.validate();
            diags.extend(spec.analyze());
            let engine = esp_query::Engine::new();
            diags.extend(flow::liveness_pass(&spec, json, &engine));
            esp_types::diag::sort_diagnostics(&mut diags);
            diags
        }
        Err(e) => parse_failure("deployment", &e),
    }
}

/// Lint a JSON durability document (the [`DurabilitySpec`] wire form:
/// the persistence knobs plus the epoch period and lateness they must
/// agree with).
///
/// A document that does not deserialize yields a single `E0001`; one
/// that does is checked for unparseable time spans (`E0204`) and the
/// durability invariants: `E0801` (checkpoint interval not a positive
/// multiple of the epoch period), `E0802` (WAL retention shorter than
/// the permitted lateness), `E0803` (zero snapshot retention), `E0804`
/// (a declared stage kind — the optional `stages` list — has no
/// serialized state form and so cannot be checkpointed).
pub fn lint_durability(json: &str) -> Vec<Diagnostic> {
    match DurabilitySpec::from_json(json) {
        Ok(spec) => {
            let mut diags = spec.lint();
            // E0804 is emitted by the durability crate without document
            // context; attach the span of the offending stage entry and
            // a (human-confirmed) removal suggestion here, where the
            // source text is in hand.
            for d in diags.iter_mut().filter(|d| d.code == "E0804") {
                if d.span.is_none() {
                    if let Some(off) = json.find("\"declarative\"") {
                        d.span = Some(esp_types::Span::new(off, off + "\"declarative\"".len()));
                    }
                }
                if let Some(sugg) = fix::declarative_stage_suggestion(json) {
                    d.suggestions.push(sugg);
                }
            }
            esp_types::diag::sort_diagnostics(&mut diags);
            diags
        }
        Err(e) => parse_failure("durability", &e),
    }
}

/// Route a JSON document to the linter its shape calls for: a top-level
/// `durability` key marks a durability document ([`lint_durability`]),
/// a top-level `gateway` key marks a pipeline document
/// ([`flow::lint_pipeline`]), anything else is a deployment
/// ([`lint_deployment`]). The CLI and the fixture suite both dispatch
/// `.json` inputs through here.
pub fn lint_json(json: &str) -> Vec<Diagnostic> {
    let doc = serde_json::from_str::<serde::value::Value>(json).ok();
    let has = |key: &str| doc.as_ref().map(|v| v.get(key).is_some()).unwrap_or(false);
    if has("durability") {
        lint_durability(json)
    } else if has("gateway") {
        flow::lint_pipeline(json)
    } else {
        lint_deployment(json)
    }
}

/// Lint a gateway configuration against the smoothing window of the
/// pipeline it will feed (`None` when the window is unknown — the
/// lateness-vs-window check E0501 is then skipped).
///
/// Thin re-export of [`GatewayConfig::validate`] so callers holding only
/// this crate see the whole check surface in one place.
pub fn lint_gateway(config: &GatewayConfig, smooth_window: Option<TimeDelta>) -> Vec<Diagnostic> {
    config.validate(smooth_window)
}

/// What kind of artifact an embedded example is, which decides the
/// linter that runs over it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExampleKind {
    /// CQL query text with `-- lint:` directives.
    Cql,
    /// JSON deployment document.
    Deployment,
    /// JSON pipeline document (deployment + gateway knobs).
    Pipeline,
}

/// A named, embedded example pipeline the CLI can lint without touching
/// the filesystem (`esp-lint --example <name>`).
#[derive(Debug, Clone, Copy)]
pub struct Example {
    /// Name accepted by `--example`.
    pub name: &'static str,
    /// Which linter applies.
    pub kind: ExampleKind,
    /// The artifact text.
    pub source: &'static str,
}

/// The shipped example pipelines: the paper's queries 1–6 and the §4
/// shelf deployment, all of which must lint clean (the zero-false-
/// positive bar the test suite enforces).
pub const EXAMPLES: &[Example] = &[
    Example {
        name: "q1-shelf-count",
        kind: ExampleKind::Cql,
        source: include_str!("../fixtures/clean/q1_shelf_count.cql"),
    },
    Example {
        name: "q2-smooth",
        kind: ExampleKind::Cql,
        source: include_str!("../fixtures/clean/q2_smooth.cql"),
    },
    Example {
        name: "q3-arbitrate",
        kind: ExampleKind::Cql,
        source: include_str!("../fixtures/clean/q3_arbitrate.cql"),
    },
    Example {
        name: "q4-point-filter",
        kind: ExampleKind::Cql,
        source: include_str!("../fixtures/clean/q4_point_filter.cql"),
    },
    Example {
        name: "q5-merge-outlier",
        kind: ExampleKind::Cql,
        source: include_str!("../fixtures/clean/q5_merge_outlier.cql"),
    },
    Example {
        name: "q6-person-detector",
        kind: ExampleKind::Cql,
        source: include_str!("../fixtures/clean/q6_person_detector.cql"),
    },
    Example {
        name: "rfid-shelf-deployment",
        kind: ExampleKind::Deployment,
        source: include_str!("../fixtures/clean/rfid_shelf_deployment.json"),
    },
    Example {
        name: "durable-shelf-pipeline",
        kind: ExampleKind::Pipeline,
        source: include_str!("../fixtures/clean/durable_shelf_pipeline.json"),
    },
];

/// Lint one embedded example by name; `None` for an unknown name.
pub fn lint_example(name: &str) -> Option<Vec<Diagnostic>> {
    let ex = EXAMPLES.iter().find(|e| e.name == name)?;
    Some(match ex.kind {
        ExampleKind::Cql => lint_cql(ex.source),
        ExampleKind::Deployment => lint_deployment(ex.source),
        ExampleKind::Pipeline => flow::lint_pipeline(ex.source),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_embedded_example_lints_clean() {
        for ex in EXAMPLES {
            let diags = lint_example(ex.name).unwrap();
            assert!(
                diags.is_empty(),
                "example '{}' should lint clean, got: {:#?}",
                ex.name,
                diags
            );
        }
    }

    #[test]
    fn unknown_example_is_none() {
        assert!(lint_example("no-such-pipeline").is_none());
    }

    #[test]
    fn undeserializable_deployment_is_e0001() {
        let diags = lint_deployment("{ not json");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "E0001");
    }

    #[test]
    fn undeserializable_durability_document_is_e0001() {
        let diags = lint_durability(r#"{"durability": {}}"#);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "E0001");
    }

    #[test]
    fn json_router_picks_linter_by_top_level_key() {
        // Durability shape → durability codes.
        let durability = r#"{
            "durability": {
                "dir": "/tmp/esp",
                "checkpoint_interval": "300 ms",
                "wal_retention": "1 min",
                "max_snapshots": 0
            },
            "epoch_period": "200 ms"
        }"#;
        let diags = lint_json(durability);
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["E0801", "E0803"], "{diags:#?}");
        // Gateway shape → the pipeline linter (E0001 mentions "pipeline").
        let diags = lint_json(r#"{"gateway": {}}"#);
        assert!(
            diags
                .iter()
                .all(|d| d.code == "E0001" && d.message.contains("pipeline")),
            "{diags:#?}"
        );
        // Anything else → the deployment linter.
        let diags = lint_json("{}");
        assert!(diags.iter().all(|d| d.code == "E0001"), "{diags:#?}");
    }

    #[test]
    fn gateway_wrapper_matches_config_validate() {
        let config = GatewayConfig::new(vec![]);
        let direct = config.validate(None);
        let wrapped = lint_gateway(&config, None);
        assert_eq!(
            direct.iter().map(|d| d.code).collect::<Vec<_>>(),
            wrapped.iter().map(|d| d.code).collect::<Vec<_>>()
        );
        assert!(wrapped.iter().any(|d| d.code == "E0503"));
    }
}
