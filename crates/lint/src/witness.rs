//! Counterexample witness synthesis: replay value-domain findings
//! through the shipped engine.
//!
//! A diagnostic like `E0601` ("this WHERE can never hold") is a *claim*
//! derived from interval arithmetic. This module turns the claim into
//! evidence: it inverts the interval facts that produced the finding —
//! picking concrete members (endpoints, zero crossings, midpoints) from
//! the declared ranges via [`Interval::sample_points`] — builds a
//! minimal tuple stream from them, and executes it through the *real*
//! engine ([`Engine::run_once`]), checking that the defect manifests:
//!
//! * `E0601` dead predicate — the stage emits **0** rows while a control
//!   run with the predicate removed emits some;
//! * `E0602` redundant predicate — the stage emits exactly what the
//!   control emits (the filter removed nothing);
//! * `E0603` reachable zero divisor — a synthesized zero-divisor tuple
//!   drives the engine down its divide-by-zero `NULL` path;
//! * `E0903` volatile taint — two runs over identical input differ;
//! * `E0905` unbounded grouping key — doubling the key's distinct
//!   values doubles the retained groups.
//!
//! The linter is thereby *self-checking*: a finding whose witness run
//! contradicts the claim is downgraded to a warning on the spot (and the
//! refutation recorded), instead of being shipped on trust. Findings the
//! synthesizer cannot execute (derived tables, undeclared schemas,
//! subqueries) yield a [`WitnessOutcome::NotAttempted`] with the reason
//! — never a silent skip.

use std::collections::BTreeMap;
use std::sync::Arc;

use esp_core::deploy::StageSpec;
use esp_query::ast::{Expr, FromSource, SelectItem, SelectStmt};
use esp_query::range::{range_of, Interval, Ranged};
use esp_query::Engine;
use esp_types::{DataType, Diagnostic, Schema, Severity, Span, Ts, Tuple, TupleBuilder, Value};

use crate::absint::RangeDecls;
use crate::flow::PipelineSpec;

/// Keep the synthesized stream small: the cartesian sample product is
/// truncated here (deterministically — samples are ordered).
const MAX_WITNESS_ROWS: usize = 32;

/// One input batch per distinct stream: `(stream, tuples)`.
type Batches = Vec<(String, Vec<Tuple>)>;

/// How one witness run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessOutcome {
    /// The defect manifested through the real engine.
    Confirmed {
        /// What the engine did, e.g. `"0 of 9 in-range rows emitted"`.
        evidence: String,
    },
    /// The engine contradicted the claim; the diagnostic was downgraded.
    Refuted {
        /// What the engine did instead.
        observed: String,
    },
    /// The finding is not executable by this synthesizer.
    NotAttempted {
        /// Why (derived table, undeclared schema, subquery, …).
        reason: String,
    },
}

/// A synthesized counterexample for one diagnostic, plus the verdict of
/// replaying it through the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The diagnostic code the witness argues for.
    pub code: &'static str,
    /// The diagnostic's span into the linted document.
    pub span: Option<Span>,
    /// The claim under test, e.g. `"WHERE predicate is always false"`.
    pub claim: String,
    /// The synthesized input tuples, rendered one per line as
    /// `stream(field=value, …)`.
    pub inputs: Vec<String>,
    /// The verdict.
    pub outcome: WitnessOutcome,
}

impl Witness {
    /// Whether the engine run confirmed the finding.
    pub fn confirmed(&self) -> bool {
        matches!(self.outcome, WitnessOutcome::Confirmed { .. })
    }

    /// Render a human-readable transcript block (the CI artifact form).
    pub fn render(&self) -> String {
        let mut out = format!("witness[{}]: {}\n", self.code, self.claim);
        for line in &self.inputs {
            out.push_str(&format!("  input: {line}\n"));
        }
        match &self.outcome {
            WitnessOutcome::Confirmed { evidence } => {
                out.push_str(&format!("  verdict: CONFIRMED — {evidence}\n"));
            }
            WitnessOutcome::Refuted { observed } => {
                out.push_str(&format!("  verdict: REFUTED — {observed}\n"));
            }
            WitnessOutcome::NotAttempted { reason } => {
                out.push_str(&format!("  verdict: not attempted — {reason}\n"));
            }
        }
        out
    }
}

/// Synthesize and validate witnesses for every value-domain finding in
/// `diags`, downgrading refuted findings to warnings in place. Routes by
/// document shape: JSON pipeline documents get the `E0903`/`E0905`
/// harness, CQL text the `E0601`/`E0602`/`E0603` one.
pub fn synthesize_witnesses(source: &str, diags: &mut [Diagnostic]) -> Vec<Witness> {
    let witnesses = if source.trim_start().starts_with('{') {
        witness_pipeline(source, diags)
    } else {
        witness_cql(source, diags)
    };
    for w in &witnesses {
        if let WitnessOutcome::Refuted { observed } = &w.outcome {
            for d in diags.iter_mut() {
                if d.code == w.code && spans_eq(d.span, w.span) {
                    d.severity = Severity::Warning;
                    d.notes.push(format!(
                        "witness execution refuted this finding ({observed}); downgraded to warning"
                    ));
                }
            }
        }
    }
    witnesses
}

fn spans_eq(a: Option<Span>, b: Option<Span>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => a.start == b.start && a.end == b.end,
        (None, None) => true,
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// CQL: E0601 / E0602 / E0603
// ---------------------------------------------------------------------------

/// Witness the `E0601`/`E0602`/`E0603` findings of one CQL document.
pub fn witness_cql(source: &str, diags: &[Diagnostic]) -> Vec<Witness> {
    let targets: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| matches!(d.code, "E0601" | "E0602" | "E0603"))
        .collect();
    if targets.is_empty() {
        return Vec::new();
    }
    let mut scratch = Vec::new();
    let directives = crate::cql::parse_directives(source, &mut scratch);
    let stmt = match esp_query::parse(source) {
        Ok(s) => s,
        Err(_) => return Vec::new(),
    };
    let ctx = CqlCtx::build(source, &stmt, &directives.streams, &directives.ranges);
    targets
        .into_iter()
        .map(|d| {
            let claim = format!("{} — {}", d.code, d.message);
            let make = |outcome, inputs| Witness {
                code: d.code,
                span: d.span,
                claim: claim.clone(),
                inputs,
                outcome,
            };
            match &ctx {
                Err(reason) => make(
                    WitnessOutcome::NotAttempted {
                        reason: reason.clone(),
                    },
                    Vec::new(),
                ),
                Ok(ctx) => {
                    let (outcome, inputs) = match d.code {
                        "E0603" => ctx.witness_divisor(d),
                        _ => ctx.witness_predicate(d),
                    };
                    make(outcome, inputs)
                }
            }
        })
        .collect()
}

/// Everything needed to execute a witness for one top-level CQL query.
struct CqlCtx<'a> {
    source: &'a str,
    stmt: &'a SelectStmt,
    /// `(alias-or-name, stream, schema)` for each FROM item, in order.
    bindings: Vec<(Option<String>, String, Arc<Schema>)>,
    /// Distinct input streams with their schemas (push targets).
    streams: Vec<(String, Arc<Schema>)>,
    ranges: &'a RangeDecls,
    engine: Engine,
}

impl<'a> CqlCtx<'a> {
    fn build(
        source: &'a str,
        stmt: &'a SelectStmt,
        declared: &std::collections::HashMap<String, Arc<Schema>>,
        ranges: &'a RangeDecls,
    ) -> Result<CqlCtx<'a>, String> {
        let mut bindings = Vec::new();
        let mut streams: Vec<(String, Arc<Schema>)> = Vec::new();
        for item in &stmt.from {
            match &item.source {
                FromSource::Derived(_) => {
                    return Err("the query reads a derived table; witness synthesis only \
                                executes single-level stream queries"
                        .into())
                }
                FromSource::Named(name) => {
                    let Some(schema) = declared.get(name) else {
                        return Err(format!(
                            "stream '{name}' has no declared schema (add a \
                             '-- lint: stream' directive)"
                        ));
                    };
                    bindings.push((
                        item.alias.clone().or_else(|| Some(name.clone())),
                        name.clone(),
                        Arc::clone(schema),
                    ));
                    if !streams.iter().any(|(s, _)| s == name) {
                        streams.push((name.clone(), Arc::clone(schema)));
                    }
                }
            }
        }
        Ok(CqlCtx {
            source,
            stmt,
            bindings,
            streams,
            ranges,
            engine: Engine::new(),
        })
    }

    /// The declared interval for a field, or `TOP` when only the type is
    /// known.
    fn interval(&self, stream: &str, field: &str) -> Interval {
        self.ranges
            .get(&(stream.to_string(), field.to_string()))
            .copied()
            .unwrap_or(Interval::TOP)
    }

    /// Resolve a (possibly qualified) field reference to its stream, the
    /// way the runtime does.
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Option<(String, Arc<Schema>)> {
        match qualifier {
            Some(q) => self
                .bindings
                .iter()
                .find(|(n, _, _)| n.as_deref() == Some(q))
                .map(|(_, s, sch)| (s.clone(), Arc::clone(sch))),
            None => self
                .bindings
                .iter()
                .find(|(_, _, sch)| sch.field(name).is_some())
                .map(|(_, s, sch)| (s.clone(), Arc::clone(sch))),
        }
    }

    /// Sample values for one `(stream, field)`: interval members filtered
    /// to the field's type (integers stay integral). At most 3 per field
    /// so the cartesian product stays small.
    fn samples(&self, stream: &str, schema: &Schema, field: &str) -> Vec<f64> {
        let Some(f) = schema.field(field) else {
            return Vec::new();
        };
        let iv = self.interval(stream, field);
        let pts = match f.data_type {
            DataType::Float | DataType::Ts => iv.sample_points(),
            DataType::Int => {
                let mut ints = Vec::new();
                for p in iv.sample_points() {
                    for cand in [p.ceil(), p.floor()] {
                        if iv.contains(cand) && !ints.contains(&cand) {
                            ints.push(cand);
                        }
                    }
                }
                ints
            }
            _ => Vec::new(),
        };
        pts.into_iter().take(3).collect()
    }

    /// All concrete assignments over `fields` (cartesian product of each
    /// field's samples), truncated to [`MAX_WITNESS_ROWS`].
    fn assignments(
        &self,
        fields: &[(String, Arc<Schema>, String)],
    ) -> Vec<BTreeMap<(String, String), f64>> {
        let mut rows: Vec<BTreeMap<(String, String), f64>> = vec![BTreeMap::new()];
        for (stream, schema, field) in fields {
            let samples = self.samples(stream, schema, field);
            if samples.is_empty() {
                continue;
            }
            let mut next = Vec::new();
            'outer: for row in &rows {
                for s in &samples {
                    let mut r = row.clone();
                    r.insert((stream.clone(), field.clone()), *s);
                    next.push(r);
                    if next.len() >= MAX_WITNESS_ROWS {
                        break 'outer;
                    }
                }
            }
            rows = next;
        }
        rows
    }

    /// Build one tuple for `stream` under `assignment`; unassigned fields
    /// get an in-range default.
    fn tuple_for(
        &self,
        stream: &str,
        schema: &Arc<Schema>,
        assignment: &BTreeMap<(String, String), f64>,
    ) -> Result<Tuple, String> {
        let mut b = TupleBuilder::new(schema, Ts::ZERO);
        for f in schema.fields() {
            let key = (stream.to_string(), f.name.clone());
            let v: Value = match assignment.get(&key) {
                Some(x) => match f.data_type {
                    DataType::Int => Value::Int(*x as i64),
                    DataType::Ts => Value::Ts(Ts::from_millis(x.max(0.0) as u64)),
                    _ => Value::Float(*x),
                },
                None => {
                    let iv = self.interval(stream, &f.name);
                    default_value(f.data_type, Some(iv))
                }
            };
            b = b.set(&f.name, v).map_err(|e| e.to_string())?;
        }
        b.build().map_err(|e| e.to_string())
    }

    /// Per-stream batches for a set of assignments (one tuple per stream
    /// per assignment), plus the rendered transcript lines.
    fn batches(
        &self,
        assignments: &[BTreeMap<(String, String), f64>],
    ) -> Result<(Batches, Vec<String>), String> {
        let mut batches: Vec<(String, Vec<Tuple>)> = self
            .streams
            .iter()
            .map(|(s, _)| (s.clone(), Vec::new()))
            .collect();
        let mut rendered = Vec::new();
        for a in assignments {
            for (i, (stream, schema)) in self.streams.iter().enumerate() {
                let t = self.tuple_for(stream, schema, a)?;
                rendered.push(render_tuple(stream, &t));
                batches[i].1.push(t);
            }
        }
        Ok((batches, rendered))
    }

    fn run(&self, sql: &str, batches: &[(String, Vec<Tuple>)]) -> Result<Vec<Tuple>, String> {
        let schemas: Vec<(&str, Arc<Schema>)> = self
            .streams
            .iter()
            .map(|(s, sch)| (s.as_str(), Arc::clone(sch)))
            .collect();
        let inputs: Vec<(&str, Vec<Tuple>)> = batches
            .iter()
            .map(|(s, rows)| (s.as_str(), rows.clone()))
            .collect();
        self.engine
            .run_once(sql, &schemas, &inputs, Ts::ZERO)
            .map_err(|e| e.to_string())
    }

    /// `E0601`/`E0602`: run the query as written and with the flagged
    /// clause removed, over tuples sampling the declared ranges.
    fn witness_predicate(&self, d: &Diagnostic) -> (WitnessOutcome, Vec<String>) {
        let Some(span) = d.span else {
            return (not_attempted("the finding carries no span"), Vec::new());
        };
        // Which top-level clause does the span point at?
        let clause = [
            (self.stmt.where_clause.as_ref(), WhichClause::Where),
            (self.stmt.having.as_ref(), WhichClause::Having),
        ]
        .into_iter()
        .find_map(|(e, which)| {
            let e = e?;
            let es = e.span();
            (es.start == span.start && es.end == span.end).then_some((e, which))
        });
        let Some((pred, which)) = clause else {
            return (
                not_attempted(
                    "the predicate is not a top-level WHERE/HAVING clause \
                     (derived table or subquery)",
                ),
                Vec::new(),
            );
        };
        if contains_subquery(pred) {
            return (
                not_attempted("the predicate contains a quantified subquery"),
                Vec::new(),
            );
        }
        let fields = match self.predicate_fields(pred) {
            Ok(f) => f,
            Err(reason) => return (not_attempted(&reason), Vec::new()),
        };
        let assignments = self.assignments(&fields);
        let (batches, rendered) = match self.batches(&assignments) {
            Ok(x) => x,
            Err(e) => {
                return (
                    not_attempted(&format!("could not build witness tuples: {e}")),
                    Vec::new(),
                )
            }
        };
        // Control: the same query with the flagged clause removed.
        let mut control = self.stmt.clone();
        match which {
            WhichClause::Where => control.where_clause = None,
            WhichClause::Having => control.having = None,
        }
        let control_sql = control.to_string();
        let (actual, baseline) = match (
            self.run(self.source, &batches),
            self.run(&control_sql, &batches),
        ) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                return (
                    not_attempted(&format!("engine rejected the witness run: {e}")),
                    rendered,
                )
            }
        };
        let outcome = match d.code {
            "E0601" => {
                if !actual.is_empty() {
                    WitnessOutcome::Refuted {
                        observed: format!(
                            "the 'dead' stage emitted {} row(s) over {} in-range tuple(s)",
                            actual.len(),
                            rendered.len()
                        ),
                    }
                } else if baseline.is_empty() {
                    not_attempted(
                        "both the stage and the predicate-free control emitted nothing; \
                         the zero output cannot be pinned on the predicate",
                    )
                } else {
                    WitnessOutcome::Confirmed {
                        evidence: format!(
                            "0 rows emitted from {} in-range tuple(s); removing the \
                             predicate emits {}",
                            rendered.len(),
                            baseline.len()
                        ),
                    }
                }
            }
            _ => {
                // E0602: the filter must remove nothing.
                if baseline.is_empty() {
                    not_attempted("the predicate-free control emitted nothing to compare against")
                } else if actual.len() == baseline.len() {
                    WitnessOutcome::Confirmed {
                        evidence: format!(
                            "the filter kept all {} row(s) the predicate-free control \
                             emitted",
                            baseline.len()
                        ),
                    }
                } else {
                    WitnessOutcome::Refuted {
                        observed: format!(
                            "the 'always-true' filter dropped {} of {} row(s)",
                            baseline.len() - actual.len(),
                            baseline.len()
                        ),
                    }
                }
            }
        };
        (outcome, rendered)
    }

    /// `E0603`: find a concrete in-range assignment that zeroes the
    /// divisor, then watch the engine take its divide-by-zero NULL path.
    fn witness_divisor(&self, d: &Diagnostic) -> (WitnessOutcome, Vec<String>) {
        let Some(span) = d.span else {
            return (not_attempted("the finding carries no span"), Vec::new());
        };
        let Some(div) = find_division(self.stmt, span) else {
            return (
                not_attempted("the flagged division is not in the top-level query"),
                Vec::new(),
            );
        };
        let Expr::Arith { rhs: divisor, .. } = div else {
            return (
                not_attempted("the flagged span is not a division"),
                Vec::new(),
            );
        };
        if contains_aggregate(div, self.engine.catalog()) || contains_subquery(div) {
            return (
                not_attempted("the division involves aggregates or subqueries"),
                Vec::new(),
            );
        }
        let fields = match self.predicate_fields(divisor) {
            Ok(f) => f,
            Err(reason) => return (not_attempted(&reason), Vec::new()),
        };
        // Search the sample product for an assignment that makes the
        // divisor exactly zero, judged by the same abstract evaluator
        // that raised the finding (point intervals are exact).
        let zero = self.assignments(&fields).into_iter().find(|a| {
            let env = |q: Option<&str>, n: &str| -> Ranged {
                match self.resolve(q, n) {
                    Some((stream, _)) => match a.get(&(stream, n.to_string())) {
                        Some(v) => Ranged::Num(Interval::point(*v)),
                        None => Ranged::Unknown,
                    },
                    None => Ranged::Unknown,
                }
            };
            matches!(range_of(divisor, &env).as_interval(),
                     Some(iv) if iv.is_point() && iv.contains(0.0))
        });
        let Some(zero) = zero else {
            return (
                not_attempted(
                    "no sampled in-range assignment zeroes the divisor (the range \
                     straddles zero but its sampled members miss it)",
                ),
                Vec::new(),
            );
        };
        let (batches, rendered) = match self.batches(std::slice::from_ref(&zero)) {
            Ok(x) => x,
            Err(e) => {
                return (
                    not_attempted(&format!("could not build witness tuples: {e}")),
                    Vec::new(),
                )
            }
        };
        // Probe: project just the flagged division over the same FROM.
        let probe = SelectStmt {
            select: vec![SelectItem {
                expr: div.clone(),
                alias: Some("esp_probe".into()),
            }],
            from: self.stmt.from.clone(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
        };
        let out = match self.run(&probe.to_string(), &batches) {
            Ok(o) => o,
            Err(e) => {
                return (
                    not_attempted(&format!("engine rejected the witness run: {e}")),
                    rendered,
                )
            }
        };
        let outcome = match out.first().map(|t| t.get("esp_probe")) {
            Some(Some(Value::Null)) => WitnessOutcome::Confirmed {
                evidence: "the engine evaluated the division over the zero-divisor tuple \
                           to NULL (its divide-by-zero path)"
                    .into(),
            },
            Some(Some(v)) => WitnessOutcome::Refuted {
                observed: format!("the division evaluated to {v:?}, not NULL"),
            },
            _ => not_attempted("the probe query emitted no row to inspect"),
        };
        (outcome, rendered)
    }

    /// The `(stream, schema, field)` triples a predicate reads, resolved;
    /// an error when any reference cannot be pinned to a declared stream.
    fn predicate_fields(&self, expr: &Expr) -> Result<Vec<(String, Arc<Schema>, String)>, String> {
        let mut refs = Vec::new();
        collect_field_refs(expr, &mut refs);
        let mut out: Vec<(String, Arc<Schema>, String)> = Vec::new();
        for (q, name) in refs {
            let Some((stream, schema)) = self.resolve(q.as_deref(), &name) else {
                return Err(format!(
                    "field '{}' does not resolve to a declared stream",
                    name
                ));
            };
            if !out.iter().any(|(s, _, f)| *s == stream && *f == name) {
                out.push((stream, schema, name));
            }
        }
        Ok(out)
    }
}

#[derive(Clone, Copy)]
enum WhichClause {
    Where,
    Having,
}

fn not_attempted(reason: &str) -> WitnessOutcome {
    WitnessOutcome::NotAttempted {
        reason: reason.to_string(),
    }
}

/// An in-range default for a field the witness does not vary.
fn default_value(dt: DataType, iv: Option<Interval>) -> Value {
    let num = iv.and_then(|iv| iv.sample()).unwrap_or(0.0);
    match dt {
        DataType::Int => Value::Int(num as i64),
        DataType::Float => Value::Float(num),
        DataType::Ts => Value::Ts(Ts::from_millis(num.max(0.0) as u64)),
        DataType::Str => Value::Str("w".into()),
        DataType::Bool => Value::Bool(true),
        DataType::Any => Value::Int(num as i64),
    }
}

fn render_tuple(stream: &str, t: &Tuple) -> String {
    let fields: Vec<String> = t
        .schema()
        .fields()
        .iter()
        .map(|f| match t.get(&f.name) {
            Some(v) => format!("{}={v:?}", f.name),
            None => format!("{}=NULL", f.name),
        })
        .collect();
    format!("{stream}({})", fields.join(", "))
}

fn collect_field_refs(expr: &Expr, out: &mut Vec<(Option<String>, String)>) {
    match expr {
        Expr::Field {
            qualifier, name, ..
        } => out.push((qualifier.clone(), name.clone())),
        Expr::Call { args, .. } => {
            for a in args {
                collect_field_refs(a, out);
            }
        }
        Expr::Arith { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
            collect_field_refs(lhs, out);
            collect_field_refs(rhs, out);
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            collect_field_refs(a, out);
            collect_field_refs(b, out);
        }
        Expr::Not(e) | Expr::Neg(e) => collect_field_refs(e, out),
        Expr::QuantifiedCmp { lhs, .. } => collect_field_refs(lhs, out),
        Expr::Literal(_) => {}
    }
}

fn contains_subquery(expr: &Expr) -> bool {
    match expr {
        Expr::QuantifiedCmp { .. } => true,
        Expr::Arith { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
            contains_subquery(lhs) || contains_subquery(rhs)
        }
        Expr::And(a, b) | Expr::Or(a, b) => contains_subquery(a) || contains_subquery(b),
        Expr::Not(e) | Expr::Neg(e) => contains_subquery(e),
        Expr::Call { args, .. } => args.iter().any(contains_subquery),
        Expr::Literal(_) | Expr::Field { .. } => false,
    }
}

fn contains_aggregate(expr: &Expr, catalog: &esp_query::Catalog) -> bool {
    match expr {
        Expr::Call { name, args, .. } => {
            catalog.is_aggregate(name) || args.iter().any(|a| contains_aggregate(a, catalog))
        }
        Expr::Arith { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
            contains_aggregate(lhs, catalog) || contains_aggregate(rhs, catalog)
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            contains_aggregate(a, catalog) || contains_aggregate(b, catalog)
        }
        Expr::Not(e) | Expr::Neg(e) => contains_aggregate(e, catalog),
        Expr::Literal(_) | Expr::Field { .. } | Expr::QuantifiedCmp { .. } => false,
    }
}

/// Find the division/modulo expression whose span matches `span`, in the
/// top-level query's clauses (the hazard checker never enters
/// subqueries, so neither does the search).
fn find_division(stmt: &SelectStmt, span: Span) -> Option<&Expr> {
    let exprs = stmt
        .select
        .iter()
        .map(|i| &i.expr)
        .chain(stmt.where_clause.iter())
        .chain(stmt.group_by.iter())
        .chain(stmt.having.iter());
    for e in exprs {
        if let Some(found) = find_division_in(e, span) {
            return Some(found);
        }
    }
    None
}

fn find_division_in(expr: &Expr, span: Span) -> Option<&Expr> {
    use esp_query::ast::ArithOp;
    if let Expr::Arith { op, .. } = expr {
        if matches!(op, ArithOp::Div | ArithOp::Mod) {
            let es = expr.span();
            if es.start == span.start && es.end == span.end {
                return Some(expr);
            }
        }
    }
    match expr {
        Expr::Arith { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
            find_division_in(lhs, span).or_else(|| find_division_in(rhs, span))
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            find_division_in(a, span).or_else(|| find_division_in(b, span))
        }
        Expr::Not(e) | Expr::Neg(e) => find_division_in(e, span),
        Expr::Call { args, .. } => args.iter().find_map(|a| find_division_in(a, span)),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Pipeline documents: E0903 / E0905
// ---------------------------------------------------------------------------

/// Witness the `E0903`/`E0905` findings of one pipeline document.
pub fn witness_pipeline(source: &str, diags: &[Diagnostic]) -> Vec<Witness> {
    let targets: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| matches!(d.code, "E0903" | "E0905"))
        .collect();
    if targets.is_empty() {
        return Vec::new();
    }
    let Ok(spec) = PipelineSpec::from_json(source) else {
        return Vec::new();
    };
    let engine = Engine::new();
    // `entry_schema()` declines mote fleets (several raw layouts exist);
    // for witness purposes the richest mote layout is good enough.
    let entry = spec.deployment.entry_schema().or_else(|| {
        let groups = &spec.deployment.groups;
        (!groups.is_empty()
            && groups
                .iter()
                .all(|g| g.receptor_type.eq_ignore_ascii_case("mote")))
        .then(esp_types::well_known::temp_voltage_schema)
    });
    targets
        .into_iter()
        .map(|d| {
            let claim = format!("{} — {}", d.code, d.message);
            let (outcome, inputs) = match (d.code, &entry) {
                (_, None) => (
                    not_attempted(
                        "the deployment declares no receptor types, so no entry \
                                   schema exists to synthesize tuples from",
                    ),
                    Vec::new(),
                ),
                ("E0903", Some(schema)) => witness_volatile(&engine, &spec, schema),
                (_, Some(schema)) => witness_unbounded_key(&engine, &spec, schema, d),
            };
            Witness {
                code: d.code,
                span: d.span,
                claim,
                inputs,
                outcome,
            }
        })
        .collect()
}

/// Run a declarative stage query once over `rows`, returning the output
/// rendered row by row.
fn run_stage(engine: &Engine, query: &str, rows: &[Tuple]) -> Result<Vec<String>, String> {
    let mut q = engine.compile(query).map_err(|e| e.to_string())?;
    let streams: Vec<String> = q.input_streams().to_vec();
    for s in &streams {
        q.push(s, rows).map_err(|e| e.to_string())?;
    }
    let out = q.tick(Ts::ZERO).map_err(|e| e.to_string())?;
    Ok(out.iter().map(|t| format!("{t:?}")).collect())
}

/// One all-defaults tuple from the entry schema.
fn entry_tuple(schema: &Arc<Schema>) -> Result<Tuple, String> {
    let mut b = TupleBuilder::new(schema, Ts::ZERO);
    for f in schema.fields() {
        b = b
            .set(&f.name, default_value(f.data_type, None))
            .map_err(|e| e.to_string())?;
    }
    b.build().map_err(|e| e.to_string())
}

/// `E0903`: the volatile stage must produce different bytes on two runs
/// over identical input. Wall-clock volatiles (`now()`) need time to
/// advance between runs; retry with growing gaps before conceding.
fn witness_volatile(
    engine: &Engine,
    spec: &PipelineSpec,
    schema: &Arc<Schema>,
) -> (WitnessOutcome, Vec<String>) {
    let volatile = spec.deployment.stages.iter().find_map(|s| match s {
        StageSpec::Declarative(ds) => match engine.compile(&ds.query) {
            Ok(q) => match q.determinism() {
                esp_types::Determinism::Nondeterministic { .. } => Some(ds.query.clone()),
                esp_types::Determinism::Deterministic => None,
            },
            Err(_) => None,
        },
        _ => None,
    });
    let Some(query) = volatile else {
        return (
            not_attempted("no declarative stage in the document compiles as nondeterministic"),
            Vec::new(),
        );
    };
    let tuple = match entry_tuple(schema) {
        Ok(t) => t,
        Err(e) => {
            return (
                not_attempted(&format!("could not build an entry tuple: {e}")),
                Vec::new(),
            )
        }
    };
    let rendered = vec![render_tuple("entry", &tuple)];
    let rows = vec![tuple];
    let first = match run_stage(engine, &query, &rows) {
        Ok(o) => o,
        Err(e) => {
            return (
                not_attempted(&format!("engine rejected the stage query: {e}")),
                rendered,
            )
        }
    };
    for gap_ms in [3u64, 15, 40] {
        std::thread::sleep(std::time::Duration::from_millis(gap_ms));
        match run_stage(engine, &query, &rows) {
            Ok(second) if second != first => {
                return (
                    WitnessOutcome::Confirmed {
                        evidence: "two runs over the identical input batch produced \
                                   different output bytes"
                            .into(),
                    },
                    rendered,
                )
            }
            Ok(_) => continue,
            Err(e) => {
                return (
                    not_attempted(&format!("engine rejected the stage query: {e}")),
                    rendered,
                )
            }
        }
    }
    (
        WitnessOutcome::Refuted {
            observed: "repeated runs over identical input produced identical output".into(),
        },
        rendered,
    )
}

/// `E0905`: doubling the distinct values of the unbounded grouping key
/// must double the retained groups.
fn witness_unbounded_key(
    engine: &Engine,
    spec: &PipelineSpec,
    schema: &Arc<Schema>,
    d: &Diagnostic,
) -> (WitnessOutcome, Vec<String>) {
    let Some(key) = d
        .message
        .split("grouping key '")
        .nth(1)
        .and_then(|rest| rest.split('\'').next())
    else {
        return (
            not_attempted("the finding is a capacity overcommit, not an unbounded key"),
            Vec::new(),
        );
    };
    let Some(field) = schema.field(key) else {
        return (
            not_attempted(&format!(
                "grouping key '{key}' is not a field of the entry schema"
            )),
            Vec::new(),
        );
    };
    let query = spec.deployment.stages.iter().find_map(|s| match s {
        StageSpec::Declarative(ds) => match engine.compile(&ds.query) {
            Ok(q) if q.group_by_columns().iter().any(|c| c == key) => Some(ds.query.clone()),
            _ => None,
        },
        _ => None,
    });
    let Some(query) = query else {
        return (
            not_attempted(&format!(
                "no declarative stage groups by '{key}' (built-in stages are not \
                 executable in-process)"
            )),
            Vec::new(),
        );
    };
    let make_rows = |n: usize| -> Result<Vec<Tuple>, String> {
        (0..n)
            .map(|i| {
                let mut b = TupleBuilder::new(schema, Ts::ZERO);
                for f in schema.fields() {
                    let v = if f.name == key {
                        match field.data_type {
                            DataType::Int => Value::Int(i as i64),
                            DataType::Float => Value::Float(i as f64),
                            DataType::Str => Value::Str(format!("k{i}").into()),
                            _ => return Err(format!("unsupported key type {:?}", f.data_type)),
                        }
                    } else {
                        default_value(f.data_type, None)
                    };
                    b = b.set(&f.name, v).map_err(|e| e.to_string())?;
                }
                b.build().map_err(|e| e.to_string())
            })
            .collect()
    };
    const K: usize = 4;
    let (small, large) = match (make_rows(K), make_rows(2 * K)) {
        (Ok(s), Ok(l)) => (s, l),
        (Err(e), _) | (_, Err(e)) => {
            return (
                not_attempted(&format!("could not build witness tuples: {e}")),
                Vec::new(),
            )
        }
    };
    let rendered: Vec<String> = large.iter().map(|t| render_tuple("entry", t)).collect();
    match (
        run_stage(engine, &query, &small),
        run_stage(engine, &query, &large),
    ) {
        (Ok(a), Ok(b)) => {
            if b.len() > a.len() {
                (
                    WitnessOutcome::Confirmed {
                        evidence: format!(
                            "{K} distinct '{key}' values retain {} group(s); {} values \
                             retain {} — state grows with the key's cardinality",
                            a.len(),
                            2 * K,
                            b.len()
                        ),
                    },
                    rendered,
                )
            } else {
                (
                    WitnessOutcome::Refuted {
                        observed: format!(
                            "doubling the distinct '{key}' values left the group count \
                             at {}",
                            b.len()
                        ),
                    },
                    rendered,
                )
            }
        }
        (Err(e), _) | (_, Err(e)) => (
            not_attempted(&format!("engine rejected the stage query: {e}")),
            rendered,
        ),
    }
}
