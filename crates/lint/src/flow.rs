//! Whole-pipeline fixpoint dataflow analysis — the `E09xx` family.
//!
//! The E01xx–E08xx passes each examine one artifact in isolation: a
//! query, a granule, a group, a gateway knob. This module reasons about
//! the *composition*: facts that only become visible when stage effects
//! are propagated across the whole cascade. Four analyses run on one
//! generic monotone-framework engine ([`fixpoint`]):
//!
//! | code | direction | lattice | defect |
//! |------|-----------|---------|--------|
//! | `E0901` | backward | live-column sets | a column computed by a stage is never read downstream |
//! | `E0902` | backward | live-column sets / tap reachability | a receptor stream (or graph node) feeds nothing that reaches an output |
//! | `E0903` | forward | boolean taint | a nondeterministic stage inside a durability-enabled gateway voids replay |
//! | `E0904` | forward | max window-path sum | the admitted lateness exceeds (or mis-aligns with) the cascade's total window depth |
//! | `E0905` | forward | per-column cardinality bounds | retained aggregation state is statically unbounded, or overcommits the gateway edge capacity |
//!
//! The engine is the textbook worklist algorithm over a join-semilattice:
//! facts start at ⊥, transfer functions are monotone, and iteration runs
//! to the least fixpoint (with a hard iteration cap as a termination
//! backstop for non-monotone transfers or adversarial graphs — the
//! linter must terminate on any input). On the acyclic graphs ESP
//! deployments produce, all transfers used here are distributive, so the
//! computed MFP solution coincides with the meet-over-all-paths answer
//! (the property the proptest suite checks against brute force).
//!
//! `E0901`/`E0902` consume the per-stage [`FieldEffects`] summaries that
//! the stage traits and the query compiler export; `E0903` consumes
//! [`Determinism`] (the same contract `Gateway::spawn` enforces at
//! runtime); `E0904`/`E0905` read window widths and declared column
//! cardinalities from the *pipeline document* — a JSON form
//! ([`PipelineSpec`]) that wraps a deployment together with the gateway
//! knobs it will run under, so cross-layer budgets can be checked before
//! anything runs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use serde::{value::Value as Json, DeError, Deserialize};

use esp_core::deploy::{DeploymentSpec, StageSpec};
use esp_query::Engine;
use esp_types::diag::sort_diagnostics;
use esp_types::{well_known, DataType, Determinism, Diagnostic, FieldEffects, Span, TimeDelta};

// ---------------------------------------------------------------------------
// The generic engine
// ---------------------------------------------------------------------------

/// A join-semilattice of dataflow facts.
///
/// `bottom()` is the identity of `join` (the "no information" element);
/// `join` must be commutative, associative, and idempotent, and the
/// transfer functions passed to [`fixpoint`] must be monotone with
/// respect to the order `a ⊑ b ⇔ join(a, b) = b` for the result to be
/// the least fixpoint.
pub trait Lattice: Clone + PartialEq {
    /// The least element (identity of [`Lattice::join`]).
    fn bottom() -> Self;
    /// In-place least upper bound: `self ⊔ other`.
    fn join(&mut self, other: &Self);
}

/// Boolean taint lattice: `false ⊑ true`, join is disjunction.
impl Lattice for bool {
    fn bottom() -> Self {
        false
    }
    fn join(&mut self, other: &Self) {
        *self = *self || *other;
    }
}

/// Max lattice over unsigned counters (used for max-path window sums).
impl Lattice for u64 {
    fn bottom() -> Self {
        0
    }
    fn join(&mut self, other: &Self) {
        *self = (*self).max(*other);
    }
}

/// Which way facts flow through the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts propagate from predecessors to successors.
    Forward,
    /// Facts propagate from successors to predecessors (liveness).
    Backward,
}

/// A directed flow graph over nodes `0..n`.
///
/// Nodes are dense indices so analyses can keep side tables in plain
/// `Vec`s. Edges to out-of-range nodes are silently ignored — the linter
/// analyzes untrusted documents and must never panic on them (the
/// structural E04xx checks report dangling references separately).
#[derive(Debug, Clone)]
pub struct FlowGraph {
    n: usize,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl FlowGraph {
    /// An edgeless graph over `n` nodes.
    pub fn new(n: usize) -> FlowGraph {
        FlowGraph {
            n,
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        }
    }

    /// The linear chain `0 → 1 → … → n-1` (an ESP stage cascade).
    pub fn chain(n: usize) -> FlowGraph {
        let mut g = FlowGraph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    /// Add the edge `from → to`; out-of-range endpoints are ignored.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        if from < self.n && to < self.n {
            self.succs[from].push(to);
            self.preds[to].push(from);
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// The solution of a dataflow problem: one fact pair per node.
///
/// `entry[i]` is the joined fact *entering* node `i` in the flow
/// direction (for a backward problem that is the fact at the node's
/// *output* edge); `exit[i]` is the result of the node's transfer
/// function applied to `entry[i]`.
#[derive(Debug, Clone)]
pub struct Facts<L> {
    /// Fact entering each node (in flow direction).
    pub entry: Vec<L>,
    /// Fact leaving each node: `transfer(i, entry[i])`.
    pub exit: Vec<L>,
}

/// Run the worklist algorithm to the least fixpoint.
///
/// Nodes without predecessors (in flow direction) receive `boundary` as
/// their entry fact; all other entry facts are the join of their
/// predecessors' exit facts. Iteration is capped at `max(1024, 64·n)`
/// node visits: monotone transfers over finite-height lattices converge
/// far below that, and the cap guarantees termination even for cyclic
/// graphs with non-monotone transfers (the partial facts computed so far
/// are returned — sound for the analyses here, which only *report* when
/// a fact definitely holds).
pub fn fixpoint<L, F>(
    graph: &FlowGraph,
    direction: Direction,
    boundary: &L,
    mut transfer: F,
) -> Facts<L>
where
    L: Lattice,
    F: FnMut(usize, &L) -> L,
{
    let n = graph.n;
    let (preds, succs) = match direction {
        Direction::Forward => (&graph.preds, &graph.succs),
        Direction::Backward => (&graph.succs, &graph.preds),
    };
    let mut entry = vec![L::bottom(); n];
    let mut exit = vec![L::bottom(); n];
    let mut queued = vec![true; n];
    let mut worklist: VecDeque<usize> = match direction {
        Direction::Forward => (0..n).collect(),
        Direction::Backward => (0..n).rev().collect(),
    };
    let mut budget = 1024usize.max(n.saturating_mul(64));
    while let Some(i) = worklist.pop_front() {
        queued[i] = false;
        if budget == 0 {
            break;
        }
        budget -= 1;
        let mut inc = if preds[i].is_empty() {
            boundary.clone()
        } else {
            L::bottom()
        };
        for &p in &preds[i] {
            inc.join(&exit[p]);
        }
        let out = transfer(i, &inc);
        entry[i] = inc;
        if out != exit[i] {
            exit[i] = out;
            for &s in &succs[i] {
                if !queued[s] {
                    queued[s] = true;
                    worklist.push_back(s);
                }
            }
        }
    }
    Facts { entry, exit }
}

/// Byte span of the first occurrence of `needle` in `source`.
///
/// Deployment and pipeline documents have no parser-carried spans (the
/// vendored deserializer reports paths, not offsets), so the E09xx
/// diagnostics locate themselves by searching for the offending token —
/// exact enough for rustc-style caret rendering over config files.
fn find_span(source: &str, needle: &str) -> Option<Span> {
    source
        .find(needle)
        .map(|start| Span::new(start, start + needle.len()))
}

// ---------------------------------------------------------------------------
// Stage summaries
// ---------------------------------------------------------------------------

/// Column-level effect summary of one deployment stage.
///
/// Anything we cannot summarize precisely is `opaque` — the analyses
/// then go to ⊤ across it and stay silent, which is the zero-false-
/// positive contract of this linter.
fn stage_effects(stage: &StageSpec, engine: &Engine) -> FieldEffects {
    match stage {
        StageSpec::Point(p) => {
            let mut reads: Vec<String> = p.range_filters.iter().map(|f| f.field.clone()).collect();
            if let Some(ev) = &p.expected_values {
                reads.push(ev.field.clone());
            }
            FieldEffects::passthrough(reads)
        }
        StageSpec::Smooth(s) if s.mode == "count_by_key" => {
            let mut writes = s.keys.clone();
            writes.push("count".to_string());
            FieldEffects::projection(s.keys.clone(), writes).with_row_counting()
        }
        StageSpec::Declarative(d) => match engine.compile(&d.query) {
            Ok(q) => q.field_effects(),
            // A query that does not compile is someone else's diagnostic
            // (E01xx via the CQL linter); treat it as unknowable here.
            Err(_) => FieldEffects::opaque(),
        },
        _ => FieldEffects::opaque(),
    }
}

/// Display name for stage `i` in diagnostics.
fn stage_name(i: usize, stage: &StageSpec) -> String {
    let kind = match stage {
        StageSpec::Point(_) => "point",
        StageSpec::Smooth(_) => "smooth",
        StageSpec::Merge(_) => "merge",
        StageSpec::Arbitrate(_) => "arbitrate",
        StageSpec::Virtualize(_) => "virtualize",
        StageSpec::Declarative(d) => {
            let label = d.label.as_deref().unwrap_or("declarative");
            return format!("stage #{i} ('{label}')");
        }
    };
    format!("stage #{i} ({kind})")
}

// ---------------------------------------------------------------------------
// E0901 / E0902 — backward field liveness
// ---------------------------------------------------------------------------

/// Live-column lattice: `None` is ⊤ ("every column may be read"),
/// `Some(set)` is a finite live set. ⊥ is the empty set; join is union
/// with ⊤ absorbing.
#[derive(Debug, Clone, PartialEq)]
struct Live(Option<BTreeSet<String>>);

impl Lattice for Live {
    fn bottom() -> Self {
        Live(Some(BTreeSet::new()))
    }
    fn join(&mut self, other: &Self) {
        match (&mut self.0, &other.0) {
            (_, None) => self.0 = None,
            (None, _) => {}
            (Some(a), Some(b)) => a.extend(b.iter().cloned()),
        }
    }
}

/// The raw-schema columns that identify a receptor type's data (its
/// well-known layouts minus the fields every receptor shares). If none
/// of these is live at the cascade entry, nothing distinguishable from
/// that receptor family ever reaches an output.
fn distinctive_fields(receptor_type: &str) -> Option<&'static [&'static str]> {
    match receptor_type.to_ascii_lowercase().as_str() {
        "rfid" => Some(&[well_known::TAG_ID]),
        "mote" => Some(&[well_known::TEMP, well_known::VOLTAGE, well_known::NOISE]),
        "x10" | "x10-motion" => Some(&[well_known::VALUE]),
        _ => None,
    }
}

/// Backward liveness over the stage cascade: `E0901` (dead computed
/// column) and `E0902` (receptor stream whose fields are never read).
///
/// The boundary fact at the pipeline output is ⊤ — whatever the final
/// stage emits is the product the deployment exists to produce.
pub(crate) fn liveness_pass(
    spec: &DeploymentSpec,
    source: &str,
    engine: &Engine,
) -> Vec<Diagnostic> {
    let n = spec.stages.len();
    let mut diags = Vec::new();
    if n == 0 {
        return diags;
    }
    let effects: Vec<FieldEffects> = spec
        .stages
        .iter()
        .map(|s| stage_effects(s, engine))
        .collect();
    let graph = FlowGraph::chain(n);
    let facts = fixpoint(
        &graph,
        Direction::Backward,
        &Live(None),
        |i, live_out: &Live| Live(effects[i].live_in(live_out.0.as_ref())),
    );

    // E0901: a projected column no later stage reads. For a backward
    // problem, `entry[i]` is the fact at the node's *output* edge.
    for (i, fx) in effects.iter().enumerate() {
        let (Some(writes), Live(Some(live_out))) = (&fx.writes, &facts.entry[i]) else {
            continue;
        };
        for col in writes {
            if live_out.contains(col) {
                continue;
            }
            let span = find_span(source, &format!("AS {col}")).or_else(|| find_span(source, col));
            let mut d = Diagnostic::warning(
                "E0901",
                format!(
                    "column '{col}' computed by {} is never read by any later stage",
                    stage_name(i, &spec.stages[i])
                ),
            )
            .with_note(
                "dead columns cost serialization and window memory on every epoch; \
                 drop the column or read it downstream",
            );
            if let Some(s) = span {
                d = d.with_span(s);
            }
            if let StageSpec::Declarative(ds) = &spec.stages[i] {
                if let Some(sugg) = crate::fix::drop_column_suggestion(source, &ds.query, col) {
                    d = d.with_suggestion(sugg);
                }
            }
            diags.push(d);
        }
    }

    // E0902: a receptor group none of whose distinctive fields is live at
    // the cascade entry. Gated hard on precision: any opaque stage makes
    // the entry fact ⊤ (skip); any row-counting stage keeps mere tuple
    // presence meaningful (skip); reading a shared field (receptor_id /
    // spatial_granule) means every stream is inspected (skip).
    let Live(Some(live_entry)) = &facts.exit[0] else {
        return diags;
    };
    let counts = effects.iter().any(|e| e.counts_rows);
    let reads_shared = live_entry.contains(well_known::RECEPTOR_ID)
        || live_entry.contains(well_known::SPATIAL_GRANULE);
    if counts || reads_shared {
        return diags;
    }
    for g in &spec.groups {
        let Some(fields) = distinctive_fields(&g.receptor_type) else {
            continue;
        };
        if fields.iter().any(|f| live_entry.contains(*f)) {
            continue;
        }
        let mut d = Diagnostic::warning(
            "E0902",
            format!(
                "receptor group '{}' ({}) feeds the cascade, but none of its fields ({}) is ever read",
                g.granule,
                g.receptor_type,
                fields.join(", ")
            ),
        )
        .with_note(
            "every tuple from this group is cleaned, serialized, and then discarded; \
             remove the group or add a stage that uses its readings",
        );
        if let Some(s) = find_span(source, &g.granule) {
            d = d.with_span(s);
        }
        diags.push(d);
    }
    diags
}

// ---------------------------------------------------------------------------
// The pipeline document
// ---------------------------------------------------------------------------

/// The gateway section of a pipeline document: the runtime knobs the
/// cross-layer budget analyses check the deployment against.
#[derive(Debug, Clone)]
pub struct GatewaySectionSpec {
    /// Epoch period (`"200 ms"`, …).
    pub period: String,
    /// Maximum admitted tuple lateness, if late arrivals are allowed.
    pub max_lateness: Option<String>,
    /// Bounded per-edge queue capacity, if the channels are bounded.
    pub edge_capacity: Option<u64>,
    /// Shard count (informational; sharding checks live in E05xx).
    pub n_shards: Option<u64>,
    /// Whether the gateway runs with durability (WAL + checkpoints).
    pub durable: bool,
}

/// A whole pipeline described as data: the deployment cascade plus the
/// gateway configuration it will run under and optional declared column
/// cardinalities (`"cardinalities": {"tag_id": 500}`) for the state-
/// boundedness analysis.
///
/// ```json
/// {
///   "gateway": { "period": "1 sec", "max_lateness": "2 sec", "durable": true },
///   "cardinalities": { "tag_id": 500 },
///   "deployment": { "temporal_granule": "5 sec", "groups": [...], "stages": [...] }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    /// Gateway knobs.
    pub gateway: GatewaySectionSpec,
    /// Declared per-column cardinality bounds (distinct-value counts).
    pub cardinalities: BTreeMap<String, u64>,
    /// The stage cascade and proximity groups.
    pub deployment: DeploymentSpec,
}

/// Required field lookup (same pattern as the other hand-written
/// `Deserialize` impls; the vendored serde has no derive).
fn req<T: Deserialize>(v: &Json, key: &str) -> std::result::Result<T, DeError> {
    match v.get(key) {
        Some(x) => T::from_value(x).map_err(|e| DeError::msg(format!("{key}: {e}"))),
        None => Err(DeError::msg(format!("missing field '{key}'"))),
    }
}

/// Optional field lookup: absent and `null` both mean `None`.
fn opt<T: Deserialize>(v: &Json, key: &str) -> std::result::Result<Option<T>, DeError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) if x.is_null() => Ok(None),
        Some(x) => T::from_value(x)
            .map(Some)
            .map_err(|e| DeError::msg(format!("{key}: {e}"))),
    }
}

impl Deserialize for GatewaySectionSpec {
    fn from_value(v: &Json) -> std::result::Result<Self, DeError> {
        Ok(GatewaySectionSpec {
            period: req(v, "period")?,
            max_lateness: opt(v, "max_lateness")?,
            edge_capacity: opt(v, "edge_capacity")?,
            n_shards: opt(v, "n_shards")?,
            durable: opt(v, "durable")?.unwrap_or(false),
        })
    }
}

impl Deserialize for PipelineSpec {
    fn from_value(v: &Json) -> std::result::Result<Self, DeError> {
        let mut cardinalities = BTreeMap::new();
        if let Some(c) = v.get("cardinalities") {
            let o = c
                .as_object()
                .ok_or_else(|| DeError::msg("cardinalities must be an object"))?;
            for (field, bound) in o {
                let b = bound.as_u64().ok_or_else(|| {
                    DeError::msg(format!(
                        "cardinalities.{field}: expected a non-negative integer"
                    ))
                })?;
                cardinalities.insert(field.clone(), b);
            }
        }
        Ok(PipelineSpec {
            gateway: req(v, "gateway")?,
            cardinalities,
            deployment: req(v, "deployment")?,
        })
    }
}

impl PipelineSpec {
    /// Parse a pipeline document from JSON.
    pub fn from_json(json: &str) -> std::result::Result<PipelineSpec, String> {
        serde_json::from_str::<PipelineSpec>(json).map_err(|e| e.to_string())
    }
}

/// Lint a JSON pipeline document (the [`PipelineSpec`] wire form): the
/// embedded deployment's full check surface (validate + E06xx + field
/// liveness) plus the cross-layer fixpoint analyses `E0903` (replay-
/// determinism taint under durability), `E0904` (lateness vs window
/// budget and epoch alignment), and `E0905` (state boundedness vs
/// declared cardinalities and edge capacity).
pub fn lint_pipeline(json: &str) -> Vec<Diagnostic> {
    let spec = match PipelineSpec::from_json(json) {
        Ok(s) => s,
        Err(e) => return crate::parse_failure("pipeline", &e),
    };
    let engine = Engine::new();
    let mut diags = spec.deployment.validate();
    diags.extend(spec.deployment.analyze());
    diags.extend(liveness_pass(&spec.deployment, json, &engine));
    diags.extend(determinism_pass(&spec, json, &engine));
    diags.extend(lateness_pass(&spec, json, &engine));
    diags.extend(state_pass(&spec, json, &engine));
    sort_diagnostics(&mut diags);
    diags
}

// ---------------------------------------------------------------------------
// E0903 — forward determinism taint
// ---------------------------------------------------------------------------

/// Forward taint: once any stage on a path to the pipeline output is
/// nondeterministic, WAL replay of a durable gateway cannot reproduce
/// the recorded bytes. Mirrors the `Gateway::spawn` probe (which rejects
/// the same pipelines at runtime) so the defect is visible at lint time.
fn determinism_pass(spec: &PipelineSpec, source: &str, engine: &Engine) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if !spec.gateway.durable {
        return diags;
    }
    let stages = &spec.deployment.stages;
    let taints: Vec<Option<String>> = stages
        .iter()
        .map(|s| match s {
            StageSpec::Declarative(d) => match engine.compile(&d.query) {
                Ok(q) => match q.determinism() {
                    Determinism::Nondeterministic { reason } => Some(reason),
                    Determinism::Deterministic => None,
                },
                Err(_) => None,
            },
            _ => None,
        })
        .collect();
    let graph = FlowGraph::chain(stages.len());
    let facts = fixpoint(&graph, Direction::Forward, &false, |i, inc: &bool| {
        *inc || taints[i].is_some()
    });
    if !facts.exit.last().copied().unwrap_or(false) {
        return diags;
    }
    for (i, taint) in taints.iter().enumerate() {
        let Some(reason) = taint else { continue };
        // The reason names the volatile call ("calls volatile scalar
        // 'now()'"); point the span at its use site in the document.
        let span = reason.split('\'').nth(1).and_then(|call| {
            find_span(source, call).or_else(|| find_span(source, call.trim_end_matches(')')))
        });
        let mut d = Diagnostic::error(
            "E0903",
            format!(
                "durable gateway pipeline contains nondeterministic {}: {reason}",
                stage_name(i, &stages[i])
            ),
        )
        .with_note(
            "WAL replay re-runs the stage over logged epochs and must reproduce identical \
             bytes; make the stage deterministic or disable durability",
        );
        if let Some(s) = span {
            d = d.with_span(s);
        }
        if let Some(sugg) = crate::fix::durable_false_suggestion(source) {
            d = d.with_suggestion(sugg);
        }
        diags.push(d);
    }
    diags
}

// ---------------------------------------------------------------------------
// E0904 — lateness budget and epoch alignment
// ---------------------------------------------------------------------------

/// Window width (in ms) each stage contributes to the retention path.
fn stage_window_ms(stage: &StageSpec, granule_ms: u64, window_ms: u64, engine: &Engine) -> u64 {
    match stage {
        StageSpec::Smooth(_) => window_ms,
        StageSpec::Merge(m) if m.mode != "union_all" => granule_ms,
        StageSpec::Declarative(d) => match engine.compile(&d.query) {
            Ok(mut q) => q.max_window_width().as_millis(),
            Err(_) => 0,
        },
        _ => 0,
    }
}

/// Forward max-path window sum vs the gateway's admitted lateness
/// (`E0904` error), plus per-stage window/epoch-period alignment
/// (`E0904` warning).
fn lateness_pass(spec: &PipelineSpec, source: &str, engine: &Engine) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let period = match TimeDelta::parse(&spec.gateway.period) {
        Ok(p) => p,
        Err(e) => {
            diags.push(
                Diagnostic::error(
                    "E0204",
                    format!(
                        "gateway period '{}' is not a valid time span",
                        spec.gateway.period
                    ),
                )
                .with_note(e.to_string()),
            );
            return diags;
        }
    };
    let lateness = match &spec.gateway.max_lateness {
        Some(l) => match TimeDelta::parse(l) {
            Ok(l) => Some(l),
            Err(e) => {
                diags.push(
                    Diagnostic::error(
                        "E0204",
                        format!("gateway max_lateness '{l}' is not a valid time span"),
                    )
                    .with_note(e.to_string()),
                );
                None
            }
        },
        None => None,
    };
    // Unparseable deployment granules are already E0204 from validate().
    let Ok(granule) = spec.deployment.granule() else {
        return diags;
    };
    let granule_ms = granule.granule().as_millis();
    let window_ms = granule.window().as_millis();

    let stages = &spec.deployment.stages;
    let widths: Vec<u64> = stages
        .iter()
        .map(|s| stage_window_ms(s, granule_ms, window_ms, engine))
        .collect();
    let graph = FlowGraph::chain(stages.len());
    let facts = fixpoint(&graph, Direction::Forward, &0u64, |i, inc: &u64| {
        inc.saturating_add(widths[i])
    });
    let total = facts.exit.last().copied().unwrap_or(0);

    if let Some(l) = lateness {
        let l_ms = l.as_millis();
        if l_ms > 0 && l_ms >= total {
            let mut d = Diagnostic::error(
                "E0904",
                format!(
                    "admitted lateness ({l}) meets or exceeds the cascade's total window depth \
                     ({total} ms) — a maximally late tuple arrives after every window that \
                     should have held it has closed"
                ),
            )
            .with_note(
                "late tuples are only useful while some window still covers their timestamp; \
                 lower max_lateness or widen the smoothing windows",
            );
            if let Some(span) = spec
                .gateway
                .max_lateness
                .as_ref()
                .and_then(|raw| find_span(source, raw))
            {
                d = d.with_span(span);
            }
            diags.push(d);
        }
    }

    let period_ms = period.as_millis();
    if period_ms > 0 {
        for (i, w) in widths.iter().enumerate() {
            if *w > 0 && *w % period_ms != 0 {
                diags.push(
                    Diagnostic::warning(
                        "E0904",
                        format!(
                            "window of {} ({w} ms) is not a whole multiple of the gateway epoch \
                             period ({period}); epoch boundaries will split the window",
                            stage_name(i, &stages[i])
                        ),
                    )
                    .with_note(
                        "epoch-aligned checkpoints and watermarks assume windows close on \
                         epoch boundaries (paper §4.3.2)",
                    ),
                );
            }
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// E0905 — state boundedness
// ---------------------------------------------------------------------------

/// Per-column cardinality environment. Absent columns are unbounded;
/// `bottom` is the identity element ("no path reaches here yet").
/// Join over paths intersects the key sets and keeps the larger bound —
/// a column is only bounded after the join if it is bounded along every
/// incoming path.
#[derive(Debug, Clone, PartialEq)]
struct CardEnv {
    bottom: bool,
    known: BTreeMap<String, u128>,
}

impl Lattice for CardEnv {
    fn bottom() -> Self {
        CardEnv {
            bottom: true,
            known: BTreeMap::new(),
        }
    }
    fn join(&mut self, other: &Self) {
        if other.bottom {
            return;
        }
        if self.bottom {
            *self = other.clone();
            return;
        }
        let mut merged = BTreeMap::new();
        for (k, a) in &self.known {
            if let Some(b) = other.known.get(k) {
                merged.insert(k.clone(), (*a).max(*b));
            }
        }
        self.known = merged;
    }
}

/// Grouping keys a stage retains per-key state for, if it aggregates.
fn grouping_keys(stage: &StageSpec, engine: &Engine) -> Vec<String> {
    match stage {
        StageSpec::Smooth(s) if s.mode == "count_by_key" => s.keys.clone(),
        StageSpec::Declarative(d) => match engine.compile(&d.query) {
            Ok(q) => q.group_by_columns(),
            Err(_) => Vec::new(),
        },
        _ => Vec::new(),
    }
}

/// Forward cardinality propagation: `E0905` when a stage's retained
/// per-group state has no static bound (an unbounded grouping key), or
/// when the bounded group count overcommits the gateway edge capacity.
fn state_pass(spec: &PipelineSpec, source: &str, engine: &Engine) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let stages = &spec.deployment.stages;
    if stages.is_empty() {
        return diags;
    }

    // The environment tuples carry into the first stage: declared
    // cardinalities plus the two columns the processor itself bounds.
    let mut boundary = CardEnv {
        bottom: false,
        known: spec
            .cardinalities
            .iter()
            .map(|(k, v)| (k.clone(), u128::from(*v)))
            .collect(),
    };
    let members: BTreeSet<u32> = spec
        .deployment
        .groups
        .iter()
        .flat_map(|g| g.members.iter().copied())
        .collect();
    boundary
        .known
        .insert(well_known::RECEPTOR_ID.to_string(), members.len() as u128);
    boundary.known.insert(
        well_known::SPATIAL_GRANULE.to_string(),
        spec.deployment.groups.len() as u128,
    );

    let entry_schema = spec.deployment.entry_schema();
    let effects: Vec<FieldEffects> = stages.iter().map(|s| stage_effects(s, engine)).collect();
    let graph = FlowGraph::chain(stages.len());
    let facts = fixpoint(&graph, Direction::Forward, &boundary, |i, inc: &CardEnv| {
        if inc.bottom {
            return inc.clone();
        }
        match &stages[i] {
            // Point filters refine: both-sided range filters over integer
            // columns bound the distinct-value count; expected-values
            // filters bound it by the allow-list length.
            StageSpec::Point(p) => {
                let mut env = inc.clone();
                for rf in &p.range_filters {
                    let (Some(min), Some(max)) = (rf.min, rf.max) else {
                        continue;
                    };
                    let is_int = entry_schema
                        .as_ref()
                        .and_then(|s| s.field(&rf.field))
                        .map(|f| f.data_type == DataType::Int)
                        .unwrap_or(false);
                    if is_int && max >= min {
                        let width = (max.floor() - min.ceil()) as i64;
                        if width >= 0 {
                            let bound = width as u128 + 1;
                            let entry = env.known.entry(rf.field.clone()).or_insert(bound);
                            *entry = (*entry).min(bound);
                        }
                    }
                }
                if let Some(ev) = &p.expected_values {
                    let bound = ev.allowed.len() as u128;
                    let entry = env.known.entry(ev.field.clone()).or_insert(bound);
                    *entry = (*entry).min(bound);
                }
                env
            }
            _ => {
                let fx = &effects[i];
                if fx.opaque {
                    // Unknown output columns: nothing survives.
                    CardEnv {
                        bottom: false,
                        known: BTreeMap::new(),
                    }
                } else {
                    match &fx.writes {
                        // Passthrough keeps every bound.
                        None => inc.clone(),
                        // A projection keeps a bound only for columns it
                        // both reads and re-emits under the same name
                        // (grouping keys); computed columns are unbounded.
                        Some(writes) => CardEnv {
                            bottom: false,
                            known: inc
                                .known
                                .iter()
                                .filter(|(k, _)| writes.contains(*k) && fx.reads.contains(*k))
                                .map(|(k, v)| (k.clone(), *v))
                                .collect(),
                        },
                    }
                }
            }
        }
    });

    for (i, stage) in stages.iter().enumerate() {
        let keys = grouping_keys(stage, engine);
        if keys.is_empty() {
            continue;
        }
        let env = &facts.entry[i];
        if env.bottom {
            continue;
        }
        let mut product: u128 = 1;
        let mut unbounded: Option<&String> = None;
        for k in &keys {
            match env.known.get(k) {
                Some(b) => product = product.saturating_mul((*b).max(1)),
                None => {
                    unbounded = Some(k);
                    break;
                }
            }
        }
        if let Some(k) = unbounded {
            let span = find_span(source, &format!("GROUP BY {k}")).or_else(|| find_span(source, k));
            let mut d = Diagnostic::warning(
                "E0905",
                format!(
                    "retained state of {} is statically unbounded: grouping key '{k}' has no \
                     declared cardinality",
                    stage_name(i, stage)
                ),
            )
            .with_note(format!(
                "declare \"cardinalities\": {{\"{k}\": N}} in the pipeline document, or bound \
                 the column upstream with a point filter"
            ));
            if let Some(s) = span {
                d = d.with_span(s);
            }
            diags.push(d);
            continue;
        }
        if let Some(cap) = spec.gateway.edge_capacity {
            if product > u128::from(cap) {
                let mut d = Diagnostic::warning(
                    "E0905",
                    format!(
                        "{} can emit up to {product} grouped tuples per epoch, overcommitting \
                         the gateway edge capacity ({cap})",
                        stage_name(i, stage)
                    ),
                )
                .with_note(
                    "a full epoch of group outputs must fit the bounded channel or the \
                     pipeline stalls under backpressure; raise edge_capacity or lower the \
                     key cardinalities",
                );
                if let Some(s) = keys.first().and_then(|k| find_span(source, k)) {
                    d = d.with_span(s);
                }
                diags.push(d);
            }
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_sum_over_a_chain_accumulates() {
        let widths = [5u64, 0, 7];
        let g = FlowGraph::chain(3);
        let facts = fixpoint(&g, Direction::Forward, &0u64, |i, inc: &u64| {
            inc + widths[i]
        });
        assert_eq!(facts.exit, vec![5, 5, 12]);
        assert_eq!(facts.entry, vec![0, 5, 5]);
    }

    #[test]
    fn forward_max_path_over_a_diamond() {
        // 0 → {1, 2} → 3 with different per-node weights: the join at 3
        // must take the heavier path.
        let weights = [1u64, 10, 2, 1];
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let facts = fixpoint(&g, Direction::Forward, &0u64, |i, inc: &u64| {
            inc + weights[i]
        });
        assert_eq!(facts.entry[3], 11);
        assert_eq!(facts.exit[3], 12);
    }

    #[test]
    fn backward_liveness_on_a_chain() {
        // Stage 1 projects to {a}; stage 0 writes {a, b}: b is dead.
        let effects = [
            FieldEffects::projection(["x"], ["a", "b"]),
            FieldEffects::projection(["a"], ["a"]),
        ];
        let g = FlowGraph::chain(2);
        let facts = fixpoint(&g, Direction::Backward, &Live(None), |i, out: &Live| {
            Live(effects[i].live_in(out.0.as_ref()))
        });
        // entry[0] (backward) = live at stage 0's output = stage 1's reads.
        let Live(Some(out0)) = &facts.entry[0] else {
            panic!("expected finite live set")
        };
        assert!(out0.contains("a") && !out0.contains("b"));
    }

    #[test]
    fn fixpoint_terminates_on_a_cycle_with_a_growing_fact() {
        // Deliberately unbounded transfer on a 2-cycle: only the
        // iteration cap stops it. The call must return.
        let mut g = FlowGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        let facts = fixpoint(&g, Direction::Forward, &0u64, |_, inc: &u64| inc + 1);
        assert_eq!(facts.exit.len(), 2);
    }

    #[test]
    fn out_of_range_edges_are_ignored() {
        let mut g = FlowGraph::new(2);
        g.add_edge(0, 7);
        g.add_edge(9, 1);
        g.add_edge(0, 1);
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
        let facts = fixpoint(&g, Direction::Forward, &true, |_, inc: &bool| *inc);
        assert!(facts.exit[1]);
    }

    const CLEAN_PIPELINE: &str = r#"{
        "gateway": { "period": "1 sec", "max_lateness": "2 sec", "edge_capacity": 1024, "durable": true },
        "cardinalities": { "tag_id": 500 },
        "deployment": {
            "temporal_granule": "5 sec",
            "groups": [
                { "granule": "shelf0", "receptor_type": "rfid", "members": [0, 1] },
                { "granule": "shelf1", "receptor_type": "rfid", "members": [2, 3] }
            ],
            "stages": [
                { "smooth": { "mode": "count_by_key", "keys": ["spatial_granule", "tag_id"] } },
                { "arbitrate": {} }
            ]
        }
    }"#;

    #[test]
    fn clean_pipeline_document_has_no_findings() {
        let diags = lint_pipeline(CLEAN_PIPELINE);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn unparseable_pipeline_document_is_e0001() {
        let diags = lint_pipeline(r#"{"gateway": {}, "deployment": {}}"#);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].code, "E0001");
    }

    #[test]
    fn volatile_stage_under_durability_is_e0903() {
        let doc = r#"{
            "gateway": { "period": "1 sec", "durable": true },
            "deployment": {
                "temporal_granule": "5 sec",
                "groups": [ { "granule": "shelf0", "receptor_type": "rfid", "members": [0] } ],
                "stages": [
                    { "declarative": { "scope": "global",
                        "query": "SELECT tag_id, now() AS seen_at FROM readings" } }
                ]
            }
        }"#;
        let diags = lint_pipeline(doc);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "E0903" && d.severity == esp_types::Severity::Error),
            "{diags:#?}"
        );
        let d = diags.iter().find(|d| d.code == "E0903").unwrap();
        let span = d.span.expect("E0903 points at the volatile call");
        assert_eq!(&doc[span.start..span.end], "now()");
        // The identical pipeline without durability is fine.
        let relaxed = doc.replace("\"durable\": true", "\"durable\": false");
        assert!(
            lint_pipeline(&relaxed).iter().all(|d| d.code != "E0903"),
            "non-durable pipelines may be nondeterministic"
        );
    }

    #[test]
    fn lateness_beyond_window_depth_is_e0904() {
        let doc = r#"{
            "gateway": { "period": "1 sec", "max_lateness": "15 sec", "durable": false },
            "cardinalities": { "tag_id": 100 },
            "deployment": {
                "temporal_granule": "5 sec",
                "groups": [ { "granule": "shelf0", "receptor_type": "rfid", "members": [0] } ],
                "stages": [
                    { "smooth": { "mode": "count_by_key", "keys": ["spatial_granule", "tag_id"] } }
                ]
            }
        }"#;
        let diags = lint_pipeline(doc);
        assert!(diags.iter().any(|d| d.code == "E0904"), "{diags:#?}");
    }

    #[test]
    fn misaligned_window_is_an_e0904_warning() {
        let doc = r#"{
            "gateway": { "period": "2 sec", "durable": false },
            "cardinalities": { "tag_id": 100 },
            "deployment": {
                "temporal_granule": "5 sec",
                "groups": [ { "granule": "shelf0", "receptor_type": "rfid", "members": [0] } ],
                "stages": [
                    { "smooth": { "mode": "count_by_key", "keys": ["spatial_granule", "tag_id"] } }
                ]
            }
        }"#;
        let diags = lint_pipeline(doc);
        let d = diags
            .iter()
            .find(|d| d.code == "E0904")
            .expect("alignment warning");
        assert_eq!(d.severity, esp_types::Severity::Warning, "{diags:#?}");
    }

    #[test]
    fn unbounded_grouping_key_is_e0905() {
        let doc = r#"{
            "gateway": { "period": "1 sec", "durable": false },
            "deployment": {
                "temporal_granule": "5 sec",
                "groups": [ { "granule": "bench0", "receptor_type": "mote", "members": [0] } ],
                "stages": [
                    { "declarative": { "scope": "global",
                        "query": "SELECT temp, count(*) AS n FROM readings [Range By '5 sec'] GROUP BY temp" } }
                ]
            }
        }"#;
        let diags = lint_pipeline(doc);
        let d = diags
            .iter()
            .find(|d| d.code == "E0905")
            .expect("unbounded state");
        assert!(d.message.contains("temp"), "{diags:#?}");
    }

    #[test]
    fn overcommitted_edge_capacity_is_e0905() {
        let doc = r#"{
            "gateway": { "period": "1 sec", "edge_capacity": 64, "durable": false },
            "cardinalities": { "tag_id": 500 },
            "deployment": {
                "temporal_granule": "5 sec",
                "groups": [ { "granule": "shelf0", "receptor_type": "rfid", "members": [0] } ],
                "stages": [
                    { "smooth": { "mode": "count_by_key", "keys": ["spatial_granule", "tag_id"] } }
                ]
            }
        }"#;
        let diags = lint_pipeline(doc);
        let d = diags
            .iter()
            .find(|d| d.code == "E0905")
            .expect("overcommit");
        assert!(d.message.contains("edge capacity"), "{diags:#?}");
    }

    #[test]
    fn point_range_filter_bounds_an_integer_key() {
        // tag_id is a string, so bound shelf ids via receptor_id instead:
        // a both-sided integer range filter turns an undeclared key into
        // a bounded one and silences E0905.
        let doc = r#"{
            "gateway": { "period": "1 sec", "durable": false },
            "deployment": {
                "temporal_granule": "5 sec",
                "groups": [ { "granule": "shelf0", "receptor_type": "rfid", "members": [0, 1, 2] } ],
                "stages": [
                    { "point": { "range_filters": [ { "field": "receptor_id", "min": 0, "max": 7 } ] } },
                    { "smooth": { "mode": "count_by_key", "keys": ["receptor_id"] } }
                ]
            }
        }"#;
        let diags = lint_pipeline(doc);
        assert!(diags.iter().all(|d| d.code != "E0905"), "{diags:#?}");
    }

    #[test]
    fn dead_column_in_a_deployment_is_e0901() {
        let doc = r#"{
            "temporal_granule": "5 sec",
            "groups": [ { "granule": "shelf0", "receptor_type": "rfid", "members": [0] } ],
            "stages": [
                { "declarative": { "scope": "global",
                    "query": "SELECT tag_id, count(*) AS n FROM readings [Range By '5 sec'] GROUP BY tag_id" } },
                { "declarative": { "scope": "global",
                    "query": "SELECT tag_id, count(*) AS total FROM counts [Range By '5 sec'] GROUP BY tag_id" } }
            ]
        }"#;
        let engine = Engine::new();
        let spec = DeploymentSpec::from_json(doc).expect("valid deployment");
        let diags = liveness_pass(&spec, doc, &engine);
        let d = diags
            .iter()
            .find(|d| d.code == "E0901")
            .expect("dead column");
        assert!(d.message.contains("'n'"), "{diags:#?}");
        let span = d.span.expect("span at the alias");
        assert_eq!(&doc[span.start..span.end], "AS n");
    }

    #[test]
    fn unread_receptor_group_is_e0902() {
        let doc = r#"{
            "temporal_granule": "5 sec",
            "groups": [
                { "granule": "shelfA", "receptor_type": "rfid", "members": [0] },
                { "granule": "bench0", "receptor_type": "mote", "members": [1] }
            ],
            "stages": [
                { "declarative": { "scope": "global",
                    "query": "SELECT avg(temp) AS avg_temp FROM readings [Range By '5 sec']" } }
            ]
        }"#;
        let engine = Engine::new();
        let spec = DeploymentSpec::from_json(doc).expect("valid deployment");
        let diags = liveness_pass(&spec, doc, &engine);
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["E0902"], "{diags:#?}");
        assert!(diags[0].message.contains("shelfA"));
    }

    #[test]
    fn opaque_stages_silence_liveness() {
        // Arbitrate is opaque: everything upstream must be assumed live.
        let doc = r#"{
            "temporal_granule": "5 sec",
            "groups": [ { "granule": "shelf0", "receptor_type": "rfid", "members": [0] } ],
            "stages": [
                { "smooth": { "mode": "count_by_key", "keys": ["spatial_granule", "tag_id"] } },
                { "arbitrate": {} }
            ]
        }"#;
        let engine = Engine::new();
        let spec = DeploymentSpec::from_json(doc).expect("valid deployment");
        assert!(liveness_pass(&spec, doc, &engine).is_empty());
    }
}
