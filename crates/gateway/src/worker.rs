//! Per-shard pipeline workers and their crash-recovery supervisor.
//!
//! Each shard owns a full [`EspProcessor`] cleaning cascade over the
//! proximity groups hashed to it. Readings and epoch punctuation arrive on
//! one bounded FIFO channel per shard; because the coordinator only sends
//! `Flush(e)` after the watermark certifies `e`, every reading with
//! `ts <= e` is already ahead of the flush in the queue, and the step is
//! deterministic.
//!
//! With durability enabled the worker thread is a **supervisor**: the
//! processor and its buffers are the crashable part, and on a (injected)
//! crash the supervisor rebuilds them from the latest valid snapshot,
//! replays the WAL suffix past the snapshot's sequence number, and resumes
//! the live queue — skipping queued messages the replay already covered.
//! Output is published into a supervisor-owned shared trace epoch by
//! epoch, with re-publication of already-delivered epochs suppressed, so
//! the merged gateway trace after a crash is byte-identical to an
//! uninterrupted run.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

use crossbeam::channel::Receiver;
use parking_lot::Mutex;

use esp_core::{EspProcessor, Pipeline, ProximityGroups, ReceptorBinding};
use esp_durability::{read_wal_dir, SnapshotMeta, WalEntry};
use esp_receptors::wire::{self, Reading};
use esp_stream::{Payload, Source};
use esp_types::{chunk_batch, Batch, Chunk, EspError, ReceptorId, ReceptorType, Result, Ts, Tuple};

use crate::convert::ReadingSchemas;
use crate::durability::{compose_payload, restore_payload, DurabilityHooks};
use crate::server::{EpochTrace, GatewayGroup};
use crate::stats::GatewayStats;

/// Message on a shard's ingest queue. `seq` is the message's WAL
/// sequence number (0 when durability is off — then it is never read).
pub(crate) enum ShardMsg {
    /// A decoded reading routed to this shard.
    Reading {
        /// WAL sequence number.
        seq: u64,
        /// The reading itself.
        reading: Reading,
    },
    /// Punctuation: all readings with `ts <= epoch` are upstream of this
    /// message — step the pipeline.
    Flush {
        /// WAL sequence number of the flush record.
        seq: u64,
        /// The certified epoch.
        epoch: Ts,
        /// When the coordinator enqueued this message — the worker's
        /// dequeue-time delta is the flush's queue-wait observation.
        sent: Instant,
    },
    /// Drain and exit.
    Shutdown,
}

/// One receptor's pending readings, kept **columnar**: consecutive
/// readings of one wire kind share a chunk, so ingest never materializes
/// per-reading tuples. Rows materialize only at the checkpoint boundary
/// ([`ChunkBuffer::to_tuples`] — byte-compatible with the row-backed
/// encoding) and on the row-compat poll path.
#[derive(Default)]
pub(crate) struct ChunkBuffer {
    segs: Vec<Chunk>,
}

impl ChunkBuffer {
    /// Append a decoded reading straight into the trailing chunk of its
    /// kind (or start a new one on a kind switch).
    pub(crate) fn push_reading(
        &mut self,
        schemas: &ReadingSchemas,
        reading: &Reading,
    ) -> Result<()> {
        let schema = schemas.schema_for(reading);
        if !self
            .segs
            .last()
            .is_some_and(|c| Arc::ptr_eq(c.schema(), schema))
        {
            self.segs.push(Chunk::new(schema));
        }
        match self.segs.last_mut() {
            Some(chunk) => schemas.append_to_chunk(reading, chunk),
            None => unreachable!("a chunk was just pushed"),
        }
    }

    /// Rebuild from a row batch (snapshot restore).
    pub(crate) fn set_rows(&mut self, rows: &[Tuple]) {
        self.segs = chunk_batch(rows);
    }

    /// Materialize every pending reading in arrival order (checkpoint
    /// composition — byte-identical to encoding a row-backed buffer).
    pub(crate) fn to_tuples(&self) -> Vec<Tuple> {
        self.segs.iter().flat_map(Chunk::to_tuples).collect()
    }

    /// Release every reading stamped `<= epoch` as chunks, preserving
    /// relative arrival order; later readings stay for the next epoch.
    pub(crate) fn drain_upto(&mut self, epoch: Ts) -> Result<Vec<Chunk>> {
        let mut out = Vec::new();
        let mut keep = Vec::new();
        for seg in self.segs.drain(..) {
            if seg.ts().iter().all(|t| *t <= epoch) {
                out.push(seg);
            } else if seg.ts().iter().all(|t| *t > epoch) {
                keep.push(seg);
            } else {
                // Mixed segment: split row by row, order preserved.
                let mut take = Chunk::new(seg.schema());
                let mut stay = Chunk::new(seg.schema());
                for i in 0..seg.len() {
                    let ts = seg.ts()[i];
                    let values = seg.row_values(i).unwrap_or_default();
                    let dst = if ts <= epoch { &mut take } else { &mut stay };
                    dst.push_row_owned(ts, values)?;
                }
                if !take.is_empty() {
                    out.push(take);
                }
                if !stay.is_empty() {
                    keep.push(stay);
                }
            }
        }
        self.segs = keep;
        Ok(out)
    }
}

/// Shared mailbox between a shard worker (producer) and one of its
/// processor's sources (consumer). Both run on the worker thread, so the
/// mutex is uncontended.
pub(crate) type ReadingBuffer = Arc<Mutex<ChunkBuffer>>;

/// A [`Source`] that drains a [`ReadingBuffer`]: polling at `epoch`
/// releases exactly the readings stamped `<= epoch`, preserving arrival
/// order, and keeps later readings for the next epoch. The payload poll
/// hands the buffered chunks downstream untouched.
pub(crate) struct QueueSource {
    name: String,
    buf: ReadingBuffer,
}

impl QueueSource {
    pub(crate) fn new(receptor: ReceptorId, buf: ReadingBuffer) -> QueueSource {
        QueueSource {
            name: format!("gateway-{receptor}"),
            buf,
        }
    }
}

impl Source for QueueSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, epoch: Ts) -> Result<Batch> {
        Ok(self
            .buf
            .lock()
            .drain_upto(epoch)?
            .iter()
            .flat_map(Chunk::to_tuples)
            .collect())
    }

    fn poll_payload(&mut self, epoch: Ts) -> Result<Payload> {
        Ok(Payload::Chunks(self.buf.lock().drain_upto(epoch)?))
    }
}

/// Build one shard's crashable half: the processor and the per-receptor
/// pending buffers its sources drain. Recovery calls this again to get a
/// fresh pair (a [`Pipeline`] holds stage *factories*, so it can build
/// any number of processors).
pub(crate) fn build_shard(
    groups: &[GatewayGroup],
    pipeline: &Pipeline,
) -> Result<(EspProcessor, HashMap<ReceptorId, ReadingBuffer>)> {
    let mut pg = ProximityGroups::new();
    let mut rtype_of: HashMap<ReceptorId, ReceptorType> = HashMap::new();
    for g in groups {
        pg.add_group(
            g.receptor_type,
            g.granule.clone(),
            g.members.iter().copied(),
        );
        for &m in &g.members {
            rtype_of.entry(m).or_insert(g.receptor_type);
        }
    }
    let mut members: Vec<ReceptorId> = rtype_of.keys().copied().collect();
    members.sort_by_key(|r| r.0);

    let mut buffers: HashMap<ReceptorId, ReadingBuffer> = HashMap::new();
    let mut bindings = Vec::with_capacity(members.len());
    for id in members {
        let buf: ReadingBuffer = Arc::new(Mutex::new(ChunkBuffer::default()));
        buffers.insert(id, Arc::clone(&buf));
        bindings.push(ReceptorBinding::new(
            id,
            rtype_of[&id],
            Box::new(QueueSource::new(id, buf)),
        ));
    }
    let processor = EspProcessor::build(pg, pipeline, bindings)?;
    Ok((processor, buffers))
}

/// Append freshly drained output to the shared trace, suppressing epochs
/// at or below `published_through` (already delivered before a crash),
/// then advance the high-water mark to `epoch`.
fn publish(
    out: Vec<(Ts, Batch)>,
    trace: &Mutex<EpochTrace>,
    published_through: &mut Option<Ts>,
    epoch: Ts,
) {
    let mut t = trace.lock();
    for (ts, batch) in out {
        if published_through.is_none_or(|p| ts > p) {
            t.push((ts, batch));
        }
    }
    drop(t);
    *published_through = Some(published_through.map_or(epoch, |p| p.max(epoch)));
}

/// Rebuild a shard from its latest valid snapshot plus the WAL suffix.
///
/// Returns the fresh `(processor, buffers)` and the **skip boundary**:
/// the highest WAL sequence number the replay covered. Queued messages at
/// or below it must be dropped — the replay already applied them. Reads
/// the WAL without the writer lock (see `crate::durability` for why any
/// observed prefix is consistent).
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn recover(
    shard: usize,
    d: &DurabilityHooks,
    groups: &[GatewayGroup],
    pipeline: &Pipeline,
    schemas: &ReadingSchemas,
    trace: &Mutex<EpochTrace>,
    published_through: &mut Option<Ts>,
    stats: &GatewayStats,
) -> Result<(
    EspProcessor,
    HashMap<ReceptorId, ReadingBuffer>,
    Option<u64>,
)> {
    let (mut processor, buffers) = build_shard(groups, pipeline)?;
    let mut replay_after: Option<u64> = None;
    if let Some((meta, payload)) = d.store.latest_valid(shard)? {
        restore_payload(&payload, &mut processor, &buffers)?;
        replay_after = Some(meta.wal_seq);
    }
    let records = read_wal_dir(&d.config.wal_dir())?;
    let skip_through = records.last().map(|r| r.seq);
    for rec in records {
        if replay_after.is_some_and(|s| rec.seq <= s) {
            continue;
        }
        match rec.entry {
            WalEntry::Reading(frame) => {
                let reading = wire::decode(&frame).map_err(|e| {
                    EspError::Wal(format!("WAL record {}: undecodable frame: {e}", rec.seq))
                })?;
                let mine = d
                    .router
                    .shards_of(reading.receptor())
                    .is_some_and(|dests| dests.contains(&shard));
                if mine {
                    if let Some(buf) = buffers.get(&reading.receptor()) {
                        buf.lock().push_reading(schemas, &reading)?;
                    }
                }
            }
            WalEntry::Flush(epoch) => {
                // Re-step the epoch. Flush-latency accounting is skipped
                // during replay: the coordinator's pending entry for a
                // crashed-through epoch was either already closed or
                // belongs to a previous process.
                processor.step(epoch)?;
                publish(processor.take_output(), trace, published_through, epoch);
            }
        }
    }
    stats.note_recovery();
    Ok((processor, buffers, skip_through))
}

/// Take a checkpoint: snapshot this shard's state keyed to the epoch just
/// flushed, prune old snapshots, and opportunistically truncate the WAL
/// below what every shard's newest snapshot covers.
fn checkpoint(
    shard: usize,
    d: &DurabilityHooks,
    processor: &EspProcessor,
    buffers: &HashMap<ReceptorId, ReadingBuffer>,
    epoch: Ts,
    flush_seq: u64,
    stats: &GatewayStats,
) -> Result<()> {
    let t0 = crate::stats::CpuTimer::start();
    let payload = compose_payload(processor, buffers)?;
    d.store.write(
        SnapshotMeta {
            shard,
            epoch,
            wal_seq: flush_seq,
        },
        &payload,
    )?;
    d.store.retain(shard, d.config.max_snapshots)?;
    stats.note_checkpoint();
    stats.note_checkpoint_time(t0.elapsed_nanos());
    // Reclaim log segments no shard needs any more. `try_lock`, never a
    // blocking acquire: a reader blocked on a full shard queue may be
    // holding the WAL lock, and blocking here instead of draining would
    // deadlock. Two bounds compose: every shard's newest snapshot must
    // cover a record before it is reclaimable, AND the record must belong
    // to an epoch older than `epoch - wal_retention`, so the log always
    // spans at least the permitted reading lateness of event time (E0802)
    // no matter where the epoch clock started. When a segment would
    // actually go, the snapshots the truncation relies on are first made
    // durable (`pin_durable_basis`) — the WAL can rebuild a lost
    // snapshot, but only while it still holds the records.
    if let Some(min) = d.store.min_covered_seq(d.n_shards)? {
        if let Some(mut wal) = d.wal.try_lock() {
            let horizon = Ts::from_millis(
                epoch
                    .as_millis()
                    .saturating_sub(d.config.wal_retention.as_millis()),
            );
            if let Some(aged) = wal.reclaimable_through(horizon) {
                // `truncate_below` keeps any segment holding `min_seq`
                // itself, so reclaiming records `<= aged` passes `aged+1`.
                let bound = min.min(aged + 1);
                if wal.would_reclaim(bound)? {
                    // Re-derive the bound from the *fsynced* basis: it can
                    // only be newer than the pre-check's, never older.
                    if let Some(durable_min) = d.store.pin_durable_basis(d.n_shards)? {
                        wal.truncate_below(durable_min.min(aged + 1))?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Spawn one shard worker/supervisor. Owns its pipeline (for rebuilds)
/// and publishes output into `trace`; the thread returns only a status.
pub(crate) fn spawn_worker(
    shard: usize,
    rx: Receiver<ShardMsg>,
    groups: Vec<GatewayGroup>,
    pipeline: Pipeline,
    trace: Arc<Mutex<EpochTrace>>,
    stats: GatewayStats,
    durability: Option<DurabilityHooks>,
) -> Result<JoinHandle<Result<()>>> {
    let schemas = ReadingSchemas::new();
    thread::Builder::new()
        .name(format!("esp-gateway-shard-{shard}"))
        .spawn(move || {
            let mut published_through: Option<Ts> = None;
            let mut skip_through: Option<u64> = None;
            let mut epochs_since_checkpoint: u64 = 0;

            // Startup: a durable worker always goes through recovery. On
            // a fresh directory it is a no-op build; on a restart it
            // restores the snapshot and replays the WAL suffix.
            let (mut processor, mut buffers) = match &durability {
                Some(d) => {
                    let (p, b, skip) = recover(
                        shard,
                        d,
                        &groups,
                        &pipeline,
                        &schemas,
                        &trace,
                        &mut published_through,
                        &stats,
                    )?;
                    skip_through = skip;
                    (p, b)
                }
                None => build_shard(&groups, &pipeline)?,
            };
            // Per-stage/per-epoch spans, attached *after* recovery so WAL
            // replay steps are not billed as live epochs (the scrape-side
            // conservation law counts one step span per flushed epoch).
            let shard_label = shard.to_string();
            processor.attach_obs(&stats.registry(), &[("shard", &shard_label)]);

            loop {
                match rx.recv() {
                    Ok(ShardMsg::Reading { seq, reading }) => {
                        if skip_through.is_some_and(|s| seq <= s) {
                            continue; // replay already buffered it
                        }
                        // Router guarantees membership, but a dynamic
                        // group edit could race a reading in flight;
                        // dropping here matches the processor, which
                        // drops tuples from departed members.
                        if let Some(buf) = buffers.get(&reading.receptor()) {
                            buf.lock().push_reading(&schemas, &reading)?;
                        }
                    }
                    Ok(ShardMsg::Flush { seq, epoch, sent }) => {
                        if esp_obs::enabled() {
                            stats.note_queue_wait(sent.elapsed().as_nanos() as u64);
                        }
                        if skip_through.is_some_and(|s| seq <= s) {
                            continue; // replay already stepped it
                        }
                        if let Some(d) = &durability {
                            let armed = d.crash_countdown.load(Ordering::Acquire);
                            if armed == 0 {
                                // Injected crash: abandon the processor and
                                // every buffered reading, then come back
                                // through the recovery path. The flush we
                                // were about to act on is in the WAL, so
                                // the replay performs it and the skip rule
                                // swallows this (now stale) message.
                                d.crash_countdown.store(-1, Ordering::Release);
                                stats.note_crash();
                                drop(processor);
                                let (p, b, skip) = recover(
                                    shard,
                                    d,
                                    &groups,
                                    &pipeline,
                                    &schemas,
                                    &trace,
                                    &mut published_through,
                                    &stats,
                                )?;
                                processor = p;
                                buffers = b;
                                skip_through = skip;
                                epochs_since_checkpoint = 0;
                                // Rebuilt processor: re-derive the same
                                // registered span handles.
                                processor.attach_obs(&stats.registry(), &[("shard", &shard_label)]);
                                if skip_through.is_some_and(|s| seq <= s) {
                                    continue;
                                }
                            } else if armed > 0 {
                                d.crash_countdown.fetch_sub(1, Ordering::AcqRel);
                            }
                        }
                        processor.step(epoch)?;
                        publish(
                            processor.take_output(),
                            &trace,
                            &mut published_through,
                            epoch,
                        );
                        stats.note_flush_done(epoch.as_millis());
                        if let Some(d) = &durability {
                            epochs_since_checkpoint += 1;
                            if epochs_since_checkpoint >= d.checkpoint_every {
                                checkpoint(shard, d, &processor, &buffers, epoch, seq, &stats)?;
                                epochs_since_checkpoint = 0;
                            }
                        }
                    }
                    Ok(ShardMsg::Shutdown) | Err(_) => break,
                }
            }
            Ok(())
        })
        .map_err(|e| EspError::Config(format!("spawn shard worker thread: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(receptor: u32, secs: u64, value: f64) -> Reading {
        Reading::Scalar {
            receptor: ReceptorId(receptor),
            ts: Ts::from_secs(secs),
            value,
        }
    }

    fn tag(receptor: u32, secs: u64, tag_id: &str) -> Reading {
        Reading::Tag {
            receptor: ReceptorId(receptor),
            ts: Ts::from_secs(secs),
            tag_id: tag_id.into(),
        }
    }

    #[test]
    fn chunk_buffer_segments_by_kind_and_round_trips() {
        let schemas = ReadingSchemas::new();
        let mut buf = ChunkBuffer::default();
        let readings = vec![
            scalar(1, 0, 1.0),
            scalar(1, 1, 2.0),
            tag(1, 2, "a"),
            scalar(1, 3, 3.0),
        ];
        for r in &readings {
            buf.push_reading(&schemas, r).unwrap();
        }
        // Three runs: scalar x2, tag x1, scalar x1.
        assert_eq!(buf.segs.len(), 3);
        let by_tuple: Vec<Tuple> = readings.iter().map(|r| schemas.to_tuple(r)).collect();
        assert_eq!(buf.to_tuples(), by_tuple);
    }

    #[test]
    fn drain_upto_splits_mixed_segments_in_order() {
        let schemas = ReadingSchemas::new();
        let mut buf = ChunkBuffer::default();
        // One segment with interleaved early/late stamps.
        for r in [
            scalar(1, 1, 1.0),
            scalar(1, 9, 9.0),
            scalar(1, 2, 2.0),
            scalar(1, 8, 8.0),
        ] {
            buf.push_reading(&schemas, &r).unwrap();
        }
        let out = buf.drain_upto(Ts::from_secs(5)).unwrap();
        let released: Vec<u64> = out
            .iter()
            .flat_map(Chunk::to_tuples)
            .map(|t| t.ts().as_millis() / 1000)
            .collect();
        assert_eq!(released, vec![1, 2]);
        let kept: Vec<u64> = buf
            .to_tuples()
            .iter()
            .map(|t| t.ts().as_millis() / 1000)
            .collect();
        assert_eq!(kept, vec![9, 8]);
        // A later drain releases the rest.
        let rest = buf.drain_upto(Ts::from_secs(10)).unwrap();
        assert_eq!(rest.iter().map(Chunk::len).sum::<usize>(), 2);
        assert!(buf.to_tuples().is_empty());
    }

    #[test]
    fn queue_source_row_and_payload_polls_agree() {
        let schemas = ReadingSchemas::new();
        let mk = || {
            let buf: ReadingBuffer = Arc::new(Mutex::new(ChunkBuffer::default()));
            for r in [scalar(1, 1, 1.0), tag(1, 2, "a"), scalar(1, 7, 7.0)] {
                buf.lock().push_reading(&schemas, &r).unwrap();
            }
            QueueSource::new(ReceptorId(1), buf)
        };
        let rows = mk().poll(Ts::from_secs(5)).unwrap();
        let payload = mk().poll_payload(Ts::from_secs(5)).unwrap();
        assert_eq!(payload.to_rows(), rows);
        assert_eq!(rows.len(), 2);
        let Payload::Chunks(chunks) = payload else {
            panic!("gateway source must stay columnar");
        };
        assert_eq!(chunks.len(), 2, "one chunk per kind run");
    }
}
