//! Per-shard pipeline workers.
//!
//! Each shard owns a full [`EspProcessor`] cleaning cascade over the
//! proximity groups hashed to it. Readings and epoch punctuation arrive on
//! one bounded FIFO channel per shard; because the coordinator only sends
//! `Flush(e)` after the watermark certifies `e`, every reading with
//! `ts <= e` is already ahead of the flush in the queue, and the step is
//! deterministic.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use crossbeam::channel::Receiver;
use parking_lot::Mutex;

use esp_core::EspProcessor;
use esp_receptors::wire::Reading;
use esp_stream::Source;
use esp_types::{Batch, ReceptorId, Result, Ts, Tuple};

use crate::convert::ReadingSchemas;
use crate::server::EpochTrace;
use crate::stats::GatewayStats;

/// Message on a shard's ingest queue.
pub(crate) enum ShardMsg {
    /// A decoded reading routed to this shard.
    Reading(Reading),
    /// Punctuation: all readings with `ts <= epoch` are upstream of this
    /// message — step the pipeline.
    Flush(Ts),
    /// Drain and exit; the worker returns its output trace.
    Shutdown,
}

/// Shared mailbox between a shard worker (producer) and one of its
/// processor's sources (consumer). Both run on the worker thread, so the
/// mutex is uncontended.
pub(crate) type ReadingBuffer = Arc<Mutex<Vec<Tuple>>>;

/// A [`Source`] that drains a [`ReadingBuffer`]: `poll(epoch)` releases
/// exactly the tuples stamped `<= epoch`, preserving arrival order, and
/// keeps later tuples for the next epoch.
pub(crate) struct QueueSource {
    name: String,
    buf: ReadingBuffer,
}

impl QueueSource {
    pub(crate) fn new(receptor: ReceptorId, buf: ReadingBuffer) -> QueueSource {
        QueueSource {
            name: format!("gateway-{receptor}"),
            buf,
        }
    }
}

impl Source for QueueSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, epoch: Ts) -> Result<Batch> {
        let mut buf = self.buf.lock();
        let mut out = Batch::new();
        let mut keep = Vec::new();
        for t in buf.drain(..) {
            if t.ts() <= epoch {
                out.push(t);
            } else {
                keep.push(t);
            }
        }
        *buf = keep;
        Ok(out)
    }
}

/// Spawn one shard worker. It owns the processor; on `Shutdown` (or a
/// disconnected channel) it returns the accumulated output trace.
pub(crate) fn spawn_worker(
    shard: usize,
    rx: Receiver<ShardMsg>,
    mut processor: EspProcessor,
    buffers: HashMap<ReceptorId, ReadingBuffer>,
    stats: GatewayStats,
) -> Result<JoinHandle<Result<EpochTrace>>> {
    let schemas = ReadingSchemas::new();
    thread::Builder::new()
        .name(format!("esp-gateway-shard-{shard}"))
        .spawn(move || {
            loop {
                match rx.recv() {
                    Ok(ShardMsg::Reading(reading)) => {
                        // Router guarantees membership, but a dynamic
                        // group edit could race a reading in flight;
                        // dropping here matches the processor, which
                        // drops tuples from departed members.
                        if let Some(buf) = buffers.get(&reading.receptor()) {
                            buf.lock().push(schemas.to_tuple(&reading));
                        }
                    }
                    Ok(ShardMsg::Flush(epoch)) => {
                        processor.step(epoch)?;
                        stats.note_flush_done(epoch.as_millis());
                    }
                    Ok(ShardMsg::Shutdown) | Err(_) => break,
                }
            }
            Ok(processor.take_output())
        })
        .map_err(|e| esp_types::EspError::Config(format!("spawn shard worker thread: {e}")))
}
