//! Decoded wire readings → stream tuples.
//!
//! The mapping mirrors what the in-process simulators produce at their
//! edges (`MoteSource`, `ShelfScenario`, `X10MotionSource`), so a pipeline
//! fed through the gateway sees byte-identical tuples to one fed directly:
//!
//! | wire kind            | schema                              |
//! |----------------------|-------------------------------------|
//! | `Scalar`             | `temp_schema (receptor_id, temp)`   |
//! | `Tag`                | `rfid_schema (receptor_id, tag_id)` |
//! | `Event`              | `motion_schema (receptor_id, value)`|
//! | `Dual`               | `temp_voltage_schema (…)`           |

use std::sync::Arc;

use esp_receptors::wire::Reading;
use esp_types::{well_known, Chunk, Result, Schema, Tuple, Value};

/// Cached per-kind schemas. The spatial-granule injector in `esp-core`
/// caches by schema pointer identity, so all tuples of one kind must share
/// one `Arc<Schema>`; clone this struct freely — clones share the arcs.
#[derive(Debug, Clone)]
pub struct ReadingSchemas {
    scalar: Arc<Schema>,
    tag: Arc<Schema>,
    event: Arc<Schema>,
    dual: Arc<Schema>,
}

impl Default for ReadingSchemas {
    fn default() -> ReadingSchemas {
        ReadingSchemas::new()
    }
}

impl ReadingSchemas {
    /// Build the cache (one allocation per kind).
    pub fn new() -> ReadingSchemas {
        ReadingSchemas {
            scalar: well_known::temp_schema(),
            tag: well_known::rfid_schema(),
            event: well_known::motion_schema(),
            dual: well_known::temp_voltage_schema(),
        }
    }

    /// Convert a decoded reading into the tuple the matching simulator
    /// would have produced.
    pub fn to_tuple(&self, reading: &Reading) -> Tuple {
        match reading {
            Reading::Scalar {
                receptor,
                ts,
                value,
            } => Tuple::new_unchecked(
                Arc::clone(&self.scalar),
                *ts,
                vec![Value::Int(i64::from(receptor.0)), Value::Float(*value)],
            ),
            Reading::Tag {
                receptor,
                ts,
                tag_id,
            } => Tuple::new_unchecked(
                Arc::clone(&self.tag),
                *ts,
                vec![Value::Int(i64::from(receptor.0)), Value::str(tag_id)],
            ),
            Reading::Event {
                receptor,
                ts,
                value,
            } => Tuple::new_unchecked(
                Arc::clone(&self.event),
                *ts,
                vec![Value::Int(i64::from(receptor.0)), Value::str(value)],
            ),
            Reading::Dual { receptor, ts, a, b } => Tuple::new_unchecked(
                Arc::clone(&self.dual),
                *ts,
                vec![
                    Value::Int(i64::from(receptor.0)),
                    Value::Float(*a),
                    Value::Float(*b),
                ],
            ),
        }
    }

    /// The schema a reading's kind maps to (the canonical interned `Arc`,
    /// so chunk builders can compare by pointer).
    pub fn schema_for(&self, reading: &Reading) -> &Arc<Schema> {
        match reading {
            Reading::Scalar { .. } => &self.scalar,
            Reading::Tag { .. } => &self.tag,
            Reading::Event { .. } => &self.event,
            Reading::Dual { .. } => &self.dual,
        }
    }

    /// Append a decoded reading's row directly to a columnar chunk of its
    /// kind schema — the chunk-path twin of [`ReadingSchemas::to_tuple`],
    /// with no per-reading tuple allocation.
    pub fn append_to_chunk(&self, reading: &Reading, chunk: &mut Chunk) -> Result<()> {
        match reading {
            Reading::Scalar {
                receptor,
                ts,
                value,
            } => chunk.push_row_owned(
                *ts,
                vec![Value::Int(i64::from(receptor.0)), Value::Float(*value)],
            ),
            Reading::Tag {
                receptor,
                ts,
                tag_id,
            } => chunk.push_row_owned(
                *ts,
                vec![Value::Int(i64::from(receptor.0)), Value::str(tag_id)],
            ),
            Reading::Event {
                receptor,
                ts,
                value,
            } => chunk.push_row_owned(
                *ts,
                vec![Value::Int(i64::from(receptor.0)), Value::str(value)],
            ),
            Reading::Dual { receptor, ts, a, b } => chunk.push_row_owned(
                *ts,
                vec![
                    Value::Int(i64::from(receptor.0)),
                    Value::Float(*a),
                    Value::Float(*b),
                ],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_types::{ReceptorId, Ts};

    #[test]
    fn every_kind_maps_to_its_simulator_schema() {
        let s = ReadingSchemas::new();
        let cases: Vec<(Reading, &str, usize)> = vec![
            (
                Reading::Scalar {
                    receptor: ReceptorId(1),
                    ts: Ts::from_secs(1),
                    value: 20.5,
                },
                well_known::TEMP,
                2,
            ),
            (
                Reading::Tag {
                    receptor: ReceptorId(2),
                    ts: Ts::from_secs(2),
                    tag_id: "t".into(),
                },
                well_known::TAG_ID,
                2,
            ),
            (
                Reading::Event {
                    receptor: ReceptorId(3),
                    ts: Ts::from_secs(3),
                    value: "ON".into(),
                },
                well_known::VALUE,
                2,
            ),
            (
                Reading::Dual {
                    receptor: ReceptorId(4),
                    ts: Ts::from_secs(4),
                    a: 20.0,
                    b: 2.9,
                },
                well_known::VOLTAGE,
                3,
            ),
        ];
        for (reading, field, width) in cases {
            let t = s.to_tuple(&reading);
            assert_eq!(t.ts(), reading.ts());
            assert!(t.get(field).is_some(), "{field} missing for {reading:?}");
            assert_eq!(t.values().len(), width);
            assert_eq!(
                t.get(well_known::RECEPTOR_ID),
                Some(&Value::Int(i64::from(reading.receptor().0)))
            );
        }
    }

    #[test]
    fn append_to_chunk_matches_to_tuple() {
        let s = ReadingSchemas::new();
        let readings = vec![
            Reading::Scalar {
                receptor: ReceptorId(1),
                ts: Ts::from_secs(1),
                value: 20.5,
            },
            Reading::Tag {
                receptor: ReceptorId(2),
                ts: Ts::from_secs(2),
                tag_id: "t".into(),
            },
            Reading::Event {
                receptor: ReceptorId(3),
                ts: Ts::from_secs(3),
                value: "ON".into(),
            },
            Reading::Dual {
                receptor: ReceptorId(4),
                ts: Ts::from_secs(4),
                a: 20.0,
                b: 2.9,
            },
        ];
        for r in &readings {
            let mut chunk = Chunk::new(s.schema_for(r));
            s.append_to_chunk(r, &mut chunk).unwrap();
            assert_eq!(chunk.to_tuples(), vec![s.to_tuple(r)]);
            assert!(Arc::ptr_eq(chunk.schema(), s.schema_for(r)));
        }
    }

    #[test]
    fn schema_arcs_are_shared_across_conversions() {
        let s = ReadingSchemas::new();
        let a = s.to_tuple(&Reading::Scalar {
            receptor: ReceptorId(1),
            ts: Ts::ZERO,
            value: 1.0,
        });
        let b = s.to_tuple(&Reading::Scalar {
            receptor: ReceptorId(2),
            ts: Ts::ZERO,
            value: 2.0,
        });
        assert!(
            Arc::ptr_eq(a.schema(), b.schema()),
            "injector cache depends on this"
        );
    }
}
