//! Bounded-lateness watermarks at the gateway edge.
//!
//! Each connection promises in its handshake that readings may arrive out
//! of order by at most `lateness`: after a reading stamped `t`, nothing
//! earlier than `t − lateness` will follow. The connection's watermark is
//! therefore `max ts seen − lateness`, monotone by construction, and a
//! closed connection promises everything (`∞`). The **global** watermark
//! is the minimum over all connections ever registered; epoch `e` is safe
//! to flush once the global watermark exceeds `e`.
//!
//! Ordering contract: a reader must enqueue a reading into the shard
//! queues *before* advancing its watermark (release store); the
//! coordinator reads watermarks (acquire load) before enqueuing a flush.
//! The shard channels are FIFO, so a flush can never overtake the readings
//! it certifies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// One connection's monotone watermark, in milliseconds.
#[derive(Debug, Default)]
pub struct ConnClock {
    watermark_ms: AtomicU64,
}

impl ConnClock {
    /// Raise the watermark to `ms` (no-op if already past it).
    ///
    /// `Release`: the reader calls this *after* enqueuing the reading
    /// that justifies it, so the coordinator's `Acquire` load in
    /// [`current`](ConnClock::current) observing `ms` happens-after the
    /// enqueue — the coordinator can never certify an epoch whose
    /// readings are not already ahead of the flush in the FIFO queue.
    /// `fetch_max` (not a store) keeps the clock monotone even when
    /// in-contract out-of-order readings advance it with smaller values.
    pub fn advance(&self, ms: u64) {
        self.watermark_ms.fetch_max(ms, Ordering::Release);
    }

    /// Connection finished: no further readings will ever arrive.
    ///
    /// Same `Release` pairing as [`advance`](ConnClock::advance): called
    /// only after the reader has enqueued its final reading, so the `∞`
    /// promise is ordered after everything it promises about.
    pub fn close(&self) {
        self.watermark_ms.store(u64::MAX, Ordering::Release);
    }

    /// Current promise: every future reading has `ts >= current()`.
    ///
    /// `Acquire`, pairing with the reader's `Release` writes above: any
    /// value observed here carries the guarantee that the readings
    /// backing it are already in the shard queues.
    pub fn current(&self) -> u64 {
        self.watermark_ms.load(Ordering::Acquire)
    }
}

/// Registry of connection watermarks; the coordinator polls
/// [`WatermarkClock::global`].
#[derive(Debug, Clone, Default)]
pub struct WatermarkClock {
    conns: Arc<Mutex<Vec<Arc<ConnClock>>>>,
}

impl WatermarkClock {
    /// Empty registry.
    pub fn new() -> WatermarkClock {
        WatermarkClock::default()
    }

    /// Register a new connection; its watermark starts at 0 and holds the
    /// global watermark back until the connection sends or closes.
    pub fn register(&self) -> Arc<ConnClock> {
        let clock = Arc::new(ConnClock::default());
        self.conns.lock().push(Arc::clone(&clock));
        clock
    }

    /// Connections registered so far (open or closed).
    pub fn registered(&self) -> usize {
        self.conns.lock().len()
    }

    /// Minimum watermark over every registered connection; `None` when no
    /// connection has registered yet.
    pub fn global(&self) -> Option<u64> {
        let conns = self.conns.lock();
        conns.iter().map(|c| c.current()).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_min_over_connections() {
        let wm = WatermarkClock::new();
        assert_eq!(wm.global(), None);
        let a = wm.register();
        let b = wm.register();
        assert_eq!(wm.global(), Some(0), "fresh connections hold it at 0");
        a.advance(500);
        assert_eq!(wm.global(), Some(0), "b still at 0");
        b.advance(300);
        assert_eq!(wm.global(), Some(300));
        a.close();
        assert_eq!(wm.global(), Some(300), "closed conn no longer limits");
        b.close();
        assert_eq!(wm.global(), Some(u64::MAX));
        assert_eq!(wm.registered(), 2);
    }

    #[test]
    fn watermark_is_monotone() {
        let c = ConnClock::default();
        c.advance(100);
        c.advance(50);
        assert_eq!(c.current(), 100, "late smaller advance must not regress");
    }
}
