//! The receptor side of the gateway protocol: connect, handshake, stream
//! frames. Used by simulated receptors, the load generator, and tests.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use esp_receptors::framing::{FrameReader, FrameWriter};
use esp_receptors::wire::Reading;
use esp_types::TimeDelta;

use crate::server::{
    ACK_OK, HELLO_MAGIC, PROTOCOL_VERSION, STATS_FINAL, STATS_JSON_REQUEST, STATS_MORE,
    STATS_TEXT_REQUEST,
};

/// A connected receptor uplink.
///
/// The handshake carries the connection's **bounded-lateness promise**:
/// after sending a reading stamped `t`, the client will never send one
/// stamped earlier than `t − lateness`. The gateway turns that promise
/// into a per-connection watermark; a client that breaks it may have its
/// late readings attributed to a later epoch than a single-process run
/// would have used.
#[derive(Debug)]
pub struct GatewayClient {
    writer: FrameWriter<BufWriter<TcpStream>>,
    /// Read half of the same socket, for `STATS` scrape responses.
    reader: FrameReader<BufReader<TcpStream>>,
}

impl GatewayClient {
    /// Connect and perform the hello/ack handshake.
    pub fn connect(addr: impl ToSocketAddrs, lateness: TimeDelta) -> io::Result<GatewayClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut hello = [0u8; 14];
        hello[0..4].copy_from_slice(&HELLO_MAGIC.to_be_bytes());
        hello[4..6].copy_from_slice(&PROTOCOL_VERSION.to_be_bytes());
        hello[6..14].copy_from_slice(&lateness.as_millis().to_be_bytes());
        stream.write_all(&hello)?;
        let mut ack = [0u8; 1];
        stream.read_exact(&mut ack)?;
        if ack[0] != ACK_OK {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("gateway rejected handshake (ack {:#04x})", ack[0]),
            ));
        }
        let read_half = stream.try_clone()?;
        Ok(GatewayClient {
            writer: FrameWriter::new(BufWriter::with_capacity(64 * 1024, stream)),
            reader: FrameReader::new(BufReader::with_capacity(64 * 1024, read_half)),
        })
    }

    /// Like [`GatewayClient::connect`], but retry with doubling backoff —
    /// the reconnect path a receptor uses while its gateway is restarting
    /// after a crash. Tries up to `attempts` times, sleeping
    /// `initial_backoff`, then twice that, and so on, between failures;
    /// returns the last error if every attempt fails.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        lateness: TimeDelta,
        attempts: u32,
        initial_backoff: Duration,
    ) -> io::Result<GatewayClient> {
        let mut backoff = initial_backoff;
        let mut last_err = io::Error::new(io::ErrorKind::InvalidInput, "zero connect attempts");
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff *= 2;
            }
            match GatewayClient::connect(addr.clone(), lateness) {
                Ok(client) => return Ok(client),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Encode and send one reading.
    pub fn send(&mut self, reading: &Reading) -> io::Result<()> {
        self.writer.write_reading(reading)
    }

    /// Send pre-encoded (possibly deliberately corrupted) frame bytes —
    /// the load generator's lossy-channel path.
    pub fn send_raw(&mut self, frame: &[u8]) -> io::Result<()> {
        self.writer.write_raw(frame)
    }

    /// Push buffered frames onto the wire without closing.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Scrape the gateway's metrics as a Prometheus text exposition
    /// document. Safe to interleave with [`GatewayClient::send`]: the
    /// request rides the same connection and the response is the only
    /// server→client traffic after the handshake ack.
    pub fn scrape(&mut self) -> io::Result<String> {
        self.scrape_with(STATS_TEXT_REQUEST)
    }

    /// [`GatewayClient::scrape`], but as one JSON document.
    pub fn scrape_json(&mut self) -> io::Result<String> {
        self.scrape_with(STATS_JSON_REQUEST)
    }

    fn scrape_with(&mut self, request: &[u8]) -> io::Result<String> {
        self.writer.write_raw(request)?;
        self.writer.flush()?;
        // The document arrives as marker-prefixed frames; concatenate
        // chunks until the final marker.
        let mut body = Vec::new();
        loop {
            let frame = self.reader.read_frame()?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "gateway closed mid-scrape")
            })?;
            let (&marker, chunk) = frame.split_first().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "empty stats response frame")
            })?;
            body.extend_from_slice(chunk);
            match marker {
                STATS_FINAL => break,
                STATS_MORE => {}
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad stats response marker {other:#04x}"),
                    ))
                }
            }
        }
        String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 stats document"))
    }

    /// Flush and close the connection (the gateway treats the EOF as this
    /// connection's final punctuation).
    pub fn finish(mut self) -> io::Result<()> {
        self.writer.flush()
    }
}
