//! Granule-hash shard placement.
//!
//! The gateway splits work by *spatial granule*, never by receptor: every
//! group-scoped cleaning stage (Smooth reinforcement, Merge outlier tests,
//! Arbitrate de-duplication) sees all members of its proximity group on one
//! worker, so a sharded run cleans exactly like a single-process run.

use std::collections::HashMap;

use esp_types::ReceptorId;

use crate::server::GatewayGroup;

/// FNV-1a over the granule name, reduced modulo the shard count. Stable
/// across runs and processes, so a deployment can be restarted without
/// re-homing granules.
pub fn shard_of_granule(granule: &str, n_shards: usize) -> usize {
    assert!(n_shards > 0, "shard count must be positive");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in granule.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % n_shards as u64) as usize
}

/// Maps each receptor to the shard(s) hosting its proximity groups.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    n_shards: usize,
    routes: HashMap<ReceptorId, Vec<usize>>,
}

impl ShardRouter {
    /// Build the routing table from the gateway's group specifications.
    pub fn new(groups: &[GatewayGroup], n_shards: usize) -> ShardRouter {
        let mut routes: HashMap<ReceptorId, Vec<usize>> = HashMap::new();
        for g in groups {
            let shard = shard_of_granule(&g.granule, n_shards);
            for &member in &g.members {
                let shards = routes.entry(member).or_default();
                if !shards.contains(&shard) {
                    shards.push(shard);
                }
            }
        }
        for shards in routes.values_mut() {
            shards.sort_unstable();
        }
        ShardRouter { n_shards, routes }
    }

    /// The shards a receptor's readings must reach; `None` when the
    /// receptor belongs to no registered group (the reading is
    /// unroutable and gets dropped with a counter bump).
    pub fn shards_of(&self, receptor: ReceptorId) -> Option<&[usize]> {
        self.routes.get(&receptor).map(Vec::as_slice)
    }

    /// Number of shards routed over.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// All receptors with at least one route.
    pub fn receptors(&self) -> impl Iterator<Item = ReceptorId> + '_ {
        self.routes.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_types::ReceptorType;

    fn group(granule: &str, members: &[u32]) -> GatewayGroup {
        GatewayGroup {
            receptor_type: ReceptorType::Rfid,
            granule: granule.into(),
            members: members.iter().map(|&m| ReceptorId(m)).collect(),
        }
    }

    #[test]
    fn hash_is_stable_and_in_range() {
        for n in 1..=8 {
            for g in ["shelf0", "shelf1", "room", "height-3"] {
                let s = shard_of_granule(g, n);
                assert!(s < n);
                assert_eq!(s, shard_of_granule(g, n), "stable across calls");
            }
        }
    }

    #[test]
    fn granules_spread_across_shards() {
        // With enough granules, more than one shard must be used.
        let shards: std::collections::HashSet<usize> = (0..32)
            .map(|i| shard_of_granule(&format!("granule-{i}"), 4))
            .collect();
        assert!(shards.len() > 1, "all granules landed on one shard");
    }

    #[test]
    fn router_sends_group_members_to_group_shard() {
        let groups = vec![group("shelf0", &[0, 1]), group("shelf1", &[2])];
        let router = ShardRouter::new(&groups, 4);
        let s0 = shard_of_granule("shelf0", 4);
        let s1 = shard_of_granule("shelf1", 4);
        assert_eq!(router.shards_of(ReceptorId(0)), Some(&[s0][..]));
        assert_eq!(router.shards_of(ReceptorId(1)), Some(&[s0][..]));
        assert_eq!(router.shards_of(ReceptorId(2)), Some(&[s1][..]));
        assert_eq!(router.shards_of(ReceptorId(9)), None);
    }

    #[test]
    fn multi_group_receptor_fans_out() {
        // Find two granules on different shards, put one receptor in both.
        let mut names = (0..).map(|i| format!("g{i}"));
        let a = names.next().unwrap();
        let b = names
            .find(|n| shard_of_granule(n, 4) != shard_of_granule(&a, 4))
            .unwrap();
        let groups = vec![group(&a, &[7]), group(&b, &[7])];
        let router = ShardRouter::new(&groups, 4);
        let shards = router.shards_of(ReceptorId(7)).unwrap();
        assert_eq!(shards.len(), 2);
        assert!(shards[0] < shards[1], "sorted and deduplicated");
    }
}
