//! Gateway ↔ `esp-durability` glue: snapshot payload composition and the
//! per-worker durability hooks.
//!
//! A shard's snapshot payload is everything its worker would lose in a
//! crash: the processor's cross-epoch stage state (window buffers,
//! smoothing aggregates, counters — captured through
//! [`EspProcessor::snapshot_state`]) plus the readings buffered for
//! epochs the coordinator has not flushed yet. Both are byte-encoded with
//! `esp_types::snap` so the same truncation/corruption guarantees apply
//! end to end.
//!
//! ## Why recovery never takes the WAL lock
//!
//! Writers hold the WAL mutex across *append + enqueue*, so per-shard
//! queue order equals WAL order exactly. A recovering worker, however,
//! reads the log **lock-free**: whatever durable prefix it observes ends
//! at some sequence number `S`, and the skip rule (drop queued messages
//! with `seq <= S`) makes any such prefix consistent — records it did not
//! see are still in its queue. Taking the lock instead could deadlock: a
//! reader blocked on this worker's full queue would be holding it.
//!
//! The lock-free read can also race another shard's checkpoint reclaiming
//! old segments; `read_wal_dir` handles that by retrying its directory
//! listing when a listed segment vanishes before it is read. Reclaimed
//! segments only ever drop records below every shard's newest snapshot,
//! so the surviving suffix still contains everything this shard's replay
//! needs.

use std::collections::HashMap;
use std::sync::atomic::AtomicI64;
use std::sync::Arc;

use parking_lot::Mutex;

use esp_core::EspProcessor;
use esp_durability::{DurabilityConfig, SnapshotStore, WalWriter};
use esp_types::{snap, EspError, ReceptorId, Result};

use crate::shard::ShardRouter;
use crate::worker::ReadingBuffer;

/// Everything a durable shard worker needs beyond its normal inputs.
pub(crate) struct DurabilityHooks {
    /// The validated configuration (directories, cadence, retention).
    pub config: DurabilityConfig,
    /// Snapshot reader/writer (shared across shards; files are per-shard).
    pub store: Arc<SnapshotStore>,
    /// The shared log writer — used by workers only for best-effort
    /// truncation via `try_lock`, never a blocking acquire.
    pub wal: Arc<Mutex<WalWriter>>,
    /// Router, for re-deciding which replayed readings belong here.
    pub router: Arc<ShardRouter>,
    /// Total shard count (snapshot coverage check before truncation).
    pub n_shards: usize,
    /// Checkpoint every this many epochs (`interval / period`, ≥ 1).
    pub checkpoint_every: u64,
    /// Fault injection: `-1` disarmed; `n ≥ 0` crashes the worker when it
    /// has processed `n` more flushes.
    pub crash_countdown: Arc<AtomicI64>,
}

/// Serialize one shard's recoverable state: processor stage state plus
/// the per-receptor pending buffers, in receptor-id order.
pub(crate) fn compose_payload(
    processor: &EspProcessor,
    buffers: &HashMap<ReceptorId, ReadingBuffer>,
) -> Result<Vec<u8>> {
    let state = processor.snapshot_state()?;
    let mut out = Vec::with_capacity(state.len() + 64);
    snap::put_u32(&mut out, state.len() as u32);
    out.extend_from_slice(&state);
    let mut ids: Vec<ReceptorId> = buffers.keys().copied().collect();
    ids.sort_by_key(|r| r.0);
    snap::put_u32(&mut out, ids.len() as u32);
    for id in ids {
        snap::put_u32(&mut out, id.0);
        // Materialize the columnar buffer: the snapshot encoding stays
        // byte-identical to the original row-backed buffer's.
        let rows = buffers[&id].lock().to_tuples();
        snap::encode_batch(&mut out, &rows);
    }
    Ok(out)
}

/// Restore a payload written by [`compose_payload`] into a freshly built
/// processor and its (empty) buffers.
pub(crate) fn restore_payload(
    payload: &[u8],
    processor: &mut EspProcessor,
    buffers: &HashMap<ReceptorId, ReadingBuffer>,
) -> Result<()> {
    let mut cur = snap::Cursor::new(payload);
    let state_len = cur.u32()? as usize;
    let state = cur.bytes(state_len)?.to_vec();
    processor.restore_state(&state)?;
    let n = cur.u32()?;
    for _ in 0..n {
        let id = ReceptorId(cur.u32()?);
        let pending = snap::decode_batch(&mut cur)?;
        let Some(buf) = buffers.get(&id) else {
            return Err(EspError::Snapshot(format!(
                "snapshot holds pending readings for receptor {id} which is not \
                 bound to this shard (group configuration changed since the checkpoint?)"
            )));
        };
        buf.lock().set_rows(&pending);
    }
    cur.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_without_processor_state_is_rejected() {
        // A truncated payload must fail loudly, not restore partially.
        let payload = vec![0, 0, 0, 9]; // claims 9 state bytes, has none
        let mut cur = snap::Cursor::new(&payload);
        assert_eq!(cur.u32().unwrap(), 9);
        assert!(cur.bytes(9).is_err());
    }
}
