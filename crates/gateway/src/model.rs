//! Deterministic model checking of the gateway's watermark protocol.
//!
//! [`GatewayModel`] is a finite abstraction of the reader/coordinator/
//! worker handshake in [`watermark`](crate::watermark) and the server's
//! `coordinate` loop: each connection enqueues readings into a FIFO
//! shard queue and *then* advances its monotone clock (`fetch_max` of
//! `ts − lateness`); the coordinator polls the global minimum and
//! enqueues epoch flushes behind the readings they certify; the worker
//! drains the queue in order. [`GatewayModel::check`] explores every
//! interleaving of those steps and reports violations as `E0703`
//! diagnostics:
//!
//! * **watermark regression** — the coordinator observes the global
//!   watermark decrease, breaking the "monotone by construction"
//!   contract every flush decision leans on.
//! * **flush overtaking a reading** — the worker sees a reading stamped
//!   below an epoch bound that was already flushed: data certified as
//!   complete arrived after its epoch was sealed.
//!
//! Two deliberately broken variants ([`GatewayMutant`]) re-introduce
//! the bugs the shipped ordering rules prevent; the test suite asserts
//! the checker catches both.

use std::collections::VecDeque;

use esp_stream::model::ModelReport;
use esp_types::Diagnostic;
use stateright::{always, Checker, Model, Property};

/// A deliberately seeded watermark-protocol bug (test/validation only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayMutant {
    /// `ConnClock::advance` uses a plain store instead of `fetch_max`,
    /// so an in-contract late reading can drag the clock backwards.
    StoreNotMax,
    /// The reader closes its clock (promising "nothing further") before
    /// its final reading is enqueued — the flush that close releases
    /// can overtake the reading in the shard queue.
    CloseBeforeLastEnqueue,
}

/// One modeled connection: the readings it will send (wire order) and
/// its declared bounded-lateness promise.
#[derive(Debug, Clone)]
pub struct ConnScript {
    /// Reading timestamps in wire order (out-of-order allowed within
    /// `lateness`, as the handshake permits).
    pub readings: Vec<u64>,
    /// Bounded-lateness promise (ms).
    pub lateness: u64,
}

/// Finite model of the gateway watermark protocol (see module docs).
#[derive(Debug, Clone)]
pub struct GatewayModel {
    conns: Vec<ConnScript>,
    epoch_ms: u64,
    mutant: Option<GatewayMutant>,
}

/// Where one connection's reader thread is in its script.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ConnPhase {
    /// About to enqueue reading `i`.
    Enqueue(usize),
    /// Reading `i` enqueued; about to advance the clock for it.
    Advance(usize),
    /// Script exhausted; about to close the clock.
    Close,
    /// Mutant order: clock closed, final reading still to enqueue.
    LateEnqueue(usize),
    Done,
}

/// A message in the FIFO shard queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum QMsg {
    Reading(u64),
    /// Seals every reading with `ts < bound`.
    Flush(u64),
}

/// A full configuration of the modeled gateway.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GatewayState {
    phase: Vec<ConnPhase>,
    clock: Vec<u64>,
    queue: VecDeque<QMsg>,
    /// Coordinator's next epoch boundary to flush.
    next_flush: u64,
    /// Last global watermark the coordinator observed.
    last_global: u64,
    /// Max reading timestamp enqueued so far (the coordinator's flush
    /// bound, mirroring `GatewayStats::max_ts_ms`).
    max_enqueued: u64,
    /// Worker-side: readings below this bound are sealed.
    sealed: u64,
    monotone_ok: bool,
    overtake_ok: bool,
}

/// One schedulable step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayAction {
    /// Connection `i`'s reader takes its next step (enqueue, advance,
    /// or close — one atomic action each).
    Conn(usize),
    /// The coordinator polls the global watermark and enqueues any due
    /// epoch flushes.
    CoordinatorPoll,
    /// The worker pops one message from the shard queue.
    WorkerStep,
}

impl GatewayModel {
    /// A model over the given connection scripts, flushing epochs every
    /// `epoch_ms`.
    pub fn new(conns: Vec<ConnScript>, epoch_ms: u64) -> GatewayModel {
        assert!(epoch_ms > 0);
        GatewayModel {
            conns,
            epoch_ms,
            mutant: None,
        }
    }

    /// The default acceptance configuration: one in-contract
    /// out-of-order connection and one short straggler.
    pub fn acceptance() -> GatewayModel {
        GatewayModel::new(
            vec![
                ConnScript {
                    readings: vec![10, 5],
                    lateness: 5,
                },
                ConnScript {
                    readings: vec![3],
                    lateness: 0,
                },
            ],
            5,
        )
    }

    /// Seed a protocol bug. Only available to tests and the
    /// `model-mutants` feature.
    #[cfg(any(test, feature = "model-mutants"))]
    pub fn with_mutant(mut self, mutant: GatewayMutant) -> GatewayModel {
        self.mutant = Some(mutant);
        self
    }

    /// Exhaustively explore every interleaving.
    pub fn check(&self) -> ModelReport {
        let report = Checker::new().max_states(2_000_000).check(self);
        let mut diagnostics = Vec::new();
        for v in &report.violations {
            let what = match v.property {
                "watermark-monotone" => {
                    "the global watermark regressed — a later poll observed a smaller value"
                }
                "flush-never-overtakes" => {
                    "an epoch flush overtook a reading it claimed to certify — the worker \
                     saw a reading stamped below an already-sealed bound"
                }
                other => other,
            };
            diagnostics.push(
                Diagnostic::error(
                    "E0703",
                    format!(
                        "watermark protocol violation after {} steps: {what}",
                        v.trace.len()
                    ),
                )
                .with_note(format!("shortest failing schedule: {:?}", v.trace)),
            );
        }
        ModelReport {
            states_explored: report.states_explored,
            complete: report.complete,
            diagnostics,
        }
    }

    fn advanced(&self, current: u64, conn: usize, ts: u64) -> u64 {
        let target = ts.saturating_sub(self.conns[conn].lateness);
        match self.mutant {
            // The bug: a plain store forgets the monotone maximum.
            Some(GatewayMutant::StoreNotMax) => target,
            _ => current.max(target),
        }
    }
}

impl Model for GatewayModel {
    type State = GatewayState;
    type Action = GatewayAction;

    fn init_states(&self) -> Vec<GatewayState> {
        vec![GatewayState {
            phase: self
                .conns
                .iter()
                .map(|c| {
                    if c.readings.is_empty() {
                        ConnPhase::Close
                    } else {
                        ConnPhase::Enqueue(0)
                    }
                })
                .collect(),
            clock: vec![0; self.conns.len()],
            queue: VecDeque::new(),
            next_flush: self.epoch_ms,
            last_global: 0,
            max_enqueued: 0,
            sealed: 0,
            monotone_ok: true,
            overtake_ok: true,
        }]
    }

    fn actions(&self, s: &GatewayState, actions: &mut Vec<GatewayAction>) {
        for (i, p) in s.phase.iter().enumerate() {
            if *p != ConnPhase::Done {
                actions.push(GatewayAction::Conn(i));
            }
        }
        // The coordinator polls freely; a poll that changes nothing
        // produces an already-visited state and costs the search nothing.
        actions.push(GatewayAction::CoordinatorPoll);
        if !s.queue.is_empty() {
            actions.push(GatewayAction::WorkerStep);
        }
    }

    fn next_state(&self, s: &GatewayState, action: GatewayAction) -> Option<GatewayState> {
        let mut s = s.clone();
        match action {
            GatewayAction::Conn(i) => {
                let script = &self.conns[i];
                match s.phase[i] {
                    ConnPhase::Enqueue(k) => {
                        let last = k + 1 == script.readings.len();
                        if last && self.mutant == Some(GatewayMutant::CloseBeforeLastEnqueue) {
                            // The bug: promise "nothing further" while a
                            // reading is still buffered in the reader.
                            s.clock[i] = u64::MAX;
                            s.phase[i] = ConnPhase::LateEnqueue(k);
                        } else {
                            let ts = script.readings[k];
                            s.queue.push_back(QMsg::Reading(ts));
                            s.max_enqueued = s.max_enqueued.max(ts);
                            s.phase[i] = ConnPhase::Advance(k);
                        }
                    }
                    ConnPhase::Advance(k) => {
                        // Advance AFTER enqueuing (the shipped ordering).
                        let ts = script.readings[k];
                        s.clock[i] = self.advanced(s.clock[i], i, ts);
                        s.phase[i] = if k + 1 < script.readings.len() {
                            ConnPhase::Enqueue(k + 1)
                        } else {
                            ConnPhase::Close
                        };
                    }
                    ConnPhase::Close => {
                        s.clock[i] = u64::MAX;
                        s.phase[i] = ConnPhase::Done;
                    }
                    ConnPhase::LateEnqueue(k) => {
                        let ts = script.readings[k];
                        s.queue.push_back(QMsg::Reading(ts));
                        s.max_enqueued = s.max_enqueued.max(ts);
                        s.phase[i] = ConnPhase::Done;
                    }
                    ConnPhase::Done => return None,
                }
            }
            GatewayAction::CoordinatorPoll => {
                let global = s.clock.iter().copied().min().unwrap_or(u64::MAX);
                if global < s.last_global {
                    s.monotone_ok = false;
                }
                s.last_global = global;
                // Flush epochs the watermark certifies, bounded by data
                // actually seen (mirrors `coordinate`'s max_ts guard).
                while s.next_flush < global && s.next_flush <= s.max_enqueued {
                    s.queue.push_back(QMsg::Flush(s.next_flush));
                    s.next_flush += self.epoch_ms;
                }
            }
            GatewayAction::WorkerStep => match s.queue.pop_front()? {
                QMsg::Reading(ts) => {
                    if ts < s.sealed {
                        s.overtake_ok = false;
                    }
                }
                QMsg::Flush(bound) => {
                    s.sealed = s.sealed.max(bound);
                }
            },
        }
        Some(s)
    }

    fn properties(&self) -> Vec<Property<Self>> {
        vec![
            always(
                "watermark-monotone",
                |_m: &GatewayModel, s: &GatewayState| s.monotone_ok,
            ),
            always(
                "flush-never-overtakes",
                |_m: &GatewayModel, s: &GatewayState| s.overtake_ok,
            ),
        ]
    }

    fn is_done(&self, s: &GatewayState) -> bool {
        s.phase.iter().all(|p| *p == ConnPhase::Done) && s.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_protocol_passes_full_exploration() {
        let report = GatewayModel::acceptance().check();
        assert!(report.passed(), "{:#?}", report.diagnostics);
        assert!(report.states_explored > 50, "{}", report.states_explored);
    }

    #[test]
    fn store_not_max_regresses_the_watermark() {
        // One connection sending in-contract out-of-order readings: the
        // plain store drags its clock from 5 back to 0.
        let model = GatewayModel::new(
            vec![ConnScript {
                readings: vec![10, 5],
                lateness: 5,
            }],
            5,
        )
        .with_mutant(GatewayMutant::StoreNotMax);
        let report = model.check();
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == "E0703" && d.message.contains("regressed")),
            "expected a watermark regression, got {:#?}",
            report.diagnostics
        );
    }

    #[test]
    fn close_before_last_enqueue_lets_a_flush_overtake() {
        let report = GatewayModel::acceptance()
            .with_mutant(GatewayMutant::CloseBeforeLastEnqueue)
            .check();
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == "E0703" && d.message.contains("overtook")),
            "expected a flush-overtake violation, got {:#?}",
            report.diagnostics
        );
    }

    #[test]
    fn in_contract_out_of_order_is_fine_with_fetch_max() {
        // The same out-of-order script that breaks the store mutant is
        // legal under fetch_max: the clock never regresses.
        let model = GatewayModel::new(
            vec![ConnScript {
                readings: vec![10, 5],
                lateness: 5,
            }],
            5,
        );
        let report = model.check();
        assert!(report.passed(), "{:#?}", report.diagnostics);
    }

    #[test]
    fn violations_carry_the_failing_schedule() {
        let report = GatewayModel::acceptance()
            .with_mutant(GatewayMutant::CloseBeforeLastEnqueue)
            .check();
        let d = report.diagnostics.first().expect("mutant found");
        assert!(d.notes.join("\n").contains("schedule"), "{d:#?}");
    }
}
