//! Gateway counters: per-connection ingest totals, per-shard routing
//! totals, and epoch flush latency (coordinator issues a flush → the last
//! shard finishes stepping it).
//!
//! Shard-queue backpressure is tracked separately through the shared
//! [`esp_stream::QueueStats`] the gateway reuses from the threaded runner.
//!
//! Ordering audit: every atomic here is `Relaxed`. All counters except
//! `max_ts_ms` are monitoring-only — no control decision reads them, no
//! data is published alongside an increment, so RMW atomicity is the only
//! property needed. `max_ts_ms` *is* read for control (the coordinator's
//! flush bound) — see [`GatewayStats::max_ts_ms`] for why `Relaxed` is
//! still correct there.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use esp_metrics::Report;
use esp_stream::QueueStats;

#[derive(Debug, Default)]
struct Inner {
    connections: AtomicU64,
    frames: AtomicU64,
    corrupt_frames: AtomicU64,
    readings: AtomicU64,
    unroutable: AtomicU64,
    io_errors: AtomicU64,
    max_ts_ms: AtomicU64,
    wal_records: AtomicU64,
    checkpoints: AtomicU64,
    checkpoint_nanos: AtomicU64,
    crashes: AtomicU64,
    recoveries: AtomicU64,
    shard_readings: Vec<AtomicU64>,
    flush: Mutex<FlushTracker>,
}

#[derive(Debug, Default)]
struct FlushTracker {
    n_shards: usize,
    /// Epochs issued but not yet stepped by every shard.
    pending: HashMap<u64, (Instant, usize)>,
    latencies_us: Vec<u64>,
}

/// Cheap-to-clone handle over the gateway's shared counters.
#[derive(Debug, Clone, Default)]
pub struct GatewayStats {
    inner: Arc<Inner>,
}

impl GatewayStats {
    /// Counters at zero, sized for `n_shards` workers.
    pub fn new(n_shards: usize) -> GatewayStats {
        let inner = Inner {
            shard_readings: (0..n_shards).map(|_| AtomicU64::new(0)).collect(),
            flush: Mutex::new(FlushTracker {
                n_shards,
                ..FlushTracker::default()
            }),
            ..Inner::default()
        };
        GatewayStats {
            inner: Arc::new(inner),
        }
    }

    /// A connection completed its handshake.
    pub fn note_connection(&self) {
        self.inner.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// A frame arrived (whether or not it decodes).
    pub fn note_frame(&self) {
        self.inner.frames.fetch_add(1, Ordering::Relaxed);
    }

    /// A frame failed checksum/decoding and was dropped at the edge.
    pub fn note_corrupt(&self) {
        self.inner.corrupt_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// A decoded reading was accepted and routed; `shards` are its
    /// destinations.
    pub fn note_reading(&self, ts_ms: u64, shards: &[usize]) {
        self.inner.readings.fetch_add(1, Ordering::Relaxed);
        self.inner.max_ts_ms.fetch_max(ts_ms, Ordering::Relaxed);
        for &s in shards {
            if let Some(c) = self.inner.shard_readings.get(s) {
                c.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// A decoded reading named a receptor outside every registered group.
    pub fn note_unroutable(&self) {
        self.inner.unroutable.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection died with a transport error (counted, not fatal).
    pub fn note_io_error(&self) {
        self.inner.io_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A record (reading or flush marker) was appended to the WAL.
    pub fn note_wal_record(&self) {
        self.inner.wal_records.fetch_add(1, Ordering::Relaxed);
    }

    /// A shard wrote a checkpoint snapshot.
    pub fn note_checkpoint(&self) {
        self.inner.checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Time a shard spent inside the checkpoint path (serialize, write,
    /// retain), as measured by [`CpuTimer`]. Summed across shards, this
    /// is the direct cost of the checkpoint protocol — the number the
    /// durability bench gates on, because on small machines it is far
    /// more stable than comparing two whole runs.
    pub fn note_checkpoint_time(&self, nanos: u64) {
        self.inner
            .checkpoint_nanos
            .fetch_add(nanos, Ordering::Relaxed);
    }

    /// A shard worker crashed (fault injection).
    pub fn note_crash(&self) {
        self.inner.crashes.fetch_add(1, Ordering::Relaxed);
    }

    /// A shard worker completed snapshot + WAL-replay recovery (startup
    /// recovery on a durable gateway counts too).
    pub fn note_recovery(&self) {
        self.inner.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Seed the max-timestamp watermark from recovered durable state, so
    /// a restarted coordinator's drain sweep re-covers every logged
    /// reading even before any new connection arrives.
    pub fn seed_max_ts(&self, ts_ms: u64) {
        self.inner.max_ts_ms.fetch_max(ts_ms, Ordering::Relaxed);
    }

    /// Largest reading timestamp accepted so far (ms).
    ///
    /// The coordinator reads this as its flush bound: epoch `e` is only
    /// flushed once some reading with `ts > e` exists, so an all-idle
    /// gateway never fabricates empty epochs. `Relaxed` is sufficient for
    /// that control use: `fetch_max` is an atomic RMW, so the value is
    /// monotone regardless of ordering, and a stale (smaller) read can
    /// only *defer* a flush to the next poll — never issue one early.
    /// The safety property (a flush never overtakes the readings it
    /// certifies) does not rest on this counter at all: it comes from
    /// readings and flushes travelling the same FIFO shard channel,
    /// whose send/recv pairs provide the happens-before edges (see
    /// [`crate::watermark`] for the full ordering contract, and
    /// [`crate::model`] for the checked protocol model).
    pub fn max_ts_ms(&self) -> u64 {
        self.inner.max_ts_ms.load(Ordering::Relaxed)
    }

    /// Coordinator is about to broadcast a flush for `epoch_ms`.
    pub fn note_flush_issued(&self, epoch_ms: u64) {
        let mut f = self.inner.flush.lock();
        let n = f.n_shards;
        f.pending.insert(epoch_ms, (Instant::now(), n));
    }

    /// One shard finished stepping `epoch_ms`; the last one closes the
    /// latency measurement.
    pub fn note_flush_done(&self, epoch_ms: u64) {
        let mut f = self.inner.flush.lock();
        if let Some((issued, remaining)) = f.pending.get_mut(&epoch_ms) {
            *remaining -= 1;
            if *remaining == 0 {
                let us = issued.elapsed().as_micros() as u64;
                f.pending.remove(&epoch_ms);
                f.latencies_us.push(us);
            }
        }
    }

    /// Snapshot every counter. `queue` is the shard-queue backpressure
    /// tracker the snapshot folds in.
    pub fn snapshot(&self, queue: &QueueStats) -> GatewaySnapshot {
        let f = self.inner.flush.lock();
        let lat = &f.latencies_us;
        let (mean_ms, max_ms) = if lat.is_empty() {
            (0.0, 0.0)
        } else {
            let sum: u64 = lat.iter().sum();
            let max = lat.iter().max().copied().unwrap_or(0);
            (sum as f64 / lat.len() as f64 / 1000.0, max as f64 / 1000.0)
        };
        GatewaySnapshot {
            connections: self.inner.connections.load(Ordering::Relaxed),
            frames: self.inner.frames.load(Ordering::Relaxed),
            corrupt_frames: self.inner.corrupt_frames.load(Ordering::Relaxed),
            readings: self.inner.readings.load(Ordering::Relaxed),
            unroutable: self.inner.unroutable.load(Ordering::Relaxed),
            io_errors: self.inner.io_errors.load(Ordering::Relaxed),
            wal_records: self.inner.wal_records.load(Ordering::Relaxed),
            checkpoints: self.inner.checkpoints.load(Ordering::Relaxed),
            checkpoint_nanos: self.inner.checkpoint_nanos.load(Ordering::Relaxed),
            crashes: self.inner.crashes.load(Ordering::Relaxed),
            recoveries: self.inner.recoveries.load(Ordering::Relaxed),
            shard_readings: self
                .inner
                .shard_readings
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            epochs_flushed: lat.len() as u64,
            flush_latency_mean_ms: mean_ms,
            flush_latency_max_ms: max_ms,
            queue_sends: queue.sends(),
            queue_blocked: queue.blocked(),
        }
    }
}

/// Times a code section by the calling thread's on-CPU nanoseconds
/// (`/proc/thread-self/schedstat`, scheduler accounting), so a
/// checkpoint preempted on a small machine is not billed for the other
/// threads that ran in between — wall clock would be, inflating the
/// measured cost past 100% of process CPU under oversubscription. Falls
/// back to wall clock where the kernel does not export schedstats.
#[derive(Debug)]
pub(crate) struct CpuTimer {
    cpu_start: Option<u64>,
    wall_start: Instant,
}

impl CpuTimer {
    pub(crate) fn start() -> CpuTimer {
        CpuTimer {
            cpu_start: thread_cpu_nanos(),
            wall_start: Instant::now(),
        }
    }

    pub(crate) fn elapsed_nanos(&self) -> u64 {
        match (self.cpu_start, thread_cpu_nanos()) {
            (Some(start), Some(end)) if end >= start => end - start,
            _ => self.wall_start.elapsed().as_nanos() as u64,
        }
    }
}

/// Cumulative on-CPU time of the calling thread, in nanoseconds.
fn thread_cpu_nanos() -> Option<u64> {
    std::fs::read_to_string("/proc/thread-self/schedstat")
        .ok()
        .and_then(|s| s.split_whitespace().next().and_then(|f| f.parse().ok()))
}

/// Point-in-time copy of the gateway counters.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewaySnapshot {
    /// Connections that completed the handshake.
    pub connections: u64,
    /// Frames received (including corrupt ones).
    pub frames: u64,
    /// Frames dropped at the edge for failing checksum/decoding.
    pub corrupt_frames: u64,
    /// Readings decoded and routed.
    pub readings: u64,
    /// Readings naming a receptor outside every registered group.
    pub unroutable: u64,
    /// Connections that died with a transport error.
    pub io_errors: u64,
    /// Records (readings + flush markers) appended to the WAL.
    pub wal_records: u64,
    /// Checkpoint snapshots written across all shards.
    pub checkpoints: u64,
    /// Total time spent inside the checkpoint path, nanoseconds.
    pub checkpoint_nanos: u64,
    /// Injected shard-worker crashes.
    pub crashes: u64,
    /// Completed recoveries (startup recovery on a durable gateway
    /// counts once per live shard).
    pub recoveries: u64,
    /// Readings enqueued per shard (a fan-out reading counts on each).
    pub shard_readings: Vec<u64>,
    /// Epochs fully stepped by every shard.
    pub epochs_flushed: u64,
    /// Mean flush broadcast → last shard done, milliseconds.
    pub flush_latency_mean_ms: f64,
    /// Worst-case flush latency, milliseconds.
    pub flush_latency_max_ms: f64,
    /// Total shard-queue sends.
    pub queue_sends: u64,
    /// Shard-queue sends that found the queue full (backpressure).
    pub queue_blocked: u64,
}

impl GatewaySnapshot {
    /// Fraction of shard-queue sends that hit backpressure.
    pub fn blocked_fraction(&self) -> f64 {
        if self.queue_sends == 0 {
            0.0
        } else {
            self.queue_blocked as f64 / self.queue_sends as f64
        }
    }

    /// Render the snapshot as an `esp-metrics` report (one scalar per
    /// counter, one per-shard scalar for routing skew).
    pub fn report(&self, title: impl Into<String>) -> Report {
        let mut r = Report::new(title);
        r.scalar("connections", self.connections as f64)
            .scalar("frames", self.frames as f64)
            .scalar("corrupt_frames", self.corrupt_frames as f64)
            .scalar("readings", self.readings as f64)
            .scalar("unroutable", self.unroutable as f64)
            .scalar("io_errors", self.io_errors as f64)
            .scalar("wal_records", self.wal_records as f64)
            .scalar("checkpoints", self.checkpoints as f64)
            .scalar("checkpoint_ms", self.checkpoint_nanos as f64 / 1e6)
            .scalar("crashes", self.crashes as f64)
            .scalar("recoveries", self.recoveries as f64)
            .scalar("epochs_flushed", self.epochs_flushed as f64)
            .scalar("flush_latency_mean_ms", self.flush_latency_mean_ms)
            .scalar("flush_latency_max_ms", self.flush_latency_max_ms)
            .scalar("queue_sends", self.queue_sends as f64)
            .scalar("queue_blocked", self.queue_blocked as f64)
            .scalar("queue_blocked_fraction", self.blocked_fraction());
        for (i, n) in self.shard_readings.iter().enumerate() {
            r.scalar(format!("shard{i}_readings"), *n as f64);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = GatewayStats::new(2);
        s.note_connection();
        s.note_frame();
        s.note_frame();
        s.note_corrupt();
        s.note_reading(500, &[1]);
        s.note_unroutable();
        let q = QueueStats::new();
        q.record_send();
        let snap = s.snapshot(&q);
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.frames, 2);
        assert_eq!(snap.corrupt_frames, 1);
        assert_eq!(snap.readings, 1);
        assert_eq!(snap.unroutable, 1);
        assert_eq!(snap.shard_readings, vec![0, 1]);
        assert_eq!(s.max_ts_ms(), 500);
        assert_eq!(snap.queue_sends, 1);
    }

    #[test]
    fn durability_counters_accumulate_and_seed() {
        let s = GatewayStats::new(1);
        s.note_wal_record();
        s.note_wal_record();
        s.note_checkpoint();
        s.note_crash();
        s.note_recovery();
        s.seed_max_ts(900);
        s.note_reading(500, &[0]); // later seed must not regress max_ts
        let snap = s.snapshot(&QueueStats::new());
        assert_eq!(snap.wal_records, 2);
        assert_eq!(snap.checkpoints, 1);
        assert_eq!(snap.crashes, 1);
        assert_eq!(snap.recoveries, 1);
        assert_eq!(s.max_ts_ms(), 900);
        let r = snap.report("gw");
        assert_eq!(r.get_scalar("wal_records"), Some(2.0));
        assert_eq!(r.get_scalar("recoveries"), Some(1.0));
    }

    #[test]
    fn flush_latency_closes_when_all_shards_report() {
        let s = GatewayStats::new(2);
        s.note_flush_issued(100);
        s.note_flush_done(100);
        let q = QueueStats::new();
        assert_eq!(s.snapshot(&q).epochs_flushed, 0, "one shard still pending");
        s.note_flush_done(100);
        let snap = s.snapshot(&q);
        assert_eq!(snap.epochs_flushed, 1);
        assert!(snap.flush_latency_max_ms >= snap.flush_latency_mean_ms);
    }

    #[test]
    fn report_carries_all_scalars() {
        let s = GatewayStats::new(1);
        s.note_reading(10, &[0]);
        let r = s.snapshot(&QueueStats::new()).report("gw");
        assert_eq!(r.get_scalar("readings"), Some(1.0));
        assert_eq!(r.get_scalar("shard0_readings"), Some(1.0));
        assert_eq!(r.get_scalar("queue_blocked_fraction"), Some(0.0));
    }
}
