//! Gateway counters: per-connection ingest totals, per-shard routing
//! totals, and epoch flush latency (coordinator issues a flush → the last
//! shard finishes stepping it).
//!
//! Every counter lives in an [`esp_obs::Registry`] owned by the gateway
//! (one registry per gateway, so tests running many gateways in one
//! process stay isolated); [`GatewayStats`] is a thin typed view over the
//! registered handles, and [`GatewaySnapshot`] reads back exactly the
//! same fields it always did. The registry is what the `STATS` wire
//! frame scrapes, merged with the process-global registry (query-engine
//! and window-path counters) into one exposition document.
//!
//! Shard-queue backpressure is tracked through the shared
//! [`esp_stream::QueueStats`] the gateway reuses from the threaded
//! runner, registered in the same registry via
//! [`QueueStats::registered`](esp_stream::QueueStats::registered).
//!
//! Ordering audit: every atomic here is `Relaxed` (see the `esp_obs`
//! crate docs for the blanket audit). All counters except `max_ts_ms`
//! are monitoring-only — no control decision reads them, no data is
//! published alongside an increment, so RMW atomicity is the only
//! property needed. `max_ts_ms` *is* read for control (the coordinator's
//! flush bound) — see [`GatewayStats::max_ts_ms`] for why `Relaxed` is
//! still correct there.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use esp_metrics::Report;
use esp_obs::{Counter, Gauge, Histogram, Registry};
use esp_stream::QueueStats;

pub(crate) use esp_obs::CpuTimer;

#[derive(Debug)]
struct Inner {
    registry: Registry,
    connections: Counter,
    frames: Counter,
    stats_requests: Counter,
    corrupt_frames: Counter,
    readings: Counter,
    unroutable: Counter,
    io_errors: Counter,
    max_ts_ms: Gauge,
    wal_records: Counter,
    checkpoints: Counter,
    checkpoint_nanos: Counter,
    crashes: Counter,
    recoveries: Counter,
    shard_readings: Vec<Counter>,
    /// Closed flush measurements, µs. Exact sum and count (the mean the
    /// snapshot reports is exact; only the quantiles are bucketed).
    flush_latency_us: Histogram,
    /// Worst flush ever, µs — `fetch_max` gauge, exact.
    flush_latency_max_us: Gauge,
    /// Coordinator sent a flush → shard worker dequeued it.
    queue_wait_nanos: Histogram,
    /// Time inside `Wal::append_flush` (the durability fsync point).
    wal_flush_nanos: Histogram,
    flush: Mutex<FlushTracker>,
}

#[derive(Debug, Default)]
struct FlushTracker {
    n_shards: usize,
    /// Epochs issued but not yet stepped by every shard.
    pending: HashMap<u64, (Instant, usize)>,
}

/// Cheap-to-clone handle over the gateway's shared counters.
#[derive(Debug, Clone)]
pub struct GatewayStats {
    inner: Arc<Inner>,
}

impl Default for GatewayStats {
    fn default() -> GatewayStats {
        GatewayStats::new(0)
    }
}

impl GatewayStats {
    /// Counters at zero, registered in a fresh per-gateway registry,
    /// sized for `n_shards` workers.
    pub fn new(n_shards: usize) -> GatewayStats {
        let r = Registry::new();
        let c = |name: &str| r.counter(name, &[]);
        let inner = Inner {
            connections: c("esp_gateway_connections_total"),
            frames: c("esp_gateway_frames_total"),
            stats_requests: c("esp_gateway_stats_requests_total"),
            corrupt_frames: c("esp_gateway_corrupt_frames_total"),
            readings: c("esp_gateway_readings_total"),
            unroutable: c("esp_gateway_unroutable_total"),
            io_errors: c("esp_gateway_io_errors_total"),
            max_ts_ms: r.gauge("esp_gateway_max_ts_ms", &[]),
            wal_records: c("esp_gateway_wal_records_total"),
            checkpoints: c("esp_gateway_checkpoints_total"),
            checkpoint_nanos: c("esp_gateway_checkpoint_nanos_total"),
            crashes: c("esp_gateway_crashes_total"),
            recoveries: c("esp_gateway_recoveries_total"),
            shard_readings: (0..n_shards)
                .map(|s| {
                    r.counter(
                        "esp_gateway_shard_readings_total",
                        &[("shard", &s.to_string())],
                    )
                })
                .collect(),
            flush_latency_us: r.histogram("esp_gateway_flush_latency_us", &[]),
            flush_latency_max_us: r.gauge("esp_gateway_flush_latency_max_us", &[]),
            queue_wait_nanos: r.histogram("esp_gateway_queue_wait_nanos", &[]),
            wal_flush_nanos: r.histogram("esp_gateway_wal_flush_nanos", &[]),
            flush: Mutex::new(FlushTracker {
                n_shards,
                ..FlushTracker::default()
            }),
            registry: r,
        };
        GatewayStats {
            inner: Arc::new(inner),
        }
    }

    /// The registry behind every counter. Shard workers register their
    /// per-stage spans here; the `STATS` frame renders it.
    pub fn registry(&self) -> Registry {
        self.inner.registry.clone()
    }

    /// Render this gateway's registry, merged with the process-global
    /// registry (query/window counters), as Prometheus text exposition.
    pub fn render_text(&self) -> String {
        self.inner.registry.render_text_with(&[esp_obs::global()])
    }

    /// [`GatewayStats::render_text`], but as one JSON document.
    pub fn render_json(&self) -> String {
        self.inner.registry.render_json_with(&[esp_obs::global()])
    }

    /// A connection completed its handshake.
    pub fn note_connection(&self) {
        self.inner.connections.inc();
    }

    /// A data frame arrived (whether or not it decodes). `STATS` scrape
    /// requests are *not* counted here — see
    /// [`GatewayStats::note_stats_request`] — so the frame-conservation
    /// law (`frames == readings + corrupt + unroutable`) is unaffected
    /// by how often the gateway is scraped.
    pub fn note_frame(&self) {
        self.inner.frames.inc();
    }

    /// A `STATS` scrape request arrived on an ingest connection.
    pub fn note_stats_request(&self) {
        self.inner.stats_requests.inc();
    }

    /// A frame failed checksum/decoding and was dropped at the edge.
    pub fn note_corrupt(&self) {
        self.inner.corrupt_frames.inc();
    }

    /// A decoded reading was accepted and routed; `shards` are its
    /// destinations.
    pub fn note_reading(&self, ts_ms: u64, shards: &[usize]) {
        self.inner.readings.inc();
        self.inner.max_ts_ms.fetch_max(ts_ms);
        for &s in shards {
            if let Some(c) = self.inner.shard_readings.get(s) {
                c.inc();
            }
        }
    }

    /// A decoded reading named a receptor outside every registered group.
    pub fn note_unroutable(&self) {
        self.inner.unroutable.inc();
    }

    /// A connection died with a transport error (counted, not fatal).
    pub fn note_io_error(&self) {
        self.inner.io_errors.inc();
    }

    /// A record (reading or flush marker) was appended to the WAL.
    pub fn note_wal_record(&self) {
        self.inner.wal_records.inc();
    }

    /// A shard wrote a checkpoint snapshot.
    pub fn note_checkpoint(&self) {
        self.inner.checkpoints.inc();
    }

    /// Time a shard spent inside the checkpoint path (serialize, write,
    /// retain), as measured by [`CpuTimer`]. Summed across shards, this
    /// is the direct cost of the checkpoint protocol — the number the
    /// durability bench gates on, because on small machines it is far
    /// more stable than comparing two whole runs.
    pub fn note_checkpoint_time(&self, nanos: u64) {
        self.inner.checkpoint_nanos.add(nanos);
    }

    /// Time the coordinator's flush broadcast spent inside the WAL
    /// append (the fsync point under `fsync_on_flush`).
    pub fn note_wal_flush(&self, nanos: u64) {
        self.inner.wal_flush_nanos.record(nanos);
    }

    /// A flush message sat `nanos` in a shard queue before the worker
    /// dequeued it (coordinator send → worker receive).
    pub fn note_queue_wait(&self, nanos: u64) {
        self.inner.queue_wait_nanos.record(nanos);
    }

    /// A shard worker crashed (fault injection).
    pub fn note_crash(&self) {
        self.inner.crashes.inc();
    }

    /// A shard worker completed snapshot + WAL-replay recovery (startup
    /// recovery on a durable gateway counts too).
    pub fn note_recovery(&self) {
        self.inner.recoveries.inc();
    }

    /// Seed the max-timestamp watermark from recovered durable state, so
    /// a restarted coordinator's drain sweep re-covers every logged
    /// reading even before any new connection arrives.
    pub fn seed_max_ts(&self, ts_ms: u64) {
        self.inner.max_ts_ms.fetch_max(ts_ms);
    }

    /// Largest reading timestamp accepted so far (ms).
    ///
    /// The coordinator reads this as its flush bound: epoch `e` is only
    /// flushed once some reading with `ts > e` exists, so an all-idle
    /// gateway never fabricates empty epochs. `Relaxed` is sufficient for
    /// that control use: `fetch_max` is an atomic RMW, so the value is
    /// monotone regardless of ordering, and a stale (smaller) read can
    /// only *defer* a flush to the next poll — never issue one early.
    /// The safety property (a flush never overtakes the readings it
    /// certifies) does not rest on this counter at all: it comes from
    /// readings and flushes travelling the same FIFO shard channel,
    /// whose send/recv pairs provide the happens-before edges (see
    /// [`crate::watermark`] for the full ordering contract, and
    /// [`crate::model`] for the checked protocol model).
    pub fn max_ts_ms(&self) -> u64 {
        self.inner.max_ts_ms.get()
    }

    /// Coordinator is about to broadcast a flush for `epoch_ms`.
    pub fn note_flush_issued(&self, epoch_ms: u64) {
        let mut f = self.inner.flush.lock();
        let n = f.n_shards;
        f.pending.insert(epoch_ms, (Instant::now(), n));
    }

    /// One shard finished stepping `epoch_ms`; the last one closes the
    /// latency measurement.
    pub fn note_flush_done(&self, epoch_ms: u64) {
        let mut f = self.inner.flush.lock();
        if let Some((issued, remaining)) = f.pending.get_mut(&epoch_ms) {
            *remaining -= 1;
            if *remaining == 0 {
                let us = issued.elapsed().as_micros() as u64;
                f.pending.remove(&epoch_ms);
                drop(f);
                self.inner.flush_latency_us.record(us);
                self.inner.flush_latency_max_us.fetch_max(us);
            }
        }
    }

    /// Snapshot every counter. `queue` is the shard-queue backpressure
    /// tracker the snapshot folds in.
    pub fn snapshot(&self, queue: &QueueStats) -> GatewaySnapshot {
        let lat = self.inner.flush_latency_us.snapshot();
        let (mean_ms, max_ms) = if lat.count() == 0 {
            (0.0, 0.0)
        } else {
            // The histogram keeps an exact sum, so the mean is exact —
            // identical to the Vec-of-latencies the tracker used to keep.
            let max_us = self.inner.flush_latency_max_us.get();
            (
                lat.sum() as f64 / lat.count() as f64 / 1000.0,
                max_us as f64 / 1000.0,
            )
        };
        GatewaySnapshot {
            connections: self.inner.connections.get(),
            frames: self.inner.frames.get(),
            corrupt_frames: self.inner.corrupt_frames.get(),
            readings: self.inner.readings.get(),
            unroutable: self.inner.unroutable.get(),
            io_errors: self.inner.io_errors.get(),
            wal_records: self.inner.wal_records.get(),
            checkpoints: self.inner.checkpoints.get(),
            checkpoint_nanos: self.inner.checkpoint_nanos.get(),
            crashes: self.inner.crashes.get(),
            recoveries: self.inner.recoveries.get(),
            shard_readings: self.inner.shard_readings.iter().map(Counter::get).collect(),
            epochs_flushed: lat.count(),
            flush_latency_mean_ms: mean_ms,
            flush_latency_max_ms: max_ms,
            queue_sends: queue.sends(),
            queue_blocked: queue.blocked(),
        }
    }
}

/// Point-in-time copy of the gateway counters.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewaySnapshot {
    /// Connections that completed the handshake.
    pub connections: u64,
    /// Frames received (including corrupt ones).
    pub frames: u64,
    /// Frames dropped at the edge for failing checksum/decoding.
    pub corrupt_frames: u64,
    /// Readings decoded and routed.
    pub readings: u64,
    /// Readings naming a receptor outside every registered group.
    pub unroutable: u64,
    /// Connections that died with a transport error.
    pub io_errors: u64,
    /// Records (readings + flush markers) appended to the WAL.
    pub wal_records: u64,
    /// Checkpoint snapshots written across all shards.
    pub checkpoints: u64,
    /// Total time spent inside the checkpoint path, nanoseconds.
    pub checkpoint_nanos: u64,
    /// Injected shard-worker crashes.
    pub crashes: u64,
    /// Completed recoveries (startup recovery on a durable gateway
    /// counts once per live shard).
    pub recoveries: u64,
    /// Readings enqueued per shard (a fan-out reading counts on each).
    pub shard_readings: Vec<u64>,
    /// Epochs fully stepped by every shard.
    pub epochs_flushed: u64,
    /// Mean flush broadcast → last shard done, milliseconds.
    pub flush_latency_mean_ms: f64,
    /// Worst-case flush latency, milliseconds.
    pub flush_latency_max_ms: f64,
    /// Total shard-queue sends.
    pub queue_sends: u64,
    /// Shard-queue sends that found the queue full (backpressure).
    pub queue_blocked: u64,
}

impl GatewaySnapshot {
    /// Fraction of shard-queue sends that hit backpressure.
    pub fn blocked_fraction(&self) -> f64 {
        if self.queue_sends == 0 {
            0.0
        } else {
            self.queue_blocked as f64 / self.queue_sends as f64
        }
    }

    /// Render the snapshot as an `esp-metrics` report (one scalar per
    /// counter, one per-shard scalar for routing skew).
    pub fn report(&self, title: impl Into<String>) -> Report {
        let mut r = Report::new(title);
        r.scalar("connections", self.connections as f64)
            .scalar("frames", self.frames as f64)
            .scalar("corrupt_frames", self.corrupt_frames as f64)
            .scalar("readings", self.readings as f64)
            .scalar("unroutable", self.unroutable as f64)
            .scalar("io_errors", self.io_errors as f64)
            .scalar("wal_records", self.wal_records as f64)
            .scalar("checkpoints", self.checkpoints as f64)
            .scalar("checkpoint_ms", self.checkpoint_nanos as f64 / 1e6)
            .scalar("crashes", self.crashes as f64)
            .scalar("recoveries", self.recoveries as f64)
            .scalar("epochs_flushed", self.epochs_flushed as f64)
            .scalar("flush_latency_mean_ms", self.flush_latency_mean_ms)
            .scalar("flush_latency_max_ms", self.flush_latency_max_ms)
            .scalar("queue_sends", self.queue_sends as f64)
            .scalar("queue_blocked", self.queue_blocked as f64)
            .scalar("queue_blocked_fraction", self.blocked_fraction());
        for (i, n) in self.shard_readings.iter().enumerate() {
            r.scalar(format!("shard{i}_readings"), *n as f64);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = GatewayStats::new(2);
        s.note_connection();
        s.note_frame();
        s.note_frame();
        s.note_corrupt();
        s.note_reading(500, &[1]);
        s.note_unroutable();
        let q = QueueStats::new();
        q.record_send();
        let snap = s.snapshot(&q);
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.frames, 2);
        assert_eq!(snap.corrupt_frames, 1);
        assert_eq!(snap.readings, 1);
        assert_eq!(snap.unroutable, 1);
        assert_eq!(snap.shard_readings, vec![0, 1]);
        assert_eq!(s.max_ts_ms(), 500);
        assert_eq!(snap.queue_sends, 1);
    }

    #[test]
    fn durability_counters_accumulate_and_seed() {
        let s = GatewayStats::new(1);
        s.note_wal_record();
        s.note_wal_record();
        s.note_checkpoint();
        s.note_crash();
        s.note_recovery();
        s.seed_max_ts(900);
        s.note_reading(500, &[0]); // later seed must not regress max_ts
        let snap = s.snapshot(&QueueStats::new());
        assert_eq!(snap.wal_records, 2);
        assert_eq!(snap.checkpoints, 1);
        assert_eq!(snap.crashes, 1);
        assert_eq!(snap.recoveries, 1);
        assert_eq!(s.max_ts_ms(), 900);
        let r = snap.report("gw");
        assert_eq!(r.get_scalar("wal_records"), Some(2.0));
        assert_eq!(r.get_scalar("recoveries"), Some(1.0));
    }

    #[test]
    fn flush_latency_closes_when_all_shards_report() {
        let s = GatewayStats::new(2);
        s.note_flush_issued(100);
        s.note_flush_done(100);
        let q = QueueStats::new();
        assert_eq!(s.snapshot(&q).epochs_flushed, 0, "one shard still pending");
        s.note_flush_done(100);
        let snap = s.snapshot(&q);
        assert_eq!(snap.epochs_flushed, 1);
        assert!(snap.flush_latency_max_ms >= snap.flush_latency_mean_ms);
    }

    #[test]
    fn report_carries_all_scalars() {
        let s = GatewayStats::new(1);
        s.note_reading(10, &[0]);
        let r = s.snapshot(&QueueStats::new()).report("gw");
        assert_eq!(r.get_scalar("readings"), Some(1.0));
        assert_eq!(r.get_scalar("shard0_readings"), Some(1.0));
        assert_eq!(r.get_scalar("queue_blocked_fraction"), Some(0.0));
    }

    #[test]
    fn snapshot_fields_are_views_over_the_registry() {
        // Satellite: the legacy snapshot and the registry must be two
        // reads of the same counters, not parallel bookkeeping.
        let s = GatewayStats::new(2);
        s.note_frame();
        s.note_reading(42, &[0, 1]);
        let r = s.registry();
        let snap = s.snapshot(&QueueStats::new());
        assert_eq!(
            r.counter_value("esp_gateway_frames_total", &[]),
            Some(snap.frames)
        );
        assert_eq!(
            r.counter_value("esp_gateway_readings_total", &[]),
            Some(snap.readings)
        );
        assert_eq!(
            r.gauge_value("esp_gateway_max_ts_ms", &[]),
            Some(s.max_ts_ms())
        );
        for (i, n) in snap.shard_readings.iter().enumerate() {
            assert_eq!(
                r.counter_value(
                    "esp_gateway_shard_readings_total",
                    &[("shard", &i.to_string())]
                ),
                Some(*n)
            );
        }
    }

    #[test]
    fn stats_requests_do_not_perturb_frames() {
        let s = GatewayStats::new(1);
        s.note_frame();
        s.note_stats_request();
        s.note_stats_request();
        let snap = s.snapshot(&QueueStats::new());
        assert_eq!(snap.frames, 1, "scrapes are not data frames");
        assert_eq!(
            s.registry()
                .counter_value("esp_gateway_stats_requests_total", &[]),
            Some(2)
        );
    }

    #[test]
    fn flush_mean_is_exact_from_histogram_sum() {
        let s = GatewayStats::new(1);
        for epoch in [100, 200, 300] {
            s.note_flush_issued(epoch);
            s.note_flush_done(epoch);
        }
        let snap = s.snapshot(&QueueStats::new());
        assert_eq!(snap.epochs_flushed, 3);
        let hist = s
            .registry()
            .histogram_snapshot("esp_gateway_flush_latency_us", &[])
            .expect("flush histogram registered");
        let mean_ms = hist.sum() as f64 / hist.count() as f64 / 1000.0;
        assert!((snap.flush_latency_mean_ms - mean_ms).abs() < 1e-12);
        let max_us = s
            .registry()
            .gauge_value("esp_gateway_flush_latency_max_us", &[])
            .expect("max gauge registered");
        assert!((snap.flush_latency_max_ms - max_us as f64 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn render_merges_gateway_and_global_registries() {
        let s = GatewayStats::new(1);
        s.note_frame();
        // Touch a process-global counter so the merge has something from
        // the other side.
        esp_obs::global()
            .counter("esp_test_global_total", &[])
            .inc();
        let text = s.render_text();
        assert!(text.contains("esp_gateway_frames_total 1"));
        assert!(text.contains("esp_test_global_total"));
        let json = s.render_json();
        assert!(json.contains("\"name\":\"esp_gateway_frames_total\""));
    }
}
