//! `esp-stats`: scrape a running gateway's metrics over the wire
//! protocol's `STATS` frame and print them.
//!
//! ```text
//! esp-stats <addr>          Prometheus text exposition to stdout
//! esp-stats <addr> --json   the same metrics as one JSON document
//! ```
//!
//! The scrape rides an ordinary gateway connection, and like any open
//! connection it holds the global watermark back until it closes — so
//! this tool connects, scrapes once, and disconnects immediately rather
//! than staying attached between scrapes.

use std::io::Write;
use std::process::ExitCode;

use esp_gateway::GatewayClient;
use esp_types::TimeDelta;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let addr = match args.iter().find(|a| !a.starts_with("--")) {
        Some(a) => a.clone(),
        None => {
            eprintln!("usage: esp-stats <addr> [--json]");
            return ExitCode::from(2);
        }
    };
    // A scrape-only connection never sends readings, so its lateness
    // promise is irrelevant; zero keeps it from loosening the gateway's
    // watermark either way.
    let mut client = match GatewayClient::connect(&addr, TimeDelta::ZERO) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("esp-stats: connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = if json {
        client.scrape_json()
    } else {
        client.scrape()
    };
    match doc {
        Ok(mut body) => {
            if !body.ends_with('\n') {
                body.push('\n');
            }
            // Write explicitly rather than via `print!`: a downstream
            // `head` closing the pipe is a normal way to consume a
            // scrape, and must not panic on EPIPE.
            match std::io::stdout().lock().write_all(body.as_bytes()) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("esp-stats: write: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("esp-stats: scrape: {e}");
            ExitCode::FAILURE
        }
    }
}
