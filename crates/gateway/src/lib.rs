//! # esp-gateway
//!
//! Networked ingestion for ESP pipelines: a TCP **receptor gateway** that
//! accepts many concurrent receptor connections speaking the simulated
//! radio wire format ([`esp_receptors::wire`] frames, length-delimited by
//! [`esp_receptors::framing`]), verifies checksums at the edge (corrupt
//! frames are counted and dropped — the paper's out-of-the-box Point
//! functionality), and shards decoded readings across *N* worker
//! pipelines, one full ESP cleaning cascade per shard.
//!
//! ## Sharding
//!
//! The unit of placement is the **spatial granule**. Every cleaning stage
//! that looks across receptors (Smooth's reinforcement counts, Merge's
//! outlier test, Arbitrate's de-duplication) is scoped to a proximity
//! group, and every proximity group names exactly one granule — so hashing
//! the granule name ([`shard::shard_of_granule`], FNV-1a) keeps each group
//! intact on a single worker while spreading granules across workers. A
//! receptor belonging to groups on several shards fans out to each.
//!
//! ## Epoch punctuation and watermarks
//!
//! Workers must flush epochs deterministically even though readings arrive
//! over asynchronous sockets. Each connection declares a **bounded
//! lateness** in its handshake: a promise that after sending a reading
//! stamped `t`, it will never send one stamped earlier than `t − lateness`.
//! The gateway tracks a per-connection watermark (`max ts seen − lateness`;
//! closed connections report `∞`) and a coordinator flushes epoch `e` to
//! every shard once the *global* watermark (minimum over connections)
//! passes `e` — see [`watermark`]. Because a reader enqueues a reading into
//! the shard queues before advancing its watermark, a flush message can
//! never overtake the readings it covers.
//!
//! ## Backpressure
//!
//! Shard queues are bounded crossbeam channels (capacity
//! [`ThreadedRunner::DEFAULT_EDGE_CAPACITY`](esp_stream::ThreadedRunner)
//! by default, configurable like the threaded runner's edges). When a
//! worker falls behind, reader threads block on the full queue, TCP flow
//! control propagates to the sender, and the stall is recorded in a shared
//! [`esp_stream::QueueStats`].
//!
//! ```no_run
//! use esp_core::Pipeline;
//! use esp_gateway::{Gateway, GatewayConfig, GatewayGroup};
//! use esp_receptors::wire::Reading;
//! use esp_types::{ReceptorId, ReceptorType, TimeDelta, Ts};
//!
//! let config = GatewayConfig::new(vec![GatewayGroup {
//!     receptor_type: ReceptorType::Rfid,
//!     granule: "shelf0".into(),
//!     members: vec![ReceptorId(0)],
//! }]);
//! let gateway = Gateway::spawn(config, |_shard| Pipeline::raw()).unwrap();
//! let mut client =
//!     esp_gateway::GatewayClient::connect(gateway.local_addr(), TimeDelta::ZERO).unwrap();
//! client.send(&Reading::Tag { receptor: ReceptorId(0), ts: Ts::ZERO, tag_id: "t1".into() }).unwrap();
//! client.finish().unwrap();
//! let output = gateway.finish().unwrap();
//! assert_eq!(output.stats.readings, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Library code must surface failures as typed errors, never panic while
// serving connections; tests are free to unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod client;
pub mod convert;
mod durability;
pub mod model;
mod server;
pub mod shard;
pub mod stats;
pub mod watermark;
mod worker;

pub use client::GatewayClient;
pub use convert::ReadingSchemas;
// Re-exported so gateway users can enable durability without naming the
// esp-durability crate themselves.
pub use esp_durability::DurabilityConfig;
pub use server::{canonical_sort, EpochTrace, Gateway, GatewayConfig, GatewayGroup, GatewayOutput};
pub use shard::{shard_of_granule, ShardRouter};
pub use stats::{GatewaySnapshot, GatewayStats};
