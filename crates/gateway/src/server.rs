//! The TCP gateway: accept loop, per-connection readers, the epoch
//! coordinator, and graceful shutdown.
//!
//! Thread layout (all plain `std::net` + crossbeam channels — no async
//! runtime):
//!
//! ```text
//! accept thread ──spawns──> reader thread per connection
//!                              │ decode frames, drop corrupt,
//!                              │ route by granule hash
//!                              ▼
//!                    bounded shard queues  <── Flush(e) ── coordinator
//!                              │                            (watermark)
//!                              ▼
//!                    worker thread per shard (EspProcessor cascade)
//! ```

use std::collections::{BTreeMap, HashMap};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender, TrySendError};
use parking_lot::Mutex;

use esp_core::{Pipeline, Scope};
use esp_durability::{DurabilityConfig, SnapshotMeta, SnapshotStore, WalWriter};
use esp_receptors::framing::{FrameReader, FrameWriter, MAX_FRAME_LEN};
use esp_receptors::wire;
use esp_stream::{QueueStats, ThreadedRunner};
use esp_types::{Batch, Diagnostic, EspError, ReceptorId, ReceptorType, Result, TimeDelta, Ts};

use crate::durability::DurabilityHooks;
use crate::shard::{shard_of_granule, ShardRouter};
use crate::stats::{GatewaySnapshot, GatewayStats};
use crate::watermark::WatermarkClock;
use crate::worker::{spawn_worker, ShardMsg};

/// Handshake magic: `"ESPG"` big-endian.
pub(crate) const HELLO_MAGIC: u32 = 0x4553_5047;
/// Wire-protocol version carried in the hello.
pub(crate) const PROTOCOL_VERSION: u16 = 1;
/// Server's accept byte, sent after a valid hello.
pub(crate) const ACK_OK: u8 = 0x01;

/// Frame payload requesting a Prometheus-text metrics scrape on an
/// ingest connection. Never a valid `wire::encode` frame (wrong magic),
/// so a data frame can never be mistaken for a scrape request.
pub(crate) const STATS_TEXT_REQUEST: &[u8] = b"ESPSTATS";
/// Frame payload requesting the same scrape as one JSON document.
pub(crate) const STATS_JSON_REQUEST: &[u8] = b"ESPSTATJ";
/// Response-frame marker: more chunks of this document follow.
pub(crate) const STATS_MORE: u8 = 0x00;
/// Response-frame marker: this chunk completes the document.
pub(crate) const STATS_FINAL: u8 = 0x01;
/// Max document bytes per response frame (1 marker byte + chunk must
/// stay under [`MAX_FRAME_LEN`]; headroom kept for round numbers).
const STATS_CHUNK: usize = MAX_FRAME_LEN - 4096;

/// One proximity group as the gateway needs it: type, granule, members.
/// (Mirrors `esp_receptors::GroupSpec` plus the receptor type that
/// `ProximityGroups::add_group` requires.)
#[derive(Debug, Clone)]
pub struct GatewayGroup {
    /// Device type shared by the group's members.
    pub receptor_type: ReceptorType,
    /// Spatial granule name — the shard-placement key.
    pub granule: String,
    /// Member devices.
    pub members: Vec<ReceptorId>,
}

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Number of worker pipelines to shard granules across.
    pub n_shards: usize,
    /// Capacity of each bounded shard queue — the same knob as
    /// [`ThreadedRunner::edge_capacity`]; a full queue blocks the reader
    /// and lets TCP flow control push back on the sender.
    pub edge_capacity: usize,
    /// First epoch boundary.
    pub start: Ts,
    /// Epoch spacing.
    pub period: TimeDelta,
    /// Don't flush any epoch until this many connections have completed
    /// their handshake (cumulative, closed connections count). Lets a
    /// deployment with a known receptor fleet hold punctuation until
    /// everyone is on the air.
    pub min_connections: usize,
    /// Upper bound accepted for the bounded-lateness promise a client
    /// declares in its handshake; connections declaring more are refused.
    /// Also the value static validation compares against downstream
    /// window extents (`E0501`). `None` accepts any declared lateness.
    pub max_lateness: Option<TimeDelta>,
    /// The proximity groups (and through them, the routable receptors).
    pub groups: Vec<GatewayGroup>,
    /// Durability: a write-ahead reading log plus epoch-aligned
    /// checkpoints under the given directory. `None` (the default) runs
    /// the gateway as soft state, exactly as before.
    pub durability: Option<DurabilityConfig>,
}

impl GatewayConfig {
    /// Config with defaults: ephemeral localhost port, 4 shards, the
    /// threaded runner's default edge capacity, 200 ms epochs, no
    /// connection-count gating.
    pub fn new(groups: Vec<GatewayGroup>) -> GatewayConfig {
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            n_shards: 4,
            edge_capacity: ThreadedRunner::DEFAULT_EDGE_CAPACITY,
            start: Ts::ZERO,
            period: TimeDelta::from_millis(200),
            min_connections: 1,
            max_lateness: None,
            groups,
            durability: None,
        }
    }

    /// Statically validate this configuration before any socket is bound.
    ///
    /// `smooth_window` is the narrowest smoothing-window extent of the
    /// downstream cascade, when the caller knows it (the pipeline factory
    /// is opaque to the gateway, so it cannot discover this itself).
    ///
    /// Checks performed (see `esp-lint` for the full catalog):
    ///
    /// * `E0501` — `max_lateness` at or above the downstream window: a
    ///   maximally late reading postpones every flush past the entire
    ///   window that was supposed to smooth it.
    /// * `E0302` — a proximity group with no members (unroutable).
    /// * `E0303` — two groups sharing one spatial-granule name.
    /// * `E0503` — degenerate resources: zero shards, zero queue
    ///   capacity, a zero epoch period, or no groups at all.
    /// * `E0801`/`E0802`/`E0803` — durability misconfiguration, when a
    ///   durability section is present (see `esp_durability::config`).
    ///
    /// [`Gateway::spawn`] runs this (with `smooth_window = None`) plus a
    /// pipeline-scope check (`E0502`) and refuses to start when any
    /// error-severity diagnostic fires.
    pub fn validate(&self, smooth_window: Option<TimeDelta>) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        if self.n_shards == 0 {
            diags.push(Diagnostic::error(
                "E0503",
                "gateway needs at least one shard",
            ));
        }
        if self.edge_capacity == 0 {
            diags.push(Diagnostic::error(
                "E0503",
                "shard queue capacity must be positive",
            ));
        }
        if self.period == TimeDelta::ZERO {
            diags.push(Diagnostic::error("E0503", "epoch period must be positive"));
        }
        if self.groups.is_empty() {
            diags.push(
                Diagnostic::error("E0503", "gateway has no proximity groups")
                    .with_note("without groups no receptor is routable to a shard"),
            );
        }
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for (i, g) in self.groups.iter().enumerate() {
            if g.members.is_empty() {
                diags.push(
                    Diagnostic::error(
                        "E0302",
                        format!("proximity group '{}' has no members", g.granule),
                    )
                    .with_note("its shard would idle and Merge over it can never fire"),
                );
            }
            if let Some(prev) = seen.insert(g.granule.as_str(), i) {
                diags.push(Diagnostic::error(
                    "E0303",
                    format!(
                        "spatial granule '{}' is declared by two groups (#{prev} and #{i})",
                        g.granule
                    ),
                ));
            }
        }
        if let (Some(late), Some(window)) = (self.max_lateness, smooth_window) {
            if late >= window {
                diags.push(
                    Diagnostic::error(
                        "E0501",
                        format!(
                            "accepted connection lateness bound ({late}) is at least the \
                             downstream smoothing window ({window})"
                        ),
                    )
                    .with_note(
                        "the watermark holds every flush until the lateness bound passes, \
                         so each epoch would stall for longer than the window that is \
                         supposed to smooth it",
                    ),
                );
            }
        }
        if let Some(d) = &self.durability {
            diags.extend(d.validate(self.period, self.max_lateness));
        }
        esp_types::diag::sort_diagnostics(&mut diags);
        diags
    }
}

/// One pipeline's output, epoch by epoch: the flushed batch at each
/// epoch boundary, in flush order.
pub type EpochTrace = Vec<(Ts, Batch)>;

/// A running gateway. Drop order does not matter; call
/// [`Gateway::finish`] for an orderly drain.
pub struct Gateway {
    local_addr: SocketAddr,
    stop_accept: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    killed: Arc<AtomicBool>,
    accept_handle: JoinHandle<()>,
    coordinator: JoinHandle<Result<()>>,
    reader_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<Result<()>>>,
    traces: Vec<Arc<Mutex<EpochTrace>>>,
    crash_countdowns: Vec<Arc<AtomicI64>>,
    stats: GatewayStats,
    queue_stats: QueueStats,
}

/// Everything a drained gateway produced.
#[derive(Debug)]
pub struct GatewayOutput {
    /// Per-shard output traces, indexed by shard id. Shards hosting no
    /// granule have empty traces.
    pub shard_traces: Vec<EpochTrace>,
    /// Final counter snapshot.
    pub stats: GatewaySnapshot,
}

impl GatewayOutput {
    /// Union the shard traces into one per-epoch trace, canonically
    /// sorted within each epoch so it can be compared against a
    /// single-process [`EspProcessor`] run.
    pub fn merged_trace(&self) -> EpochTrace {
        let mut by_epoch: BTreeMap<u64, Batch> = BTreeMap::new();
        for trace in &self.shard_traces {
            for (ts, batch) in trace {
                by_epoch
                    .entry(ts.as_millis())
                    .or_default()
                    .extend(batch.iter().cloned());
            }
        }
        by_epoch
            .into_iter()
            .map(|(ms, mut batch)| {
                canonical_sort(&mut batch);
                (Ts::from_millis(ms), batch)
            })
            .collect()
    }

    /// Total tuples across every shard and epoch.
    pub fn total_tuples(&self) -> usize {
        self.shard_traces
            .iter()
            .flatten()
            .map(|(_, b)| b.len())
            .sum()
    }
}

/// Sort a batch into a canonical order (timestamp, then the debug
/// rendering of the values). Sharding changes only the interleaving of
/// tuples within an epoch; after this sort, a sharded epoch equals its
/// single-process counterpart.
pub fn canonical_sort(batch: &mut Batch) {
    batch.sort_by_key(|t| (t.ts(), format!("{:?}", t.values())));
}

impl Gateway {
    /// Bind, build one `EspProcessor` per non-empty shard, and start all
    /// threads. `pipeline_factory(shard)` builds each shard's cleaning
    /// cascade (pipelines are not clonable; stages carry state).
    pub fn spawn(
        config: GatewayConfig,
        mut pipeline_factory: impl FnMut(usize) -> Pipeline,
    ) -> Result<Gateway> {
        let errors: Vec<_> = config
            .validate(None)
            .into_iter()
            .filter(|d| d.is_error())
            .collect();
        if !errors.is_empty() {
            return Err(EspError::Invalid(errors));
        }

        let router = Arc::new(ShardRouter::new(&config.groups, config.n_shards));
        let live_shards = {
            let mut shards: Vec<usize> = config
                .groups
                .iter()
                .map(|g| shard_of_granule(&g.granule, config.n_shards))
                .collect();
            shards.sort_unstable();
            shards.dedup();
            shards.len()
        };
        let stats = GatewayStats::new(config.n_shards);
        let queue_stats = QueueStats::registered(&stats.registry());
        let clock = WatermarkClock::new();

        // Open durable state first: `WalWriter::open` recovers the log's
        // high-water marks, which seed the coordinator (resume at the
        // epoch after the last flushed one) and the stats max-timestamp
        // (so the drain sweep re-covers every logged reading).
        let mut coord_start = config.start;
        let mut coord_last_flushed: Option<Ts> = None;
        let durable = match &config.durability {
            Some(dc) => {
                let wal = WalWriter::open(&dc.wal_dir(), dc.segment_bytes)?;
                if let Some(last) = wal.last_flush_epoch() {
                    coord_last_flushed = Some(last);
                    coord_start = last + config.period;
                }
                if let Some(max) = wal.max_reading_ts() {
                    stats.seed_max_ts(max.as_millis());
                }
                let store = Arc::new(SnapshotStore::open(&dc.snapshot_dir())?);
                let every = (dc.checkpoint_interval.as_millis() / config.period.as_millis()).max(1);
                Some((dc.clone(), Arc::new(Mutex::new(wal)), store, every))
            }
            None => None,
        };
        let crash_countdowns: Vec<Arc<AtomicI64>> = (0..config.n_shards)
            .map(|_| Arc::new(AtomicI64::new(-1)))
            .collect();

        // Shard queues + workers.
        let mut txs: Vec<Sender<ShardMsg>> = Vec::with_capacity(config.n_shards);
        let mut workers = Vec::with_capacity(config.n_shards);
        let mut traces: Vec<Arc<Mutex<EpochTrace>>> = Vec::with_capacity(config.n_shards);
        for (shard, crash_countdown) in crash_countdowns.iter().enumerate() {
            let (tx, rx) = bounded(config.edge_capacity);
            txs.push(tx);
            let trace: Arc<Mutex<EpochTrace>> = Arc::new(Mutex::new(Vec::new()));
            traces.push(Arc::clone(&trace));
            let shard_groups: Vec<GatewayGroup> = config
                .groups
                .iter()
                .filter(|g| shard_of_granule(&g.granule, config.n_shards) == shard)
                .cloned()
                .collect();
            if shard_groups.is_empty() {
                // No granule hashed here: a sink that still acknowledges
                // punctuation (exact flush-latency accounting) and, when
                // durable, records empty checkpoints so WAL truncation is
                // not held hostage by an idle shard.
                let stats = stats.clone();
                let sink_durability = durable
                    .as_ref()
                    .map(|(dc, _, store, every)| (Arc::clone(store), *every, dc.max_snapshots));
                workers.push(
                    thread::Builder::new()
                        .name(format!("esp-gateway-shard-{shard}"))
                        .spawn(move || {
                            let mut epochs = 0u64;
                            loop {
                                match rx.recv() {
                                    Ok(ShardMsg::Flush { seq, epoch, sent }) => {
                                        if esp_obs::enabled() {
                                            stats.note_queue_wait(sent.elapsed().as_nanos() as u64);
                                        }
                                        stats.note_flush_done(epoch.as_millis());
                                        if let Some((store, every, keep)) = &sink_durability {
                                            epochs += 1;
                                            if epochs >= *every {
                                                let t0 = crate::stats::CpuTimer::start();
                                                store.write(
                                                    SnapshotMeta {
                                                        shard,
                                                        epoch,
                                                        wal_seq: seq,
                                                    },
                                                    &[],
                                                )?;
                                                store.retain(shard, *keep)?;
                                                stats.note_checkpoint();
                                                stats.note_checkpoint_time(t0.elapsed_nanos());
                                                epochs = 0;
                                            }
                                        }
                                    }
                                    Ok(ShardMsg::Reading { .. }) => {}
                                    Ok(ShardMsg::Shutdown) | Err(_) => break,
                                }
                            }
                            Ok(())
                        })
                        .map_err(|e| EspError::Config(format!("spawn shard sink thread: {e}")))?,
                );
                continue;
            }

            let pipeline = pipeline_factory(shard);
            if durable.is_some() {
                // Probe-build the shard's cascade to ask the static half
                // of the durability contract: every stage must have a
                // serialized state form, or the gateway would run fine
                // until the first checkpoint fires and then die at
                // runtime. Cheap (single-threaded build, no I/O) and only
                // paid when durability is on; the worker rebuilds from
                // the same factories on startup anyway.
                let (probe, _buffers) = crate::worker::build_shard(&shard_groups, &pipeline)?;
                let bad = probe.non_checkpointable_stages();
                if !bad.is_empty() {
                    return Err(EspError::Invalid(vec![Diagnostic::error(
                        "E0804",
                        format!(
                            "durable gateway pipeline contains stage(s) that cannot be \
                             checkpointed: {}",
                            bad.join(", ")
                        ),
                    )
                    .with_note(
                        "declarative (compiled-query) stages have no serialized window \
                         state; use the built-in stages or run without durability",
                    )]));
                }
                // The replay half of the same contract: recovery replays
                // the WAL, so a stage whose output is not a pure function
                // of its input would recover to different bytes. Rejected
                // here, at spawn, for the same reason E0804 is — failing
                // at the first recovery would be far worse.
                let tainted = probe.nondeterministic_stages();
                if !tainted.is_empty() {
                    let detail = tainted
                        .iter()
                        .map(|(name, reason)| format!("'{name}' ({reason})"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    return Err(EspError::Invalid(vec![Diagnostic::error(
                        "E0903",
                        format!(
                            "durable gateway pipeline contains nondeterministic stage(s): \
                             {detail}"
                        ),
                    )
                    .with_note(
                        "WAL replay cannot reproduce wall-clock reads or other volatile \
                         effects; make the stage deterministic or run without durability",
                    )]));
                }
            }
            if live_shards > 1 {
                if let Some(slot) = pipeline.slots().iter().find(|s| s.scope == Scope::Global) {
                    return Err(EspError::Invalid(vec![Diagnostic::error(
                        "E0502",
                        format!(
                            "global-scope stage '{}' in a gateway sharded across \
                             {live_shards} live shards",
                            slot.label
                        ),
                    )
                    .with_note(
                        "each shard runs its own cascade, so a global stage would only \
                         see its shard's granules; use one shard or a per-group stage",
                    )]));
                }
            }
            let hooks = durable
                .as_ref()
                .map(|(dc, wal, store, every)| DurabilityHooks {
                    config: dc.clone(),
                    store: Arc::clone(store),
                    wal: Arc::clone(wal),
                    router: Arc::clone(&router),
                    n_shards: config.n_shards,
                    checkpoint_every: *every,
                    crash_countdown: Arc::clone(crash_countdown),
                });
            workers.push(spawn_worker(
                shard,
                rx,
                shard_groups,
                pipeline,
                Arc::clone(&trace),
                stats.clone(),
                hooks,
            )?);
        }

        // Listener + accept loop.
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| EspError::Config(format!("bind {}: {e}", config.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| EspError::Config(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| EspError::Config(format!("set_nonblocking: {e}")))?;

        let stop_accept = Arc::new(AtomicBool::new(false));
        let reader_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let max_lateness = config.max_lateness;
        let accept_handle = {
            let stop = Arc::clone(&stop_accept);
            let handles = Arc::clone(&reader_handles);
            let router = Arc::clone(&router);
            let txs = txs.clone();
            let stats = stats.clone();
            let queue_stats = queue_stats.clone();
            let clock = clock.clone();
            let wal = durable.as_ref().map(|(_, w, _, _)| Arc::clone(w));
            thread::Builder::new()
                .name("esp-gateway-accept".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                let router = Arc::clone(&router);
                                let txs = txs.clone();
                                let conn_stats = stats.clone();
                                let queue_stats = queue_stats.clone();
                                let clock = clock.clone();
                                let wal = wal.clone();
                                let spawned = thread::Builder::new()
                                    .name("esp-gateway-conn".into())
                                    .spawn(move || {
                                        serve_connection(
                                            stream,
                                            max_lateness,
                                            &router,
                                            &txs,
                                            &clock,
                                            wal.as_deref(),
                                            &conn_stats,
                                            &queue_stats,
                                        )
                                    });
                                match spawned {
                                    Ok(h) => handles.lock().push(h),
                                    Err(_) => stats.note_io_error(),
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                thread::sleep(Duration::from_millis(1));
                            }
                            Err(_) => {
                                stats.note_io_error();
                                thread::sleep(Duration::from_millis(1));
                            }
                        }
                    }
                })
                .map_err(|e| EspError::Config(format!("spawn accept thread: {e}")))?
        };

        // Epoch coordinator.
        let drain = Arc::new(AtomicBool::new(false));
        let killed = Arc::new(AtomicBool::new(false));
        let coordinator = {
            let drain = Arc::clone(&drain);
            let killed = Arc::clone(&killed);
            let stats = stats.clone();
            let txs = txs.clone();
            let clock = clock.clone();
            let wal = durable.as_ref().map(|(_, w, _, _)| Arc::clone(w));
            let (start, period, min_conns) = (coord_start, config.period, config.min_connections);
            let last = coord_last_flushed;
            thread::Builder::new()
                .name("esp-gateway-coordinator".into())
                .spawn(move || {
                    coordinate(
                        &clock,
                        &stats,
                        &txs,
                        &drain,
                        &killed,
                        wal.as_deref(),
                        start,
                        last,
                        period,
                        min_conns,
                    )
                })
                .map_err(|e| EspError::Config(format!("spawn coordinator thread: {e}")))?
        };

        Ok(Gateway {
            local_addr,
            stop_accept,
            drain,
            killed,
            accept_handle,
            coordinator,
            reader_handles,
            workers,
            traces,
            crash_countdowns,
            stats,
            queue_stats,
        })
    }

    /// The bound address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live counters (snapshot; safe to call while running).
    pub fn snapshot(&self) -> GatewaySnapshot {
        self.stats.snapshot(&self.queue_stats)
    }

    /// The observability registry every gateway counter, span, and
    /// histogram lives in (per-gateway; safe to scrape while running).
    pub fn registry(&self) -> esp_obs::Registry {
        self.stats.registry()
    }

    /// Prometheus text exposition of this gateway's registry merged with
    /// the process-global one — the same document the `STATS` wire frame
    /// serves.
    pub fn render_text(&self) -> String {
        self.stats.render_text()
    }

    /// [`Gateway::render_text`], but as one JSON document.
    pub fn render_json(&self) -> String {
        self.stats.render_json()
    }

    /// Graceful shutdown: stop accepting, wait for every open connection
    /// to finish (clients must close their sockets), flush the final
    /// epochs, join all workers, and return the collected output.
    pub fn finish(self) -> Result<GatewayOutput> {
        self.stop_accept.store(true, Ordering::Release);
        self.accept_handle
            .join()
            .map_err(|_| EspError::Config("gateway accept thread panicked".into()))?;
        let readers = std::mem::take(&mut *self.reader_handles.lock());
        for h in readers {
            h.join()
                .map_err(|_| EspError::Config("gateway reader thread panicked".into()))?;
        }
        // Every reading that will ever arrive is now in the shard queues;
        // tell the coordinator to flush through the end of the data. The
        // Release store pairs with the coordinator's Acquire load: if it
        // observes `drain`, the reader joins above (and every enqueue they
        // performed) happen-before its final flush sweep.
        self.drain.store(true, Ordering::Release);
        // A worker that died early also makes the coordinator fail (its
        // channel disconnects); join everything before reporting so the
        // root-cause worker error wins over the coordinator's symptom.
        let coord = self
            .coordinator
            .join()
            .map_err(|_| EspError::Config("gateway coordinator panicked".into()))?;
        let mut first_err = None;
        for w in self.workers {
            let joined = w
                .join()
                .map_err(|_| EspError::Config("gateway worker panicked".into()))?;
            if let Err(e) = joined {
                first_err.get_or_insert(e);
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        coord?;
        let shard_traces = self
            .traces
            .iter()
            .map(|t| std::mem::take(&mut *t.lock()))
            .collect();
        let stats = self.stats.snapshot(&self.queue_stats);
        Ok(GatewayOutput {
            shard_traces,
            stats,
        })
    }

    /// Simulate a whole-process crash as faithfully as an in-process
    /// gateway can: stop accepting, let open connections wind down, then
    /// stop the coordinator *without* the final drain sweep and discard
    /// every worker's in-memory output. Durable state (WAL + snapshots)
    /// is left exactly as the crash would leave it; a gateway re-spawned
    /// on the same durability directory recovers from it.
    pub fn kill(self) -> Result<()> {
        self.stop_accept.store(true, Ordering::Release);
        self.accept_handle
            .join()
            .map_err(|_| EspError::Config("gateway accept thread panicked".into()))?;
        let readers = std::mem::take(&mut *self.reader_handles.lock());
        for h in readers {
            h.join()
                .map_err(|_| EspError::Config("gateway reader thread panicked".into()))?;
        }
        self.killed.store(true, Ordering::Release);
        let coord = self
            .coordinator
            .join()
            .map_err(|_| EspError::Config("gateway coordinator panicked".into()))?;
        // Dropping the coordinator's senders disconnects the shard
        // queues; workers drain what was in flight and exit. As in
        // `finish`, a worker's own error outranks the coordinator's
        // disconnect symptom.
        let mut first_err = None;
        for w in self.workers {
            let joined = w
                .join()
                .map_err(|_| EspError::Config("gateway worker panicked".into()))?;
            if let Err(e) = joined {
                first_err.get_or_insert(e);
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        coord
    }

    /// Arm the fault injector: `shard`'s worker simulates a crash after
    /// processing `after_flushes` more flush messages (0 = on the next
    /// one), abandoning its processor and buffered readings and coming
    /// back through the snapshot + WAL-replay recovery path. Only honored
    /// when durability is configured; without it the countdown is never
    /// read.
    pub fn inject_crash(&self, shard: usize, after_flushes: u64) {
        if let Some(c) = self.crash_countdowns.get(shard) {
            c.store(after_flushes as i64, Ordering::Release);
        }
    }
}

/// The coordinator loop: poll the watermark, broadcast due epochs, and on
/// drain flush everything up to the last reading before shutting workers
/// down. On a restart `start`/`last_flushed` come from the recovered WAL,
/// so the epoch sequence continues where the previous process left off.
#[allow(clippy::too_many_arguments)]
fn coordinate(
    clock: &WatermarkClock,
    stats: &GatewayStats,
    txs: &[Sender<ShardMsg>],
    drain: &AtomicBool,
    killed: &AtomicBool,
    wal: Option<&Mutex<WalWriter>>,
    start: Ts,
    mut last_flushed: Option<Ts>,
    period: TimeDelta,
    min_connections: usize,
) -> Result<()> {
    let mut next = start;
    loop {
        if killed.load(Ordering::Acquire) {
            // Simulated hard crash: no final flush sweep, no Shutdown —
            // exactly what the workers would (not) see on a power cut.
            return Ok(());
        }
        let draining = drain.load(Ordering::Acquire);
        // Once draining, every reader has exited: all data is enqueued and
        // the watermark argument is moot — flush everything.
        let watermark = if draining {
            Some(u64::MAX)
        } else if clock.registered() >= min_connections {
            clock.global()
        } else {
            None
        };
        if let Some(wm) = watermark {
            let max_ts = stats.max_ts_ms();
            // Flush while the watermark certifies the epoch AND some data
            // is not yet covered by a flushed epoch (the second condition
            // stops an all-closed watermark of ∞ from spinning forever).
            while next.as_millis() < wm && last_flushed.is_none_or(|e| e.as_millis() < max_ts) {
                stats.note_flush_issued(next.as_millis());
                broadcast_flush(txs, wal, next, stats)?;
                last_flushed = Some(next);
                next += period;
            }
        }
        if draining {
            for tx in txs {
                let _ = tx.send(ShardMsg::Shutdown);
            }
            return Ok(());
        }
        thread::sleep(Duration::from_micros(500));
    }
}

/// Log the flush marker (when durable) and broadcast it to every shard,
/// holding the WAL lock across append + enqueue so per-shard queue order
/// equals WAL order — the invariant recovery's skip rule relies on.
fn broadcast_flush(
    txs: &[Sender<ShardMsg>],
    wal: Option<&Mutex<WalWriter>>,
    epoch: Ts,
    stats: &GatewayStats,
) -> Result<()> {
    let hung = || EspError::Config("gateway shard worker hung up".into());
    match wal {
        Some(w) => {
            let mut w = w.lock();
            let t0 = esp_obs::enabled().then(Instant::now);
            let seq = w.append_flush(epoch)?;
            if let Some(t0) = t0 {
                stats.note_wal_flush(t0.elapsed().as_nanos() as u64);
            }
            stats.note_wal_record();
            for tx in txs {
                tx.send(ShardMsg::Flush {
                    seq,
                    epoch,
                    sent: Instant::now(),
                })
                .map_err(|_| hung())?;
            }
        }
        None => {
            for tx in txs {
                tx.send(ShardMsg::Flush {
                    seq: 0,
                    epoch,
                    sent: Instant::now(),
                })
                .map_err(|_| hung())?;
            }
        }
    }
    Ok(())
}

/// One connection: handshake, then a frame-decode-route loop until EOF.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    mut stream: TcpStream,
    max_lateness: Option<TimeDelta>,
    router: &ShardRouter,
    txs: &[Sender<ShardMsg>],
    clock: &WatermarkClock,
    wal: Option<&Mutex<WalWriter>>,
    stats: &GatewayStats,
    queue_stats: &QueueStats,
) {
    let lateness_ms = match handshake(&mut stream, max_lateness) {
        Ok(l) => l,
        Err(_) => {
            stats.note_io_error();
            return;
        }
    };
    stats.note_connection();
    let conn = clock.register();
    if let Err(_e) = read_frames(
        stream,
        lateness_ms,
        router,
        txs,
        &conn,
        wal,
        stats,
        queue_stats,
    ) {
        stats.note_io_error();
    }
    // Whatever happened, release the watermark so one dead connection
    // cannot stall every pipeline forever.
    conn.close();
}

/// Validate the client hello and return its bounded-lateness promise (ms).
/// A promise above `max_lateness` (when set) refuses the connection: the
/// socket closes without an ack.
fn handshake(stream: &mut TcpStream, max_lateness: Option<TimeDelta>) -> std::io::Result<u64> {
    use std::io::{Error, ErrorKind};
    let mut hello = [0u8; 14];
    stream.read_exact(&mut hello)?;
    let magic = u32::from_be_bytes([hello[0], hello[1], hello[2], hello[3]]);
    let version = u16::from_be_bytes([hello[4], hello[5]]);
    if magic != HELLO_MAGIC {
        return Err(Error::new(ErrorKind::InvalidData, "bad hello magic"));
    }
    if version != PROTOCOL_VERSION {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let lateness_ms = u64::from_be_bytes([
        hello[6], hello[7], hello[8], hello[9], hello[10], hello[11], hello[12], hello[13],
    ]);
    if let Some(max) = max_lateness {
        if lateness_ms > max.as_millis() {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!("declared lateness {lateness_ms} ms exceeds the gateway bound {max}"),
            ));
        }
    }
    stream.write_all(&[ACK_OK])?;
    Ok(lateness_ms)
}

#[allow(clippy::too_many_arguments)]
fn read_frames(
    stream: TcpStream,
    lateness_ms: u64,
    router: &ShardRouter,
    txs: &[Sender<ShardMsg>],
    conn: &crate::watermark::ConnClock,
    wal: Option<&Mutex<WalWriter>>,
    stats: &GatewayStats,
    queue_stats: &QueueStats,
) -> Result<()> {
    // Write half for `STATS` scrape responses — the only server→client
    // traffic after the handshake ack, so an ingest-only client that
    // never scrapes sees the exact pre-existing protocol.
    let responder = stream
        .try_clone()
        .map_err(|e| EspError::Wire(format!("clone stream for stats responses: {e}")))?;
    let mut responder = FrameWriter::new(BufWriter::with_capacity(64 * 1024, responder));
    let mut reader = FrameReader::new(BufReader::with_capacity(64 * 1024, stream));
    // Scratch WAL record, encoded + checksummed before taking the lock.
    let mut prepared = esp_durability::PreparedRecord::new();
    while let Some(frame) = reader
        .read_frame()
        .map_err(|e| EspError::Wire(format!("frame read: {e}")))?
    {
        if frame.as_ref() == STATS_TEXT_REQUEST || frame.as_ref() == STATS_JSON_REQUEST {
            // Scrape request: counted on its own (never as a data frame,
            // so frame-conservation invariants are scrape-invariant) and
            // answered inline on this connection.
            stats.note_stats_request();
            let body = if frame.as_ref() == STATS_JSON_REQUEST {
                stats.render_json()
            } else {
                stats.render_text()
            };
            write_stats_response(&mut responder, body.as_bytes())
                .map_err(|e| EspError::Wire(format!("stats response: {e}")))?;
            continue;
        }
        stats.note_frame();
        let Ok(reading) = wire::decode(&frame) else {
            // Paper §4: Point functionality out of the box — checksum
            // failures are dropped at the edge, counted, never forwarded.
            stats.note_corrupt();
            continue;
        };
        let Some(dests) = router.shards_of(reading.receptor()) else {
            stats.note_unroutable();
            continue;
        };
        let ts_ms = reading.ts().as_millis();
        match wal {
            Some(w) => {
                // Hold the WAL lock across append + enqueue so per-shard
                // queue order equals WAL order. Blocking on a full queue
                // while holding the lock is deliberate — recovery never
                // takes this lock (see `crate::durability`), so it cannot
                // deadlock against a recovering worker.
                prepared.encode(&frame, reading.ts());
                let mut w = w.lock();
                let seq = w.append_prepared(&prepared)?;
                stats.note_wal_record();
                for &shard in dests {
                    send_counted(
                        &txs[shard],
                        ShardMsg::Reading {
                            seq,
                            reading: reading.clone(),
                        },
                        queue_stats,
                    )?;
                }
            }
            None => {
                for &shard in dests {
                    send_counted(
                        &txs[shard],
                        ShardMsg::Reading {
                            seq: 0,
                            reading: reading.clone(),
                        },
                        queue_stats,
                    )?;
                }
            }
        }
        stats.note_reading(ts_ms, dests);
        // Advance AFTER enqueuing: the flush this advance may trigger
        // must sit behind the reading in every shard queue.
        conn.advance(ts_ms.saturating_sub(lateness_ms));
    }
    Ok(())
}

/// Write one scrape document as a sequence of marker-prefixed frames:
/// `[STATS_MORE | STATS_FINAL][chunk]`. Chunked because an exposition
/// can exceed [`MAX_FRAME_LEN`]; the in-band marker byte (rather than an
/// empty terminator frame, which the framing layer forbids) tells the
/// client where the document ends.
fn write_stats_response<W: Write>(w: &mut FrameWriter<W>, body: &[u8]) -> std::io::Result<()> {
    let chunks: Vec<&[u8]> = if body.is_empty() {
        vec![&[][..]]
    } else {
        body.chunks(STATS_CHUNK).collect()
    };
    let last = chunks.len() - 1;
    let mut frame = Vec::new();
    for (i, c) in chunks.iter().enumerate() {
        frame.clear();
        frame.push(if i == last { STATS_FINAL } else { STATS_MORE });
        frame.extend_from_slice(c);
        w.write_raw(&frame)?;
    }
    w.flush()
}

/// Send on a bounded shard queue, recording whether it was full (the
/// blocking path is the backpressure that ultimately stalls the socket).
fn send_counted(tx: &Sender<ShardMsg>, msg: ShardMsg, stats: &QueueStats) -> Result<()> {
    match tx.try_send(msg) {
        Ok(()) => {
            stats.record_send();
            Ok(())
        }
        Err(TrySendError::Full(msg)) => {
            stats.record_blocked();
            tx.send(msg)
                .map_err(|_| EspError::Config("gateway shard worker hung up".into()))
        }
        Err(TrySendError::Disconnected(_)) => {
            Err(EspError::Config("gateway shard worker hung up".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(granule: &str, members: &[u32]) -> GatewayGroup {
        GatewayGroup {
            receptor_type: ReceptorType::Rfid,
            granule: granule.into(),
            members: members.iter().map(|&m| ReceptorId(m)).collect(),
        }
    }

    #[test]
    fn validate_accepts_default_config() {
        let config = GatewayConfig::new(vec![group("shelf0", &[0])]);
        assert!(config.validate(None).is_empty());
        assert!(config.validate(Some(TimeDelta::from_secs(5))).is_empty());
    }

    #[test]
    fn validate_flags_degenerate_resources() {
        let mut config = GatewayConfig::new(vec![]);
        config.n_shards = 0;
        config.edge_capacity = 0;
        config.period = TimeDelta::ZERO;
        let diags = config.validate(None);
        assert_eq!(
            diags.iter().filter(|d| d.code == "E0503").count(),
            4,
            "{diags:?}"
        );
    }

    #[test]
    fn validate_flags_group_defects() {
        let config = GatewayConfig::new(vec![group("a", &[]), group("a", &[1])]);
        let diags = config.validate(None);
        assert!(diags.iter().any(|d| d.code == "E0302"), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == "E0303"), "{diags:?}");
    }

    #[test]
    fn validate_flags_lateness_at_or_above_window() {
        let mut config = GatewayConfig::new(vec![group("shelf0", &[0])]);
        config.max_lateness = Some(TimeDelta::from_secs(5));
        let diags = config.validate(Some(TimeDelta::from_secs(5)));
        assert!(
            diags.iter().any(|d| d.code == "E0501" && d.is_error()),
            "{diags:?}"
        );
        // Strictly below the window is fine.
        assert!(config.validate(Some(TimeDelta::from_secs(6))).is_empty());
        // Unknown window: nothing to compare against.
        assert!(config.validate(None).is_empty());
    }

    #[test]
    fn spawn_rejects_invalid_config_with_diagnostics() {
        let mut config = GatewayConfig::new(vec![group("g", &[0])]);
        config.n_shards = 0;
        match Gateway::spawn(config, |_| Pipeline::raw()) {
            Err(EspError::Invalid(diags)) => {
                assert!(diags.iter().any(|d| d.code == "E0503"), "{diags:?}")
            }
            Err(other) => panic!("expected Invalid, got {other}"),
            Ok(_) => panic!("expected Invalid, got a running gateway"),
        }
    }

    #[test]
    fn spawn_rejects_global_stage_across_live_shards() {
        // Two granules that hash to different shards.
        let mut names = (0..).map(|i| format!("g{i}"));
        let a = names.next().unwrap();
        let b = names
            .find(|n| shard_of_granule(n, 4) != shard_of_granule(&a, 4))
            .unwrap();
        let config = GatewayConfig::new(vec![group(&a, &[0]), group(&b, &[1])]);
        let result = Gateway::spawn(config, |_| {
            esp_core::Pipeline::builder()
                .global("arbitrate", |_| {
                    Ok(Box::new(esp_core::FnStage::per_epoch(
                        "arbitrate",
                        |_, input| Ok(input),
                    )))
                })
                .build()
        });
        match result {
            Err(EspError::Invalid(diags)) => {
                assert!(
                    diags.iter().any(|d| d.code == "E0502" && d.is_error()),
                    "{diags:?}"
                )
            }
            Err(other) => panic!("expected Invalid, got {other}"),
            Ok(_) => panic!("expected Invalid, got a running gateway"),
        }
    }

    #[test]
    fn spawn_rejects_durable_declarative_stage_with_e0804() {
        let dir = std::env::temp_dir().join(format!("esp-e0804-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = GatewayConfig::new(vec![group("g", &[0])]);
        config.durability = Some(DurabilityConfig::new(&dir));
        let result = Gateway::spawn(config, |_| {
            esp_core::Pipeline::builder()
                .per_receptor("q", |_| {
                    let q = esp_query::Engine::new()
                        .compile("SELECT tag_id FROM s [Range By '5 sec']")?;
                    Ok(Box::new(esp_core::DeclarativeStage::new("q", q)?))
                })
                .build()
        });
        let _ = std::fs::remove_dir_all(&dir);
        match result {
            Err(EspError::Invalid(diags)) => {
                assert!(
                    diags.iter().any(|d| d.code == "E0804" && d.is_error()),
                    "{diags:?}"
                )
            }
            Err(other) => panic!("expected Invalid, got {other}"),
            Ok(_) => panic!("expected Invalid, got a running gateway"),
        }
    }

    #[test]
    fn spawn_rejects_durable_nondeterministic_stage_with_e0903() {
        let dir = std::env::temp_dir().join(format!("esp-e0903-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = GatewayConfig::new(vec![group("g", &[0])]);
        config.durability = Some(DurabilityConfig::new(&dir));
        let result = Gateway::spawn(config, |_| {
            esp_core::Pipeline::builder()
                .per_receptor("stamp", |_| {
                    Ok(Box::new(
                        esp_core::FnStage::per_tuple("stamp", |t| Ok(Some(t.clone())))
                            .nondeterministic("stamps tuples with the wall clock"),
                    ))
                })
                .build()
        });
        let _ = std::fs::remove_dir_all(&dir);
        match result {
            Err(EspError::Invalid(diags)) => {
                let d = diags
                    .iter()
                    .find(|d| d.code == "E0903" && d.is_error())
                    .unwrap_or_else(|| panic!("{diags:?}"));
                assert!(d.message.contains("wall clock"), "{}", d.message);
            }
            Err(other) => panic!("expected Invalid, got {other}"),
            Ok(_) => panic!("expected Invalid, got a running gateway"),
        }
        // Without durability the same pipeline spawns fine: determinism is
        // only load-bearing for WAL replay.
        let config = GatewayConfig::new(vec![group("g", &[0])]);
        let gateway = Gateway::spawn(config, |_| {
            esp_core::Pipeline::builder()
                .per_receptor("stamp", |_| {
                    Ok(Box::new(
                        esp_core::FnStage::per_tuple("stamp", |t| Ok(Some(t.clone())))
                            .nondeterministic("stamps tuples with the wall clock"),
                    ))
                })
                .build()
        })
        .unwrap();
        gateway.finish().unwrap();
    }

    #[test]
    fn spawn_allows_global_stage_on_single_live_shard() {
        let config = GatewayConfig::new(vec![group("only", &[0])]);
        let gateway = Gateway::spawn(config, |_| {
            esp_core::Pipeline::builder()
                .global("arbitrate", |_| {
                    Ok(Box::new(esp_core::FnStage::per_epoch(
                        "arbitrate",
                        |_, input| Ok(input),
                    )))
                })
                .build()
        })
        .unwrap();
        gateway.finish().unwrap();
    }
}
