//! §4 RFID shelf experiments: Figures 3, 5, 6 and the §4 headline numbers.

use std::collections::HashSet;
use std::sync::Arc;

use esp_core::{ArbitrateStage, Pipeline, SmoothStage, TieBreak};
use esp_metrics::{average_relative_error, AlertCounter, Report, Series};
use esp_receptors::rfid::ShelfScenario;
use esp_types::{ReceptorType, TimeDelta, Ts, Value};

use crate::util::{build_processor, with_type};

/// The five Figure 5 pipeline configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShelfPipeline {
    /// No cleaning: the application consumes raw readings.
    Raw,
    /// Smooth per reader only.
    SmoothOnly,
    /// Arbitrate over raw readings only.
    ArbitrateOnly,
    /// Arbitrate first, then Smooth (the wrong order).
    ArbitrateThenSmooth,
    /// Smooth per reader, then Arbitrate (the paper's pipeline).
    SmoothThenArbitrate,
}

impl ShelfPipeline {
    /// All configurations in the order Figure 5 lists them.
    pub const ALL: [ShelfPipeline; 5] = [
        ShelfPipeline::Raw,
        ShelfPipeline::SmoothOnly,
        ShelfPipeline::ArbitrateOnly,
        ShelfPipeline::ArbitrateThenSmooth,
        ShelfPipeline::SmoothThenArbitrate,
    ];

    /// Display label matching the figure's x-axis.
    pub fn label(self) -> &'static str {
        match self {
            ShelfPipeline::Raw => "Raw",
            ShelfPipeline::SmoothOnly => "Smooth Only",
            ShelfPipeline::ArbitrateOnly => "Arbitrate Only",
            ShelfPipeline::ArbitrateThenSmooth => "Arbitrate+Smooth",
            ShelfPipeline::SmoothThenArbitrate => "Smooth+Arbitrate",
        }
    }
}

/// Result of one shelf run.
pub struct ShelfRun {
    /// Per-epoch reported count per shelf: `counts[shelf][epoch]`.
    pub counts: Vec<Vec<f64>>,
    /// Per-epoch true count per shelf.
    pub truth: Vec<Vec<f64>>,
    /// Epoch timestamps (seconds).
    pub times: Vec<f64>,
    /// Average relative error (Equation 1, across both shelves).
    pub avg_relative_error: f64,
    /// Restock alerts (reported count < 5) per second.
    pub alerts_per_second: f64,
    /// False restock alerts per second (truth was ≥ 5).
    pub false_alerts_per_second: f64,
}

/// Build a shelf pipeline configuration.
pub fn shelf_pipeline(cfg: ShelfPipeline, granule: TimeDelta) -> Pipeline {
    let smooth_per_receptor = move || {
        move |_ctx: &esp_core::StageCtx| {
            Ok(Box::new(SmoothStage::count_by_key(
                "smooth",
                granule,
                ["spatial_granule", "tag_id"],
            )) as Box<dyn esp_core::Stage>)
        }
    };
    // Paper §4.3.1: ties attributed to the weaker antenna (shelf 1).
    let arbitrate = || {
        |_ctx: &esp_core::StageCtx| {
            Ok(Box::new(ArbitrateStage::new(
                "arbitrate",
                TieBreak::Priority(vec![Arc::from("shelf1"), Arc::from("shelf0")]),
            )) as Box<dyn esp_core::Stage>)
        }
    };
    let smooth_global = move || {
        move |_ctx: &esp_core::StageCtx| {
            Ok(Box::new(SmoothStage::count_by_key(
                "smooth",
                granule,
                ["spatial_granule", "tag_id"],
            )) as Box<dyn esp_core::Stage>)
        }
    };
    match cfg {
        ShelfPipeline::Raw => Pipeline::raw(),
        ShelfPipeline::SmoothOnly => Pipeline::builder()
            .per_receptor("smooth", smooth_per_receptor())
            .build(),
        ShelfPipeline::ArbitrateOnly => {
            Pipeline::builder().global("arbitrate", arbitrate()).build()
        }
        ShelfPipeline::ArbitrateThenSmooth => Pipeline::builder()
            .global("arbitrate", arbitrate())
            .global("smooth", smooth_global())
            .build(),
        ShelfPipeline::SmoothThenArbitrate => Pipeline::builder()
            .per_receptor("smooth", smooth_per_receptor())
            .global("arbitrate", arbitrate())
            .build(),
    }
}

/// Run the shelf scenario through one pipeline configuration and score the
/// application's shelf-count query (Query 1 evaluated at every reader
/// epoch) against ground truth.
pub fn run_shelf(
    cfg: ShelfPipeline,
    granule: TimeDelta,
    duration: TimeDelta,
    seed: u64,
) -> ShelfRun {
    let scenario = ShelfScenario::paper(seed);
    let n_shelves = scenario.config().n_shelves;
    let period = scenario.config().sample_period;
    let n_epochs = duration.as_millis() / period.as_millis();

    let pipeline = shelf_pipeline(cfg, granule);
    let proc = build_processor(
        &scenario.groups(),
        &pipeline,
        with_type(scenario.sources(), ReceptorType::Rfid),
    )
    .expect("shelf processor builds");
    let output = proc
        .run(Ts::ZERO, period, n_epochs)
        .expect("shelf run succeeds");

    let mut counts = vec![Vec::with_capacity(output.trace.len()); n_shelves];
    let mut truth = vec![Vec::with_capacity(output.trace.len()); n_shelves];
    let mut times = Vec::with_capacity(output.trace.len());
    let mut alerts = AlertCounter::new(5.0);
    for (epoch, batch) in &output.trace {
        times.push(epoch.as_secs_f64());
        // Query 1 at this epoch: count distinct tags per spatial granule.
        let mut tags_per_shelf: Vec<HashSet<&str>> = vec![HashSet::new(); n_shelves];
        for t in batch {
            let Some(granule) = t.get("spatial_granule").and_then(Value::as_str) else {
                continue;
            };
            let Some(shelf) = granule
                .strip_prefix("shelf")
                .and_then(|s| s.parse::<usize>().ok())
            else {
                continue;
            };
            if let Some(tag) = t.get("tag_id").and_then(Value::as_str) {
                tags_per_shelf[shelf].insert(tag);
            }
        }
        for shelf in 0..n_shelves {
            let reported = tags_per_shelf[shelf].len() as f64;
            let actual = scenario.true_count(shelf, *epoch) as f64;
            counts[shelf].push(reported);
            truth[shelf].push(actual);
            alerts.record(reported, actual);
        }
    }

    let pairs = counts
        .iter()
        .zip(&truth)
        .flat_map(|(c, t)| c.iter().copied().zip(t.iter().copied()));
    let avg_relative_error = average_relative_error(pairs);
    let secs = duration.as_secs_f64();
    ShelfRun {
        counts,
        truth,
        times,
        avg_relative_error,
        alerts_per_second: alerts.alerts_per_second(secs),
        false_alerts_per_second: alerts.false_alerts() as f64 / secs,
    }
}

/// Figure 3: the shelf-count traces at each processing level, plus the §4
/// headline numbers.
pub fn figure3(duration: TimeDelta, seed: u64) -> Report {
    let granule = TimeDelta::from_secs(5);
    let mut report = Report::new("Figure 3: Query 1 results at different stages of processing");
    for (tag, cfg) in [
        ("raw", ShelfPipeline::Raw),
        ("smooth", ShelfPipeline::SmoothOnly),
        ("arbitrate", ShelfPipeline::SmoothThenArbitrate),
    ] {
        let run = run_shelf(cfg, granule, duration, seed);
        for shelf in 0..run.counts.len() {
            report.add_series(Series::from_points(
                format!("{tag}:shelf{shelf}"),
                run.times
                    .iter()
                    .copied()
                    .zip(run.counts[shelf].iter().copied()),
            ));
        }
        report.scalar(format!("{tag}:avg_relative_error"), run.avg_relative_error);
        report.scalar(format!("{tag}:alerts_per_second"), run.alerts_per_second);
        report.scalar(
            format!("{tag}:false_alerts_per_second"),
            run.false_alerts_per_second,
        );
        if tag == "raw" {
            // Ground truth trace (Figure 3(a)) from the raw run.
            for shelf in 0..run.truth.len() {
                report.add_series(Series::from_points(
                    format!("reality:shelf{shelf}"),
                    run.times
                        .iter()
                        .copied()
                        .zip(run.truth[shelf].iter().copied()),
                ));
            }
        }
    }
    report
}

/// Figure 5: average relative error per pipeline configuration.
pub fn figure5(duration: TimeDelta, seed: u64) -> Report {
    let granule = TimeDelta::from_secs(5);
    let mut report = Report::new("Figure 5: average relative error by pipeline configuration");
    for cfg in ShelfPipeline::ALL {
        let run = run_shelf(cfg, granule, duration, seed);
        report.scalar(cfg.label(), run.avg_relative_error);
    }
    report
}

/// Figure 6: average relative error vs temporal granule size.
pub fn figure6(duration: TimeDelta, seed: u64, granules_s: &[f64]) -> Report {
    let mut report = Report::new("Figure 6: average relative error vs temporal granule size");
    let mut series = Series::new("avg_relative_error");
    for &g in granules_s {
        let granule = TimeDelta::from_millis((g * 1000.0) as u64);
        let run = run_shelf(ShelfPipeline::SmoothThenArbitrate, granule, duration, seed);
        series.push(g, run.avg_relative_error);
        report.scalar(format!("granule_{g}s"), run.avg_relative_error);
    }
    report.add_series(series);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: TimeDelta = TimeDelta(60_000); // 60 s keeps tests quick

    #[test]
    fn raw_error_is_large_and_alerts_fire_constantly() {
        let run = run_shelf(ShelfPipeline::Raw, TimeDelta::from_secs(5), SHORT, 11);
        assert!(
            run.avg_relative_error > 0.25,
            "raw error should be large, got {}",
            run.avg_relative_error
        );
        assert!(
            run.false_alerts_per_second > 0.5,
            "raw data should fire false restock alerts continuously, got {}",
            run.false_alerts_per_second
        );
    }

    #[test]
    fn full_pipeline_beats_raw_by_a_wide_margin() {
        let raw = run_shelf(ShelfPipeline::Raw, TimeDelta::from_secs(5), SHORT, 11);
        let cleaned = run_shelf(
            ShelfPipeline::SmoothThenArbitrate,
            TimeDelta::from_secs(5),
            SHORT,
            11,
        );
        assert!(
            cleaned.avg_relative_error < raw.avg_relative_error / 3.0,
            "cleaned {} vs raw {}",
            cleaned.avg_relative_error,
            raw.avg_relative_error
        );
        assert!(
            cleaned.false_alerts_per_second < 0.05,
            "cleaning should silence restock alerts, got {}",
            cleaned.false_alerts_per_second
        );
    }

    #[test]
    fn smooth_alone_leaves_the_antenna_discrepancy() {
        let smooth = run_shelf(
            ShelfPipeline::SmoothOnly,
            TimeDelta::from_secs(5),
            SHORT,
            11,
        );
        let full = run_shelf(
            ShelfPipeline::SmoothThenArbitrate,
            TimeDelta::from_secs(5),
            SHORT,
            11,
        );
        assert!(
            smooth.avg_relative_error > 1.5 * full.avg_relative_error,
            "smooth-only {} should be clearly worse than smooth+arbitrate {}",
            smooth.avg_relative_error,
            full.avg_relative_error
        );
        // Shelf 0 is overcounted after Smooth alone (the paper's §4.1).
        let shelf0_mean: f64 = smooth.counts[0].iter().sum::<f64>() / smooth.counts[0].len() as f64;
        let truth0_mean: f64 = smooth.truth[0].iter().sum::<f64>() / smooth.truth[0].len() as f64;
        assert!(
            shelf0_mean > truth0_mean + 2.0,
            "shelf0 smoothed mean {shelf0_mean} should overcount truth {truth0_mean}"
        );
    }

    #[test]
    fn arbitrate_alone_is_no_better_than_raw() {
        let raw = run_shelf(ShelfPipeline::Raw, TimeDelta::from_secs(5), SHORT, 11);
        let arb = run_shelf(
            ShelfPipeline::ArbitrateOnly,
            TimeDelta::from_secs(5),
            SHORT,
            11,
        );
        // "Arbitrate individually provides little benefit beyond raw."
        assert!(
            (arb.avg_relative_error - raw.avg_relative_error).abs() < 0.15,
            "arbitrate-only {} should be close to raw {}",
            arb.avg_relative_error,
            raw.avg_relative_error
        );
    }

    #[test]
    fn figure5_ordering_matches_paper() {
        let duration = TimeDelta::from_secs(120);
        let report = figure5(duration, 11);
        let get = |l: &str| report.get_scalar(l).unwrap();
        let raw = get("Raw");
        let smooth = get("Smooth Only");
        let full = get("Smooth+Arbitrate");
        assert!(
            full < smooth && smooth < raw,
            "{full} < {smooth} < {raw} violated"
        );
        assert!(full < 0.12, "full pipeline error {full}");
    }
}
