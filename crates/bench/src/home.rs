//! §6 digital-home person detector (Figure 9).

use esp_core::{MergeStage, Pipeline, PointStage, SmoothStage, VirtualizeStage, VoteRule};
use esp_metrics::{BinaryAccuracy, Report, Series};
use esp_receptors::office::{devices, OfficeScenario, BADGE_TAG};
use esp_types::{ReceptorType, SpatialGranule, TimeDelta, Ts, Value};

use crate::util::build_processor;

/// The paper's sound threshold (Query 6: `sensors.noise > 525`).
pub const NOISE_THRESHOLD: f64 = 525.0;

/// Build the full five-stage digital-home pipeline.
///
/// * Point: RFID streams are filtered against the expected-tag relation
///   (drops the errant tag antenna 1 reads).
/// * Smooth (per receptor, by type): RFID tag counts over 5 s; sound
///   windowed mean over 5 s; X10 ON-interpolation over 10 s.
/// * Merge (per group, by type): RFID union-dedup by tag; sound group mean
///   with mean±1σ outlier rejection; X10 2-of-3 voting.
/// * Virtualize: threshold voting over the three cleaned modalities
///   (Query 6 with threshold 2).
pub fn home_pipeline(vote_threshold: usize) -> Pipeline {
    Pipeline::builder()
        .per_receptor("point", |ctx| {
            Ok(Box::new(match ctx.receptor_type {
                Some(ReceptorType::Rfid) => {
                    PointStage::new("point").expected_values("tag_id", [BADGE_TAG])
                }
                _ => PointStage::new("point"),
            }))
        })
        .per_receptor("smooth", |ctx| {
            Ok(match ctx.receptor_type {
                Some(ReceptorType::Rfid) => Box::new(SmoothStage::count_by_key(
                    "smooth",
                    TimeDelta::from_secs(5),
                    ["spatial_granule", "tag_id"],
                )) as Box<dyn esp_core::Stage>,
                Some(ReceptorType::X10Motion) => Box::new(SmoothStage::event_presence(
                    "smooth",
                    TimeDelta::from_secs(10),
                    ["spatial_granule", "receptor_id"],
                    "value",
                    "ON",
                    1,
                )),
                _ => Box::new(SmoothStage::windowed_mean(
                    "smooth",
                    TimeDelta::from_secs(5),
                    ["spatial_granule", "receptor_id"],
                    "noise",
                )),
            })
        })
        .per_group("merge", |ctx| {
            let granule = ctx
                .granule
                .clone()
                .unwrap_or_else(|| SpatialGranule::new("office"));
            Ok(match ctx.receptor_type {
                Some(ReceptorType::Rfid) => Box::new(MergeStage::union_all(
                    "merge",
                    granule,
                    Some("tag_id".into()),
                )) as Box<dyn esp_core::Stage>,
                Some(ReceptorType::X10Motion) => Box::new(MergeStage::vote_threshold(
                    "merge",
                    granule,
                    TimeDelta::from_secs(10),
                    "value",
                    "ON",
                    "receptor_id",
                    2,
                )),
                _ => Box::new(MergeStage::outlier_filtered_mean(
                    "merge",
                    granule,
                    TimeDelta::from_secs(5),
                    "noise",
                    1.0,
                )),
            })
        })
        .global("virtualize", move |_ctx| {
            Ok(Box::new(
                VirtualizeStage::voting(
                    "virtualize",
                    "Person-in-room",
                    vec![
                        VoteRule::numeric_above("sound", "noise", NOISE_THRESHOLD),
                        VoteRule::min_tuples_with("rfid", "tag_id", 1),
                        VoteRule::value_equals("motion", "value", "ON"),
                    ],
                    vote_threshold,
                )
                .expect("valid voting config"),
            ))
        })
        .build()
}

/// Result of a digital-home run.
pub struct HomeRun {
    /// Per-epoch detector output (true = person reported in room).
    pub detected: Vec<bool>,
    /// Per-epoch ground truth.
    pub truth: Vec<bool>,
    /// Epoch times in seconds.
    pub times: Vec<f64>,
    /// Detector accuracy vs ground truth.
    pub accuracy: BinaryAccuracy,
}

/// Run the person detector for `duration` at 1 s epochs.
pub fn run_home(duration: TimeDelta, vote_threshold: usize, seed: u64) -> HomeRun {
    let scenario = OfficeScenario::paper(seed);
    let period = TimeDelta::from_secs(1);
    let n_epochs = duration.as_millis() / period.as_millis();

    let proc = build_processor(
        &scenario.groups(),
        &home_pipeline(vote_threshold),
        scenario.sources(),
    )
    .expect("home processor builds");
    let out = proc.run(Ts::ZERO, period, n_epochs).expect("home run");

    let mut detected = Vec::with_capacity(out.trace.len());
    let mut truth = Vec::with_capacity(out.trace.len());
    let mut times = Vec::with_capacity(out.trace.len());
    let mut accuracy = BinaryAccuracy::new();
    for (ts, batch) in &out.trace {
        let d = batch
            .iter()
            .any(|t| t.get("event") == Some(&Value::str("Person-in-room")));
        let t = scenario.occupied(*ts);
        accuracy.record(d, t);
        detected.push(d);
        truth.push(t);
        times.push(ts.as_secs_f64());
    }
    HomeRun {
        detected,
        truth,
        times,
        accuracy,
    }
}

/// Raw per-modality traces for Figure 9(b–d), from an uncleaned run.
pub fn raw_traces(duration: TimeDelta, seed: u64) -> Report {
    let scenario = OfficeScenario::paper(seed);
    let period = TimeDelta::from_secs(1);
    let n_epochs = duration.as_millis() / period.as_millis();
    let proc = build_processor(&scenario.groups(), &Pipeline::raw(), scenario.sources())
        .expect("raw processor builds");
    let out = proc.run(Ts::ZERO, period, n_epochs).expect("raw run");

    let mut report = Report::new("Figure 9(b-d): raw receptor traces");
    // (b) per-antenna tag counts per second.
    for (i, reader) in devices::RFID.iter().enumerate() {
        let mut s = Series::new(format!("rfid:antenna{i}"));
        for (ts, batch) in &out.trace {
            let n = batch
                .iter()
                .filter(|t| {
                    t.get("receptor_id").and_then(Value::as_i64) == Some(i64::from(reader.0))
                        && t.get("tag_id").is_some()
                })
                .count();
            s.push(ts.as_secs_f64(), n as f64);
        }
        report.add_series(s);
    }
    // (c) per-mote sound readings.
    for (i, mote) in devices::MOTES.iter().enumerate() {
        let mut s = Series::new(format!("sound:mote{}", i + 1));
        for (ts, batch) in &out.trace {
            for t in batch {
                if t.get("receptor_id").and_then(Value::as_i64) == Some(i64::from(mote.0)) {
                    if let Some(v) = t.get("noise").and_then(Value::as_f64) {
                        s.push(ts.as_secs_f64(), v);
                    }
                }
            }
        }
        report.add_series(s);
    }
    // (d) X10 ON marks.
    for (i, det) in devices::X10.iter().enumerate() {
        let mut s = Series::new(format!("x10:detector{}", i + 1));
        for (ts, batch) in &out.trace {
            let fired = batch
                .iter()
                .any(|t| t.get("receptor_id").and_then(Value::as_i64) == Some(i64::from(det.0)));
            if fired {
                s.push(ts.as_secs_f64(), (i + 1) as f64);
            }
        }
        report.add_series(s);
    }
    report
}

/// The Figure 9 report: truth, ESP output, and accuracy.
pub fn figure9(duration: TimeDelta, seed: u64) -> Report {
    let run = run_home(duration, 2, seed);
    let mut report = Report::new("Figure 9: a person detector");
    report.add_series(Series::from_points(
        "reality",
        run.times
            .iter()
            .copied()
            .zip(run.truth.iter().map(|&b| if b { 1.0 } else { 0.0 })),
    ));
    report.add_series(Series::from_points(
        "esp",
        run.times
            .iter()
            .copied()
            .zip(run.detected.iter().map(|&b| if b { 1.0 } else { 0.0 })),
    ));
    report.scalar("accuracy", run.accuracy.accuracy());
    report.scalar("precision", run.accuracy.precision());
    report.scalar("recall", run.accuracy.recall());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn person_detector_accuracy_matches_paper_band() {
        let run = run_home(TimeDelta::from_secs(600), 2, 8);
        let acc = run.accuracy.accuracy();
        assert!(acc > 0.85, "detector accuracy {acc} (paper: 92%)");
        assert!(
            acc < 1.0,
            "perfect accuracy would mean the simulation is too easy"
        );
    }

    #[test]
    fn detector_flips_with_occupancy() {
        let run = run_home(TimeDelta::from_secs(600), 2, 8);
        // Both states must actually be reported.
        assert!(run.detected.iter().any(|&d| d));
        assert!(run.detected.iter().any(|&d| !d));
        // And transitions roughly track the square wave (10 half-periods).
        let flips = run.detected.windows(2).filter(|w| w[0] != w[1]).count();
        assert!((6..=40).contains(&flips), "detected {flips} flips");
    }

    #[test]
    fn threshold_three_is_stricter_than_two() {
        let two = run_home(TimeDelta::from_secs(300), 2, 8);
        let three = run_home(TimeDelta::from_secs(300), 3, 8);
        let on2 = two.detected.iter().filter(|&&d| d).count();
        let on3 = three.detected.iter().filter(|&&d| d).count();
        assert!(on3 <= on2, "3-of-3 voting fires less: {on3} vs {on2}");
        // Requiring every modality hurts recall.
        assert!(three.accuracy.recall() <= two.accuracy.recall() + 1e-9);
    }

    #[test]
    fn raw_traces_have_expected_shape() {
        let report = raw_traces(TimeDelta::from_secs(120), 8);
        assert_eq!(report.series.len(), 8);
        // Sound readings straddle the 525 threshold.
        let sound = report
            .series
            .iter()
            .find(|s| s.name == "sound:mote1")
            .unwrap();
        let (lo, hi) = sound.y_range().unwrap();
        assert!(
            lo < NOISE_THRESHOLD && hi > NOISE_THRESHOLD,
            "range [{lo}, {hi}]"
        );
    }
}
