//! Shared wiring between scenario builders and the ESP processor.

use esp_core::{EspProcessor, Pipeline, ProximityGroups, ReceptorBinding};
use esp_receptors::GroupSpec;
use esp_stream::Source;
use esp_types::{ReceptorId, ReceptorType, Result};

/// Register a scenario's [`GroupSpec`]s and receptors with a pipeline and
/// build the processor.
pub fn build_processor(
    group_specs: &[GroupSpec],
    pipeline: &Pipeline,
    sources: Vec<(ReceptorId, ReceptorType, Box<dyn Source>)>,
) -> Result<EspProcessor> {
    let mut groups = ProximityGroups::new();
    for spec in group_specs {
        let rtype = sources
            .iter()
            .find(|(id, _, _)| spec.members.contains(id))
            .map(|(_, t, _)| *t)
            .unwrap_or(ReceptorType::Other("unknown"));
        groups.add_group(rtype, spec.granule.as_str(), spec.members.iter().copied());
    }
    let bindings = sources
        .into_iter()
        .map(|(id, rtype, source)| ReceptorBinding::new(id, rtype, source))
        .collect();
    EspProcessor::build(groups, pipeline, bindings)
}

/// Adapt a `(ReceptorId, Box<dyn Source>)` list (single-type scenarios) to
/// the typed form [`build_processor`] takes.
pub fn with_type(
    sources: Vec<(ReceptorId, Box<dyn Source>)>,
    rtype: ReceptorType,
) -> Vec<(ReceptorId, ReceptorType, Box<dyn Source>)> {
    sources.into_iter().map(|(id, s)| (id, rtype, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_stream::ScriptedSource;
    use esp_types::{TimeDelta, Ts};

    #[test]
    fn builds_processor_from_specs() {
        let specs = vec![GroupSpec {
            granule: "g".into(),
            members: vec![ReceptorId(0)],
        }];
        let sources = with_type(
            vec![(
                ReceptorId(0),
                Box::new(ScriptedSource::new("s", vec![])) as _,
            )],
            ReceptorType::Rfid,
        );
        let proc = build_processor(&specs, &Pipeline::raw(), sources).unwrap();
        let out = proc.run(Ts::ZERO, TimeDelta::from_secs(1), 2).unwrap();
        assert_eq!(out.trace.len(), 2);
    }
}
