//! §5.3.1 ablation: receptor actuation vs window expansion.
//!
//! The redwood deployment's fixed 5-minute sampling forced ESP to expand
//! its smoothing window to 30 minutes, trading accuracy
//! (`ablation_window_expansion`). This experiment implements the paper's
//! proposed alternative: *actuate the sensors* so a granule-sized window
//! holds enough readings. A [`RateController`] watches each mote's
//! per-granule delivery count and speeds sampling up through loss bursts.

use std::collections::HashMap;
use std::sync::Arc;

use esp_core::{EspProcessor, Pipeline, ProximityGroups, RateController, ReceptorBinding};
use esp_metrics::{fraction_within, EpochYield, Report};
use esp_receptors::channel::GilbertElliottChannel;
use esp_receptors::mote::{EnvModel, MoteConfig, MoteSource};
use esp_receptors::redwood::{RedwoodConfig, RedwoodWorld};
use esp_types::{well_known, ReceptorId, ReceptorType, SampleRateHandle, TimeDelta, Ts, Value};

/// Result of one actuation run.
pub struct ActuationRun {
    /// Fraction of mote-granules with at least one delivered reading.
    pub epoch_yield: f64,
    /// Fraction of reported values within 1 °C of ground truth.
    pub within_1c: f64,
    /// Approximate total messages sent (the energy cost of actuation).
    pub messages_sent: f64,
    /// Final sample periods per mote (seconds).
    pub final_periods_s: Vec<f64>,
}

/// Run `n_motes` redwood-style motes for `days` with a granule-sized
/// (5-minute) window, optionally closing the actuation loop.
pub fn run_actuation(n_motes: usize, days: f64, actuate: bool, seed: u64) -> ActuationRun {
    let granule = TimeDelta::from_mins(5);
    let world = RedwoodWorld::new(RedwoodConfig::default());
    let env: Arc<dyn EnvModel> = Arc::new(world.clone());

    let mut groups = ProximityGroups::new();
    let mut bindings = Vec::new();
    let mut handles: Vec<SampleRateHandle> = Vec::new();
    for i in 0..n_motes {
        let id = ReceptorId(i as u32);
        groups.add_group(ReceptorType::Mote, format!("mote-{i}"), [id]);
        let source = MoteSource::new(
            MoteConfig {
                id,
                sample_period: granule,
                noise_sd: 0.15,
                fail: None,
                seed: seed.wrapping_add(i as u64),
                field: well_known::TEMP,
                voltage: None,
            },
            Arc::clone(&env),
            Box::new(GilbertElliottChannel::with_yield(
                seed.wrapping_add(1_000 + i as u64),
                0.40,
                7.5,
            )),
        );
        handles.push(source.actuation_handle());
        bindings.push(ReceptorBinding::new(
            id,
            ReceptorType::Mote,
            Box::new(source),
        ));
    }

    let mut controllers: Vec<RateController> = handles
        .iter()
        .map(|h| RateController::new(h.clone(), 2, TimeDelta::from_secs(30)))
        .collect();

    let mut proc =
        EspProcessor::build(groups, &Pipeline::raw(), bindings).expect("processor builds");
    let n_epochs = (days * 86_400_000.0 / granule.as_millis() as f64) as u64;

    let mut epoch_yield = EpochYield::new();
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    let mut messages_sent = 0.0;
    let mut t = Ts::ZERO;
    for _ in 0..n_epochs {
        // Energy accounting: samples this granule at the current periods.
        for h in &handles {
            messages_sent += granule.as_millis() as f64 / h.period().as_millis() as f64;
        }
        proc.step(t).expect("step");
        let trace = proc.take_output();
        let batch = &trace.last().expect("one epoch per step").1;
        // Per-mote delivered counts and windowed mean this granule.
        let mut per_mote: HashMap<i64, (u64, f64)> = HashMap::new();
        for tuple in batch {
            if let (Some(id), Some(v)) = (
                tuple.get("receptor_id").and_then(Value::as_i64),
                tuple.get("temp").and_then(Value::as_f64),
            ) {
                let e = per_mote.entry(id).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += v;
            }
        }
        for (i, controller) in controllers.iter_mut().enumerate() {
            let (n, sum) = per_mote.get(&(i as i64)).copied().unwrap_or((0, 0.0));
            epoch_yield.record(n > 0);
            if n > 0 {
                pairs.push((sum / n as f64, world.value(ReceptorId(i as u32), t)));
            }
            if actuate {
                controller.observe(n);
            }
        }
        t += granule;
    }
    ActuationRun {
        epoch_yield: epoch_yield.value(),
        within_1c: fraction_within(pairs.iter().copied(), 1.0),
        messages_sent,
        final_periods_s: handles.iter().map(|h| h.period().as_secs_f64()).collect(),
    }
}

/// Paper-§5.3.1 comparison: fixed 5-minute sampling vs actuated sampling,
/// both with a granule-sized smoothing window.
pub fn actuation_report(days: f64, seed: u64) -> Report {
    let mut report = Report::new("§5.3.1 ablation: receptor actuation (granule-sized window)");
    for (label, actuate) in [("fixed_rate", false), ("actuated", true)] {
        let run = run_actuation(8, days, actuate, seed);
        report.scalar(format!("{label}:epoch_yield"), run.epoch_yield);
        report.scalar(format!("{label}:within_1C"), run.within_1c);
        report.scalar(format!("{label}:messages_sent"), run.messages_sent);
        let mean_period =
            run.final_periods_s.iter().sum::<f64>() / run.final_periods_s.len() as f64;
        report.scalar(format!("{label}:mean_final_period_s"), mean_period);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actuation_recovers_yield_without_losing_accuracy() {
        let fixed = run_actuation(6, 0.5, false, 13);
        let actuated = run_actuation(6, 0.5, true, 13);
        // Fixed-rate with a granule window is stuck near the raw 40% yield.
        assert!(
            fixed.epoch_yield < 0.55,
            "fixed-rate yield {} should be poor",
            fixed.epoch_yield
        );
        // Actuation recovers most granules…
        assert!(
            actuated.epoch_yield > fixed.epoch_yield + 0.25,
            "actuated {} vs fixed {}",
            actuated.epoch_yield,
            fixed.epoch_yield
        );
        // …without the accuracy cost of window expansion.
        assert!(
            actuated.within_1c > 0.97,
            "granule-sized window keeps accuracy: {}",
            actuated.within_1c
        );
        // The price is energy: more messages sent.
        assert!(actuated.messages_sent > fixed.messages_sent * 1.3);
    }

    #[test]
    fn controller_relaxes_when_channel_is_good() {
        // With a near-perfect channel the controller should stay near the
        // initial period (no pointless energy burn).
        let granule = TimeDelta::from_mins(5);
        let world = RedwoodWorld::new(RedwoodConfig::default());
        let env: Arc<dyn EnvModel> = Arc::new(world);
        let source = MoteSource::new(
            MoteConfig {
                id: ReceptorId(0),
                sample_period: granule,
                noise_sd: 0.0,
                fail: None,
                seed: 1,
                field: well_known::TEMP,
                voltage: None,
            },
            env,
            Box::new(esp_receptors::channel::PerfectChannel),
        );
        let handle = source.actuation_handle();
        let mut controller = RateController::new(handle.clone(), 2, TimeDelta::from_secs(30));
        // Perfect delivery at 1 sample/granule: one speed-up to reach the
        // 2-reading target, then stable.
        for n in [1u64, 2, 2, 2, 2, 2] {
            controller.observe(n);
        }
        assert!(
            handle.period() >= TimeDelta::from_secs(150),
            "stays near initial"
        );
    }
}
