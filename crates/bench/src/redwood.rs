//! §5.2 redwood epoch-yield experiments, plus the §5.2.1 window-expansion
//! and §5.3.2 spatial-granule ablations.

use std::collections::HashMap;

use esp_core::{MergeStage, Pipeline, SmoothStage, TemporalGranule};
use esp_metrics::{fraction_within, EpochYield, Report};
use esp_receptors::redwood::{RedwoodConfig, RedwoodScenario};
use esp_types::{ReceptorType, SpatialGranule, TimeDelta, Ts, Value};

use crate::util::{build_processor, with_type};

/// Cleaning level for one redwood run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedwoodStage {
    /// Raw delivered readings.
    Raw,
    /// Smooth (temporal aggregation) only.
    Smooth,
    /// Smooth then Merge (spatial aggregation).
    SmoothMerge,
}

/// Result of one redwood run.
pub struct RedwoodRun {
    /// Epoch yield (reported / requested readings).
    pub epoch_yield: f64,
    /// Fraction of reported readings within 1 °C of ground truth.
    pub within_1c: f64,
    /// Mean absolute error of reported readings.
    pub mean_abs_error: f64,
}

fn redwood_pipeline(stage: RedwoodStage, granule: TemporalGranule) -> Pipeline {
    let smooth = move |_ctx: &esp_core::StageCtx| {
        Ok(Box::new(SmoothStage::windowed_mean(
            "smooth",
            granule,
            ["spatial_granule", "receptor_id"],
            "temp",
        )) as Box<dyn esp_core::Stage>)
    };
    let merge = move |ctx: &esp_core::StageCtx| {
        let g = ctx
            .granule
            .clone()
            .unwrap_or_else(|| SpatialGranule::new("?"));
        Ok(Box::new(MergeStage::outlier_filtered_mean(
            "merge",
            g,
            TemporalGranule::new(granule.granule()),
            "temp",
            1.0,
        )) as Box<dyn esp_core::Stage>)
    };
    match stage {
        RedwoodStage::Raw => Pipeline::raw(),
        RedwoodStage::Smooth => Pipeline::builder().per_receptor("smooth", smooth).build(),
        RedwoodStage::SmoothMerge => Pipeline::builder()
            .per_receptor("smooth", smooth)
            .per_group("merge", merge)
            .build(),
    }
}

/// Run the redwood scenario at one cleaning level.
///
/// Yield accounting follows §5.2: the application requests one reading per
/// mote per 5-minute epoch. Raw/Smooth: a request is served if that mote's
/// (possibly smoothed) stream produced a value this epoch. Merge: a
/// request is served if the mote's *granule* produced a value (spatial
/// interpolation masks the mote's own silence).
pub fn run_redwood(
    stage: RedwoodStage,
    config: RedwoodConfig,
    smooth_window: TimeDelta,
    days: f64,
    seed: u64,
) -> RedwoodRun {
    let scenario = RedwoodScenario::new(config, seed);
    let period = scenario.config().sample_period;
    let n_epochs = ((days * 86_400_000.0) / period.as_millis() as f64) as u64;
    let granule =
        TemporalGranule::with_window(period, smooth_window.max(period)).expect("window >= granule");

    let groups = scenario.groups();
    // mote id -> group index.
    let group_of: HashMap<u32, usize> = groups
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| g.members.iter().map(move |m| (m.0, gi)))
        .collect();
    let granule_index: HashMap<String, usize> = groups
        .iter()
        .enumerate()
        .map(|(gi, g)| (g.granule.clone(), gi))
        .collect();
    let n_motes = scenario.config().n_motes;

    let proc = build_processor(
        &groups,
        &redwood_pipeline(stage, granule),
        with_type(scenario.sources(), ReceptorType::Mote),
    )
    .expect("redwood processor builds");
    let out = proc.run(Ts::ZERO, period, n_epochs).expect("redwood run");

    let mut epoch_yield = EpochYield::new();
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for (ts, batch) in &out.trace {
        match stage {
            RedwoodStage::Raw | RedwoodStage::Smooth => {
                // Values per mote this epoch.
                let mut per_mote: HashMap<i64, f64> = HashMap::new();
                for t in batch {
                    if let (Some(id), Some(v)) = (
                        t.get("receptor_id").and_then(Value::as_i64),
                        t.get("temp").and_then(Value::as_f64),
                    ) {
                        per_mote.insert(id, v);
                    }
                }
                for m in 0..n_motes {
                    match per_mote.get(&(m as i64)) {
                        Some(v) => {
                            epoch_yield.record(true);
                            pairs.push((
                                *v,
                                scenario.mote_true_temp(esp_types::ReceptorId(m as u32), *ts),
                            ));
                        }
                        None => epoch_yield.record(false),
                    }
                }
            }
            RedwoodStage::SmoothMerge => {
                // Values per granule this epoch.
                let mut per_granule: HashMap<usize, f64> = HashMap::new();
                for t in batch {
                    if let (Some(g), Some(v)) = (
                        t.get("spatial_granule").and_then(Value::as_str),
                        t.get("temp").and_then(Value::as_f64),
                    ) {
                        if let Some(&gi) = granule_index.get(g) {
                            per_granule.insert(gi, v);
                        }
                    }
                }
                for m in 0..n_motes {
                    let gi = group_of[&(m as u32)];
                    match per_granule.get(&gi) {
                        Some(v) => {
                            epoch_yield.record(true);
                            pairs.push((*v, scenario.granule_true_temp(gi, *ts)));
                        }
                        None => epoch_yield.record(false),
                    }
                }
            }
        }
    }

    let within_1c = fraction_within(pairs.iter().copied(), 1.0);
    let mean_abs_error = esp_metrics::mean_absolute_error(pairs);
    RedwoodRun {
        epoch_yield: epoch_yield.value(),
        within_1c,
        mean_abs_error,
    }
}

/// The §5.2 staircase: raw → Smooth → Smooth+Merge.
pub fn epoch_yield_report(days: f64, seed: u64) -> Report {
    let mut report = Report::new("§5.2: redwood epoch yield by cleaning level");
    let window = TimeDelta::from_mins(30); // the paper's expanded window
    for (label, stage) in [
        ("raw", RedwoodStage::Raw),
        ("smooth", RedwoodStage::Smooth),
        ("smooth+merge", RedwoodStage::SmoothMerge),
    ] {
        let run = run_redwood(stage, RedwoodConfig::default(), window, days, seed);
        report.scalar(format!("{label}:epoch_yield"), run.epoch_yield);
        report.scalar(format!("{label}:within_1C"), run.within_1c);
        report.scalar(format!("{label}:mean_abs_error"), run.mean_abs_error);
    }
    report
}

/// §5.2.1 ablation: Smooth-stage yield/accuracy vs window width at the
/// fixed 5-minute sampling rate.
pub fn window_expansion_report(days: f64, seed: u64, windows_min: &[u64]) -> Report {
    let mut report = Report::new("§5.2.1 ablation: window expansion at fixed 5-minute sampling");
    let mut yield_series = esp_metrics::Series::new("epoch_yield");
    let mut acc_series = esp_metrics::Series::new("within_1C");
    for &w in windows_min {
        let run = run_redwood(
            RedwoodStage::Smooth,
            RedwoodConfig::default(),
            TimeDelta::from_mins(w),
            days,
            seed,
        );
        yield_series.push(w as f64, run.epoch_yield);
        acc_series.push(w as f64, run.within_1c);
        report.scalar(format!("window_{w}min:epoch_yield"), run.epoch_yield);
        report.scalar(format!("window_{w}min:within_1C"), run.within_1c);
    }
    report.add_series(yield_series);
    report.add_series(acc_series);
    report
}

/// §5.3.2 ablation: Merge yield/accuracy vs proximity-group size.
pub fn spatial_granule_report(days: f64, seed: u64, group_sizes: &[usize]) -> Report {
    let mut report = Report::new("§5.3.2 ablation: spatial granule (group) size");
    for &size in group_sizes {
        // Regroup by resizing pair spacing so larger groups still span a
        // small height band. Keep mote count divisible for clean groups.
        let config = RedwoodConfig {
            n_motes: 32,
            ..Default::default()
        };
        let scenario = RedwoodScenario::new(config.clone(), seed);
        // Build custom groups of `size` consecutive motes.
        let mut groups = Vec::new();
        let mut i = 0;
        while i < config.n_motes {
            let members: Vec<esp_types::ReceptorId> = (i..config.n_motes.min(i + size))
                .map(|m| esp_types::ReceptorId(m as u32))
                .collect();
            groups.push(esp_receptors::GroupSpec {
                granule: format!("band-{}", groups.len()),
                members,
            });
            i += size;
        }
        let run = run_redwood_with_groups(&scenario, groups, days, seed);
        report.scalar(format!("group_size_{size}:epoch_yield"), run.epoch_yield);
        report.scalar(format!("group_size_{size}:within_1C"), run.within_1c);
        report.scalar(
            format!("group_size_{size}:mean_abs_error"),
            run.mean_abs_error,
        );
    }
    report
}

/// Smooth+Merge over explicit groups (used by the spatial ablation).
fn run_redwood_with_groups(
    scenario: &RedwoodScenario,
    groups: Vec<esp_receptors::GroupSpec>,
    days: f64,
    _seed: u64,
) -> RedwoodRun {
    let period = scenario.config().sample_period;
    let n_epochs = ((days * 86_400_000.0) / period.as_millis() as f64) as u64;
    let granule = TemporalGranule::with_window(period, TimeDelta::from_mins(30)).unwrap();
    let n_motes = scenario.config().n_motes;

    let group_of: HashMap<u32, usize> = groups
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| g.members.iter().map(move |m| (m.0, gi)))
        .collect();
    let granule_index: HashMap<String, usize> = groups
        .iter()
        .enumerate()
        .map(|(gi, g)| (g.granule.clone(), gi))
        .collect();

    let proc = build_processor(
        &groups,
        &redwood_pipeline(RedwoodStage::SmoothMerge, granule),
        with_type(scenario.sources(), ReceptorType::Mote),
    )
    .expect("processor builds");
    let out = proc.run(Ts::ZERO, period, n_epochs).expect("run succeeds");

    let mut epoch_yield = EpochYield::new();
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for (ts, batch) in &out.trace {
        let mut per_granule: HashMap<usize, f64> = HashMap::new();
        for t in batch {
            if let (Some(g), Some(v)) = (
                t.get("spatial_granule").and_then(Value::as_str),
                t.get("temp").and_then(Value::as_f64),
            ) {
                if let Some(&gi) = granule_index.get(g) {
                    per_granule.insert(gi, v);
                }
            }
        }
        for m in 0..n_motes {
            let gi = group_of[&(m as u32)];
            match per_granule.get(&gi) {
                Some(v) => {
                    epoch_yield.record(true);
                    // §5.3.2 scoring: the application wants the value at
                    // *this mote's* location; a wider granule substitutes
                    // a band average, which is where the extra error
                    // comes from.
                    let truth = scenario.mote_true_temp(esp_types::ReceptorId(m as u32), *ts);
                    pairs.push((*v, truth));
                }
                None => epoch_yield.record(false),
            }
        }
    }
    RedwoodRun {
        epoch_yield: epoch_yield.value(),
        within_1c: fraction_within(pairs.iter().copied(), 1.0),
        mean_abs_error: esp_metrics::mean_absolute_error(pairs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAYS: f64 = 0.5; // half a simulated day keeps tests quick

    #[test]
    fn yield_staircase_raw_smooth_merge() {
        let w = TimeDelta::from_mins(30);
        let raw = run_redwood(RedwoodStage::Raw, RedwoodConfig::default(), w, DAYS, 3);
        let smooth = run_redwood(RedwoodStage::Smooth, RedwoodConfig::default(), w, DAYS, 3);
        let merged = run_redwood(
            RedwoodStage::SmoothMerge,
            RedwoodConfig::default(),
            w,
            DAYS,
            3,
        );
        assert!(
            (raw.epoch_yield - 0.40).abs() < 0.06,
            "raw yield ≈ 40%, got {}",
            raw.epoch_yield
        );
        assert!(
            smooth.epoch_yield > raw.epoch_yield + 0.2,
            "smooth {} ≫ raw {}",
            smooth.epoch_yield,
            raw.epoch_yield
        );
        assert!(
            merged.epoch_yield > smooth.epoch_yield,
            "merge {} > smooth {}",
            merged.epoch_yield,
            smooth.epoch_yield
        );
        assert!(
            merged.epoch_yield > 0.85,
            "merged yield {}",
            merged.epoch_yield
        );
    }

    #[test]
    fn smoothing_keeps_readings_accurate() {
        let w = TimeDelta::from_mins(30);
        let smooth = run_redwood(RedwoodStage::Smooth, RedwoodConfig::default(), w, DAYS, 3);
        assert!(
            smooth.within_1c > 0.9,
            "smoothed readings mostly within 1 °C, got {}",
            smooth.within_1c
        );
        let merged = run_redwood(
            RedwoodStage::SmoothMerge,
            RedwoodConfig::default(),
            w,
            DAYS,
            3,
        );
        assert!(
            merged.within_1c > 0.85,
            "merge trades a little accuracy, got {}",
            merged.within_1c
        );
        // The §5.2 trade: merge yields more but is (slightly) less accurate.
        assert!(merged.within_1c <= smooth.within_1c + 0.02);
    }

    #[test]
    fn wider_windows_raise_yield() {
        let narrow = run_redwood(
            RedwoodStage::Smooth,
            RedwoodConfig::default(),
            TimeDelta::from_mins(5),
            DAYS,
            3,
        );
        let wide = run_redwood(
            RedwoodStage::Smooth,
            RedwoodConfig::default(),
            TimeDelta::from_mins(30),
            DAYS,
            3,
        );
        assert!(
            wide.epoch_yield > narrow.epoch_yield + 0.15,
            "wide {} vs narrow {}",
            wide.epoch_yield,
            narrow.epoch_yield
        );
    }

    #[test]
    fn larger_groups_raise_yield_but_cost_accuracy() {
        let report = spatial_granule_report(DAYS, 3, &[2, 8]);
        let y2 = report.get_scalar("group_size_2:epoch_yield").unwrap();
        let y8 = report.get_scalar("group_size_8:epoch_yield").unwrap();
        let e2 = report.get_scalar("group_size_2:mean_abs_error").unwrap();
        let e8 = report.get_scalar("group_size_8:mean_abs_error").unwrap();
        assert!(y8 >= y2, "bigger groups mask more losses: {y8} vs {y2}");
        assert!(
            e8 > e2,
            "bigger groups average over a wider band: {e8} vs {e2}"
        );
    }
}
