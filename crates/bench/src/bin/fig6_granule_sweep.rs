//! Regenerates **Figure 6**: average relative error vs temporal-granule
//! size for the full Smooth+Arbitrate pipeline. Small granules cannot
//! straddle dropped-reading gaps; large granules lag the relocating items.
//!
//! Usage: `cargo run --release -p esp-bench --bin fig6_granule_sweep [seconds] [seed]`

use esp_bench::shelf::figure6;
use esp_metrics::ascii_plot;
use esp_types::TimeDelta;

fn main() {
    let mut args = std::env::args().skip(1);
    let secs: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(700);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let granules = [0.4, 1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0];
    let report = figure6(TimeDelta::from_secs(secs), seed, &granules);
    print!("{}", report.render_text());
    if let Some(s) = report.series.first() {
        print!("{}", ascii_plot(s, 64, 10));
    }
    report
        .write_json(std::path::Path::new("results"), "fig6_granule_sweep")
        .expect("write results/fig6_granule_sweep.json");
    println!("wrote results/fig6_granule_sweep.json");
}
