//! Regenerates **Figure 5**: average relative error of Query 1 under the
//! five pipeline configurations (Raw, Smooth only, Arbitrate only,
//! Arbitrate+Smooth, Smooth+Arbitrate).
//!
//! Usage: `cargo run --release -p esp-bench --bin fig5_pipeline_ablation [seconds] [seed]`

use esp_bench::shelf::figure5;
use esp_types::TimeDelta;

fn main() {
    let mut args = std::env::args().skip(1);
    let secs: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(700);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let report = figure5(TimeDelta::from_secs(secs), seed);
    print!("{}", report.render_text());
    report
        .write_json(std::path::Path::new("results"), "fig5_pipeline_ablation")
        .expect("write results/fig5_pipeline_ablation.json");
    println!("wrote results/fig5_pipeline_ablation.json");
}
