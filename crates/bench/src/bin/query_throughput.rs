//! query-throughput: the slot-compiled executor vs the reference
//! interpreter, measured in the same process on the same inputs.
//!
//! Four workloads — filter, projection, windowed group-by, and a
//! two-stream equi-join — each driven at several batch sizes per epoch.
//! Every (workload, size) cell runs twice from a fresh compile: once on
//! the compiled path (slot-resolved field references, borrowed window
//! slices, hash join) and once with
//! [`ContinuousQuery::set_reference_mode`] enabled, which strips all
//! resolution and re-runs the original string-resolving, tuple-cloning
//! interpreter. Both modes see byte-identical batches, so the reported
//! speedup isolates the execution path. Emitted row counts are asserted
//! equal across modes.
//!
//! The windowed group-by cell runs a third time with liveness-driven
//! column pruning ([`ContinuousQuery::enable_column_pruning`]) — the
//! query never reads `receptor_id`, so the live-column analysis nulls it
//! at ingest before the window buffers it. Pruning is a *memory*
//! optimization (window state stops retaining unread payload refs); the
//! reported `pruned_vs_compiled` ratio prices its ingest-time tuple
//! rebuild, so it is expected to sit at or below 1.0 on this narrow
//! schema. Output equality with the unpruned compiled run is asserted.
//!
//! Every cell also runs a **chunk-path** arm: the same rows arrive as
//! pre-built columnar chunks ([`ContinuousQuery::push_chunk`], as the
//! gateway's ingest now delivers them) and results are drained with
//! [`ContinuousQuery::tick_chunk`]. Window state stays columnar and the
//! fused scan reads columns in place, so no per-row tuple exists anywhere
//! on the path. Output equality with the row-fed compiled run is
//! asserted; the headline gate is chunk ≥ 1.5x compiled on the windowed
//! group-by.
//!
//! Writes `results/BENCH_query.json`.
//!
//! Usage: `query-throughput [max_rows_per_epoch]` (default 100 000; CI's
//! bench-smoke job passes a small cap to stay under its time budget).

use std::sync::Arc;
use std::time::Instant;

use esp_query::{ContinuousQuery, Engine};
use esp_types::{registry, Batch, Chunk, DataType, Field, Schema, Ts, Tuple, Value};

/// One benchmarked query shape.
struct Workload {
    name: &'static str,
    sql: &'static str,
    streams: &'static [&'static str],
    /// Rows pushed per stream per epoch. The equi-join's reference mode is
    /// an O(n²) cross product, so its sizes stay small enough to finish.
    sizes: &'static [usize],
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "filter",
        sql: "SELECT * FROM s [Range By 'NOW'] WHERE value > 0.5 AND receptor_id < 8",
        streams: &["s"],
        sizes: &[1_000, 10_000, 100_000],
    },
    Workload {
        name: "project",
        sql: "SELECT tag_id, value * 2 AS scaled, receptor_id FROM s [Range By 'NOW']",
        streams: &["s"],
        sizes: &[1_000, 10_000, 100_000],
    },
    Workload {
        name: "group_by",
        sql: "SELECT tag_id, count(*) AS n, avg(value) AS mean \
              FROM s [Range By '5 sec'] GROUP BY tag_id",
        streams: &["s"],
        sizes: &[1_000, 10_000, 100_000],
    },
    Workload {
        name: "equi_join",
        sql: "SELECT a.tag_id, a.value AS av, b.value AS bv \
              FROM a [Range By 'NOW'], b [Range By 'NOW'] \
              WHERE a.tag_id = b.tag_id AND a.receptor_id < b.receptor_id",
        streams: &["a", "b"],
        sizes: &[300, 1_000, 3_000],
    },
];

const EPOCH_MS: u64 = 1_000;
const WARMUP_EPOCHS: u64 = 2;
const MEASURED_EPOCHS: u64 = 4;

fn readings_schema() -> Arc<Schema> {
    registry::intern(
        &Schema::new(vec![
            Field::new("receptor_id", DataType::Int),
            Field::new("tag_id", DataType::Str),
            Field::new("value", DataType::Float),
        ])
        .expect("readings schema"),
    )
}

/// Deterministic splitmix-style generator: the two modes must see the
/// same rows, and reruns must reproduce the same JSON.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn batch(schema: &Arc<Schema>, ts: Ts, n: usize, rng: &mut Rng) -> Batch {
    (0..n)
        .map(|_| {
            let r = rng.next();
            Tuple::new_unchecked(
                Arc::clone(schema),
                ts,
                vec![
                    Value::Int((r % 16) as i64),
                    Value::str(format!("tag-{}", (r >> 8) % 64)),
                    Value::Float(((r >> 16) % 1_000) as f64 / 1_000.0),
                ],
            )
        })
        .collect()
}

/// Push `feeds[epoch][stream]` and tick; returns (secs, rows_in, rows_out).
fn drive(
    q: &mut ContinuousQuery,
    streams: &[&str],
    feeds: &[Vec<Batch>],
    first_epoch: u64,
) -> (f64, u64, u64) {
    let mut rows_in = 0u64;
    let mut rows_out = 0u64;
    let t0 = Instant::now();
    for (e, per_stream) in feeds.iter().enumerate() {
        for (i, name) in streams.iter().enumerate() {
            q.push(name, &per_stream[i]).expect("push batch");
            rows_in += per_stream[i].len() as u64;
        }
        let epoch = Ts::from_millis((first_epoch + e as u64) * EPOCH_MS);
        rows_out += q.tick(epoch).expect("tick").len() as u64;
    }
    (t0.elapsed().as_secs_f64(), rows_in, rows_out)
}

/// Push pre-built chunks and tick on the chunk path; returns
/// (secs, rows_in, rows_out). The chunks exist before the clock starts —
/// mirroring the row arm, whose batches are also pre-materialized, and
/// the gateway, which builds chunks at frame-decode time.
fn drive_chunks(
    q: &mut ContinuousQuery,
    streams: &[&str],
    feeds: &[Vec<Chunk>],
    first_epoch: u64,
) -> (f64, u64, u64) {
    let mut rows_in = 0u64;
    let mut rows_out = 0u64;
    let t0 = Instant::now();
    for (e, per_stream) in feeds.iter().enumerate() {
        for (i, name) in streams.iter().enumerate() {
            rows_in += per_stream[i].len() as u64;
            q.push_chunk(name, per_stream[i].clone())
                .expect("push chunk");
        }
        let epoch = Ts::from_millis((first_epoch + e as u64) * EPOCH_MS);
        rows_out += q.tick_chunk(epoch).expect("tick").len() as u64;
    }
    (t0.elapsed().as_secs_f64(), rows_in, rows_out)
}

fn main() {
    let max_rows: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("max_rows_per_epoch must be a number"))
        .unwrap_or(100_000);

    let engine = Engine::new();
    let schema = readings_schema();
    let mut report = esp_metrics::Report::new(
        "query-throughput: slot-compiled executor vs reference interpreter (same run, same rows)",
    );
    report.scalar("max_rows_per_epoch", max_rows as f64);

    let mut worst_key_speedup = f64::INFINITY;
    let mut worst_chunk_group_by = f64::INFINITY;
    for w in WORKLOADS {
        let sizes: Vec<usize> = w.sizes.iter().copied().filter(|&s| s <= max_rows).collect();
        for &n in &sizes {
            // One shared input trace per cell; both modes replay it.
            let mut rng = Rng(0xE5B0 ^ n as u64);
            let total = WARMUP_EPOCHS + MEASURED_EPOCHS;
            let feeds: Vec<Vec<Batch>> = (0..total)
                .map(|e| {
                    w.streams
                        .iter()
                        .map(|_| batch(&schema, Ts::from_millis(e * EPOCH_MS), n, &mut rng))
                        .collect()
                })
                .collect();
            let (warm, meas) = feeds.split_at(WARMUP_EPOCHS as usize);

            let mut compiled = engine.compile(w.sql).expect("query compiles");
            drive(&mut compiled, w.streams, warm, 0);
            let (secs_c, rows, out_c) = drive(&mut compiled, w.streams, meas, WARMUP_EPOCHS);

            let mut reference = engine.compile(w.sql).expect("query compiles");
            reference.set_reference_mode(true);
            drive(&mut reference, w.streams, warm, 0);
            let (secs_r, _, out_r) = drive(&mut reference, w.streams, meas, WARMUP_EPOCHS);

            assert_eq!(
                out_c, out_r,
                "{} @ {n}: compiled and reference paths must emit the same rows",
                w.name
            );

            let rps_c = rows as f64 / secs_c;
            let rps_r = rows as f64 / secs_r;
            let speedup = rps_c / rps_r;

            // Pruning only engages when the query leaves input columns
            // unread; the group-by ignores `receptor_id`, so it is the
            // cell that measures the liveness-driven ingest path.
            if w.name == "group_by" {
                let mut pruned = engine.compile(w.sql).expect("query compiles");
                assert!(
                    pruned.enable_column_pruning(),
                    "group_by leaves receptor_id dead, pruning must engage"
                );
                drive(&mut pruned, w.streams, warm, 0);
                let (secs_p, _, out_p) = drive(&mut pruned, w.streams, meas, WARMUP_EPOCHS);
                assert_eq!(
                    out_c, out_p,
                    "{} @ {n}: pruned and unpruned paths must emit the same rows",
                    w.name
                );
                let rps_p = rows as f64 / secs_p;
                report
                    .scalar(format!("{}_{n}_pruned_rows_per_sec", w.name), rps_p)
                    .scalar(format!("{}_{n}_pruned_vs_compiled", w.name), rps_p / rps_c);
                println!(
                    "{:>10} @ {:>6} rows/epoch: pruned   {:>12.0} rows/s ({:.2}x vs compiled)",
                    w.name,
                    n,
                    rps_p,
                    rps_p / rps_c
                );
            }
            // Chunk-path arm: same rows, delivered columnar.
            let chunk_feeds: Vec<Vec<Chunk>> = feeds
                .iter()
                .map(|per_stream| {
                    per_stream
                        .iter()
                        .map(|b| Chunk::from_tuples(&schema, b).expect("uniform schema"))
                        .collect()
                })
                .collect();
            let (warm_k, meas_k) = chunk_feeds.split_at(WARMUP_EPOCHS as usize);
            let mut chunked = engine.compile(w.sql).expect("query compiles");
            drive_chunks(&mut chunked, w.streams, warm_k, 0);
            let (secs_k, _, out_k) = drive_chunks(&mut chunked, w.streams, meas_k, WARMUP_EPOCHS);
            assert_eq!(
                out_c, out_k,
                "{} @ {n}: chunk and row paths must emit the same rows",
                w.name
            );
            let rps_k = rows as f64 / secs_k;
            report
                .scalar(format!("{}_{n}_chunk_rows_per_sec", w.name), rps_k)
                .scalar(format!("{}_{n}_chunk_vs_compiled", w.name), rps_k / rps_c);
            println!(
                "{:>10} @ {:>6} rows/epoch: chunk    {:>12.0} rows/s ({:.2}x vs compiled)",
                w.name,
                n,
                rps_k,
                rps_k / rps_c
            );
            if w.name == "group_by" {
                worst_chunk_group_by = worst_chunk_group_by.min(rps_k / rps_c);
            }

            if w.name == "group_by" || w.name == "equi_join" {
                worst_key_speedup = worst_key_speedup.min(speedup);
            }
            report
                .scalar(format!("{}_{n}_compiled_rows_per_sec", w.name), rps_c)
                .scalar(format!("{}_{n}_reference_rows_per_sec", w.name), rps_r)
                .scalar(format!("{}_{n}_speedup", w.name), speedup)
                .scalar(format!("{}_{n}_rows_out", w.name), out_c as f64);
            println!(
                "{:>10} @ {:>6} rows/epoch: compiled {:>12.0} rows/s, reference {:>12.0} rows/s \
                 ({speedup:.2}x, {out_c} rows out)",
                w.name, n, rps_c, rps_r
            );
        }
    }

    println!(
        "target >= 2x on windowed group-by and equi-join: {} (worst {:.2}x)",
        if worst_key_speedup >= 2.0 {
            "MET"
        } else {
            "MISSED"
        },
        worst_key_speedup
    );
    println!(
        "target >= 1.5x chunk path on windowed group-by: {} (worst {:.2}x)",
        if worst_chunk_group_by >= 1.5 {
            "MET"
        } else {
            "MISSED"
        },
        worst_chunk_group_by
    );
    println!("{}", report.render_text());
    report
        .write_json(std::path::Path::new("results"), "BENCH_query")
        .expect("write results/BENCH_query.json");
    println!("wrote results/BENCH_query.json");
}
