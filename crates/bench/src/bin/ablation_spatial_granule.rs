//! **§5.3.2 ablation**: epoch yield and error vs proximity-group size.
//! Larger spatial granules mask more lost readings but substitute a wider
//! band average for each mote's true local value.
//!
//! Usage: `cargo run --release -p esp-bench --bin ablation_spatial_granule [days] [seed]`

use esp_bench::redwood::spatial_granule_report;

fn main() {
    let mut args = std::env::args().skip(1);
    let days: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2.0);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let report = spatial_granule_report(days, seed, &[1, 2, 4, 8]);
    print!("{}", report.render_text());
    report
        .write_json(std::path::Path::new("results"), "ablation_spatial_granule")
        .expect("write results/ablation_spatial_granule.json");
    println!("wrote results/ablation_spatial_granule.json");
}
