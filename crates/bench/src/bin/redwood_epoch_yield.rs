//! Regenerates the **§5.2 epoch-yield staircase**: raw ≈ 40% → Smooth
//! ≈ 77% (≈ 99% of readings within 1 °C) → Smooth+Merge ≈ 92%
//! (≈ 94% within 1 °C).
//!
//! Usage: `cargo run --release -p esp-bench --bin redwood_epoch_yield [days] [seed]`

use esp_bench::redwood::epoch_yield_report;

fn main() {
    let mut args = std::env::args().skip(1);
    let days: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3.5);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let report = epoch_yield_report(days, seed);
    print!("{}", report.render_text());
    report
        .write_json(std::path::Path::new("results"), "redwood_epoch_yield")
        .expect("write results/redwood_epoch_yield.json");
    println!("wrote results/redwood_epoch_yield.json");
}
