//! Regenerates **Figure 7**: three lab motes, one failing dirty; the naive
//! average is dragged past 100 °C while ESP (Point + Merge mean±1σ)
//! tracks the two functional motes.
//!
//! Usage: `cargo run --release -p esp-bench --bin fig7_outlier_detection [days] [seed]`

use esp_bench::lab::figure7;
use esp_metrics::ascii_plot;

fn main() {
    let mut args = std::env::args().skip(1);
    let days: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2.0);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let report = figure7(days, seed);
    print!("{}", report.render_text());
    for name in ["mote3", "average", "esp"] {
        if let Some(s) = report.series.iter().find(|s| s.name == name) {
            print!("{}", ascii_plot(s, 72, 8));
        }
    }
    report
        .write_json(std::path::Path::new("results"), "fig7_outlier_detection")
        .expect("write results/fig7_outlier_detection.json");
    println!("wrote results/fig7_outlier_detection.json");
}
