//! **§5.2.1 ablation**: Smooth-stage epoch yield and accuracy vs window
//! width at the fixed 5-minute sampling rate — why ESP expanded the
//! redwood window to 30 minutes.
//!
//! Usage: `cargo run --release -p esp-bench --bin ablation_window_expansion [days] [seed]`

use esp_bench::redwood::window_expansion_report;

fn main() {
    let mut args = std::env::args().skip(1);
    let days: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2.0);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let report = window_expansion_report(days, seed, &[5, 10, 15, 30, 45, 60]);
    print!("{}", report.render_text());
    report
        .write_json(std::path::Path::new("results"), "ablation_window_expansion")
        .expect("write results/ablation_window_expansion.json");
    println!("wrote results/ablation_window_expansion.json");
}
