//! **§5.3.1 ablation**: receptor actuation. ESP speeds sensors up through
//! loss bursts so a granule-sized window suffices — recovering yield
//! *without* the accuracy cost of window expansion, at the price of
//! radio energy.
//!
//! Usage: `cargo run --release -p esp-bench --bin ablation_actuation [days] [seed]`

use esp_bench::actuation::actuation_report;

fn main() {
    let mut args = std::env::args().skip(1);
    let days: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2.0);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let report = actuation_report(days, seed);
    print!("{}", report.render_text());
    report
        .write_json(std::path::Path::new("results"), "ablation_actuation")
        .expect("write results/ablation_actuation.json");
    println!("wrote results/ablation_actuation.json");
}
