//! Regenerates **Figure 3(a–d)**: Query 1 shelf-count traces over raw data,
//! after Smooth, and after Smooth+Arbitrate, plus the §4 headline numbers
//! (average relative error ≈ 0.41 raw, ≈ 0.04 cleaned; restock alerts
//! ≈ 2/s raw vs ≈ 0 cleaned).
//!
//! Usage: `cargo run --release -p esp-bench --bin fig3_shelf_traces [seconds] [seed]`

use esp_bench::shelf::figure3;
use esp_metrics::ascii_plot;
use esp_types::TimeDelta;

fn main() {
    let mut args = std::env::args().skip(1);
    let secs: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(700);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let report = figure3(TimeDelta::from_secs(secs), seed);
    print!("{}", report.render_text());
    for name in [
        "reality:shelf0",
        "raw:shelf0",
        "smooth:shelf0",
        "arbitrate:shelf0",
    ] {
        if let Some(s) = report.series.iter().find(|s| s.name == name) {
            print!("{}", ascii_plot(s, 72, 8));
        }
    }
    report
        .write_json(std::path::Path::new("results"), "fig3_shelf_traces")
        .expect("write results/fig3_shelf_traces.json");
    println!("wrote results/fig3_shelf_traces.json");
}
