//! durability-overhead: what does crash-safety cost, and how fast is the
//! way back up?
//!
//! For 1, 4, and 8 shards the same RFID fleet (8 shelves × 2 readers,
//! stateful smoothing per receptor) is pushed through the gateway with
//! the write-ahead log on in both arms: once with the epoch-checkpoint
//! interval pushed past the run (WAL only), once at a 500 ms cadence.
//! The gateway clocks every traversal of its checkpoint path (snapshot
//! serialization, atomic file publication, retention), and the reported
//! overhead is that time as a share of the checkpointed run's CPU — a
//! direct measurement that stays stable on small machines, where
//! comparing two whole multi-threaded runs swings by tens of percent
//! with scheduler luck. The arm-to-arm CPU delta and a plain
//! durability-off run are reported alongside for context. A final
//! run per shard count respawns the gateway on the checkpointed
//! directory with no clients at all, so its wall time is the pure
//! time-to-recover: load the latest snapshots, replay the WAL suffix,
//! drain. Writes `results/BENCH_durability.json`.
//!
//! Usage: `durability-overhead [total_readings]` (default 160 000).

use std::path::{Path, PathBuf};
use std::thread;
use std::time::{Duration, Instant};

use esp_core::{Pipeline, SmoothStage};
use esp_gateway::{
    DurabilityConfig, Gateway, GatewayClient, GatewayConfig, GatewayGroup, GatewayOutput,
};
use esp_receptors::wire::Reading;
use esp_types::{ReceptorId, ReceptorType, TimeDelta, Ts};

const N_CLIENTS: usize = 2;

/// 8 shelves × 2 RFID readers: 8 spatial granules, enough spread that an
/// 8-shard gateway still gets distinct work per shard.
fn fleet() -> (Vec<GatewayGroup>, Vec<ReceptorId>) {
    let mut groups = Vec::new();
    let mut receptors = Vec::new();
    let mut next_id = 0u32;
    for shelf in 0..8u32 {
        let members: Vec<ReceptorId> = (0..2)
            .map(|_| {
                let id = ReceptorId(next_id);
                next_id += 1;
                receptors.push(id);
                id
            })
            .collect();
        groups.push(GatewayGroup {
            receptor_type: ReceptorType::Rfid,
            granule: format!("shelf{shelf}"),
            members,
        });
    }
    (groups, receptors)
}

/// Stateful smoothing so checkpoints carry real window state, not empty
/// processors — the snapshot cost is part of what this bench measures.
/// The window (500 ms = 5 epochs) is deliberately much shorter than the
/// run, so snapshots serialize bounded steady-state history rather than
/// an ever-growing prefix of the whole run.
fn pipeline() -> Pipeline {
    Pipeline::builder()
        .per_receptor("smooth", |_| {
            Ok(Box::new(SmoothStage::count_by_key(
                "smooth",
                TimeDelta::from_millis(500),
                ["spatial_granule", "tag_id"],
            )))
        })
        .build()
}

/// Checkpoint cadence of the measured arm.
fn ckpt_interval() -> TimeDelta {
    TimeDelta::from_millis(500)
}
/// "Checkpoint-off" arm: an interval far past the run, so the WAL runs
/// but no snapshot is ever cut.
fn ckpt_never() -> TimeDelta {
    TimeDelta::from_secs(3600)
}

fn config(n_shards: usize, durable: Option<(&Path, TimeDelta)>) -> GatewayConfig {
    let (groups, _) = fleet();
    let mut config = GatewayConfig::new(groups);
    config.n_shards = n_shards;
    config.edge_capacity = 512;
    config.period = TimeDelta::from_millis(100);
    config.min_connections = N_CLIENTS;
    config.durability =
        durable.map(|(dir, interval)| DurabilityConfig::new(dir).checkpoint_every(interval));
    config
}

/// Whole-process CPU seconds (user + system, every thread) from
/// `/proc/self/stat`. On a small shared box, wall clock is dominated by
/// scheduler noise; the *cycles* durability burns are what the overhead
/// question is really about, and they are stable run to run. Returns
/// `None` off Linux, in which case the bench falls back to wall time.
fn proc_cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields 14/15 (utime/stime) count in USER_HZ ticks; the kernel ABI
    // pins USER_HZ at 100 on every modern platform.
    let after_comm = stat.rsplit(')').next()?;
    let mut fields = after_comm.split_whitespace();
    let utime: f64 = fields.nth(11)?.parse().ok()?;
    let stime: f64 = fields.next()?.parse().ok()?;
    Some((utime + stime) / 100.0)
}

/// Drive one gateway run to completion; returns (wall seconds, CPU
/// seconds, output).
fn run(
    n_shards: usize,
    durable: Option<(&Path, TimeDelta)>,
    ticks: u64,
) -> (f64, f64, GatewayOutput) {
    let gateway = Gateway::spawn(config(n_shards, durable), |_| pipeline()).expect("spawn");
    let addr = gateway.local_addr();
    let (_, receptors) = fleet();
    let mut partitions: Vec<Vec<ReceptorId>> = vec![Vec::new(); N_CLIENTS];
    for (i, r) in receptors.into_iter().enumerate() {
        partitions[i % N_CLIENTS].push(r);
    }

    let cpu0 = proc_cpu_seconds();
    let t0 = Instant::now();
    let clients: Vec<_> = partitions
        .into_iter()
        .map(|part| {
            thread::spawn(move || {
                // The reconnect path is part of the durability surface;
                // drive it even though the first attempt succeeds here.
                let mut client = GatewayClient::connect_with_retry(
                    addr,
                    TimeDelta::ZERO,
                    3,
                    Duration::from_millis(50),
                )
                .expect("connect bench client");
                for tick in 0..ticks {
                    let ts = Ts::from_millis(tick);
                    for &id in &part {
                        let reading = Reading::Tag {
                            receptor: id,
                            ts,
                            tag_id: format!("tag-{}-{}", id.0 % 8, tick % 8),
                        };
                        client.send(&reading).expect("send frame");
                    }
                }
                client.finish().expect("close bench client");
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let output = gateway.finish().expect("drain gateway");
    let wall = t0.elapsed().as_secs_f64();
    let cpu = match (cpu0, proc_cpu_seconds()) {
        (Some(a), Some(b)) => b - a,
        _ => wall,
    };
    (wall, cpu, output)
}

/// Respawn on the durable directory with no clients: everything the run
/// emits comes back from snapshots + WAL replay.
fn recover(n_shards: usize, durable_dir: &Path) -> (f64, GatewayOutput) {
    let t0 = Instant::now();
    let gateway = Gateway::spawn(
        config(n_shards, Some((durable_dir, ckpt_interval()))),
        |_| pipeline(),
    )
    .expect("respawn on durable dir");
    let output = gateway.finish().expect("replay + drain");
    (t0.elapsed().as_secs_f64(), output)
}

fn main() {
    let total: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("total_readings must be a number"))
        .unwrap_or(160_000);
    let (_, receptors) = fleet();
    let ticks = total.div_ceil(receptors.len() as u64);

    let mut scalars: Vec<(String, f64)> = Vec::new();
    let mut last_snapshot = None;
    let mut max_overhead = f64::NEG_INFINITY;
    for n_shards in [1usize, 4, 8] {
        let dir: PathBuf = std::env::temp_dir().join(format!(
            "esp-bench-durability-{n_shards}-{}",
            std::process::id()
        ));

        // Context: one plain durability-off run for the headline
        // throughput cost of turning the subsystem on at all.
        let (wall_plain, _, out_plain) = run(n_shards, None, ticks);

        // Min of three per arm, arms interleaved: on a small box the
        // scheduler convoys a dozen threads unpredictably, so any single
        // sample (wall *or* CPU) can be off by tens of percent. The
        // minimum CPU over alternating runs is a stable estimate of the
        // intrinsic cost of each arm, and both arms carry the identical
        // WAL load, so the ratio isolates the checkpoint protocol.
        let mut wall_off = f64::INFINITY;
        let mut cpu_off = f64::INFINITY;
        let mut wall_on = f64::INFINITY;
        let mut cpu_on = f64::INFINITY;
        let mut ckpt_frac = f64::INFINITY;
        let mut out_on = None;
        for _ in 0..3 {
            let _ = std::fs::remove_dir_all(&dir);
            let (w, c, _) = run(n_shards, Some((&dir, ckpt_never())), ticks);
            wall_off = wall_off.min(w);
            cpu_off = cpu_off.min(c);
            // Each arm starts from a clean directory; the last
            // checkpointed run is the one recovery replays below.
            let _ = std::fs::remove_dir_all(&dir);
            let (w, c, o) = run(n_shards, Some((&dir, ckpt_interval())), ticks);
            wall_on = wall_on.min(w);
            cpu_on = cpu_on.min(c);
            // Numerator and denominator from the same run: pairing one
            // run's checkpoint time with another run's CPU lets noise
            // leak back into the ratio.
            ckpt_frac = ckpt_frac.min(o.stats.checkpoint_nanos as f64 / 1e9 / c);
            out_on = Some(o);
        }
        let out_on = out_on.expect("ran the checkpointed arm");
        let (wall_recover, out_replayed) = recover(n_shards, &dir);
        assert_eq!(
            out_replayed.stats.readings, 0,
            "recovery run must ingest nothing live"
        );
        // Replay re-emits the epochs past the last snapshot (everything
        // before it was already published before the "crash"); each one
        // must match the durable run's epoch byte for byte.
        let durable_trace = out_on.merged_trace();
        let replayed_trace = out_replayed.merged_trace();
        assert!(
            !replayed_trace.is_empty(),
            "{n_shards} shards: replay produced no epochs"
        );
        for (ts, batch) in &replayed_trace {
            let original = durable_trace
                .iter()
                .find(|(t, _)| t == ts)
                .unwrap_or_else(|| panic!("{n_shards} shards: replayed epoch {ts:?} never ran"));
            assert_eq!(
                format!("{batch:?}"),
                format!("{:?}", original.1),
                "{n_shards} shards: replayed epoch {ts:?} diverged from the durable run"
            );
        }

        let tput_plain = out_plain.stats.readings as f64 / wall_plain;
        let tput_off = out_on.stats.readings as f64 / wall_off;
        let tput_on = out_on.stats.readings as f64 / wall_on;
        // The gated number: measured checkpoint-path CPU over the same
        // run's total CPU. The arm delta below is context only.
        let overhead_pct = ckpt_frac * 100.0;
        let arm_delta_pct = (cpu_on - cpu_off) / cpu_off * 100.0;
        max_overhead = max_overhead.max(overhead_pct);
        println!(
            "{n_shards} shard(s): {tput_plain:.0}/s plain, {tput_off:.0}/s WAL-only, \
             {tput_on:.0}/s checkpointed ({overhead_pct:.1}% cpu in {} checkpoints \
             [{:.1} ms], {arm_delta_pct:+.1}% arm delta, {} WAL records), \
             recovered {} tuples in {:.0} ms",
            out_on.stats.checkpoints,
            out_on.stats.checkpoint_nanos as f64 / 1e6,
            out_on.stats.wal_records,
            out_replayed.total_tuples(),
            wall_recover * 1e3,
        );
        scalars.push((format!("shards{n_shards}_throughput_plain"), tput_plain));
        scalars.push((format!("shards{n_shards}_throughput_wal_only"), tput_off));
        scalars.push((format!("shards{n_shards}_throughput_checkpointed"), tput_on));
        scalars.push((format!("shards{n_shards}_cpu_wal_only_secs"), cpu_off));
        scalars.push((format!("shards{n_shards}_cpu_checkpointed_secs"), cpu_on));
        scalars.push((
            format!("shards{n_shards}_checkpoint_ms"),
            out_on.stats.checkpoint_nanos as f64 / 1e6,
        ));
        scalars.push((format!("shards{n_shards}_overhead_pct"), overhead_pct));
        scalars.push((format!("shards{n_shards}_arm_delta_pct"), arm_delta_pct));
        scalars.push((
            format!("shards{n_shards}_wal_records"),
            out_on.stats.wal_records as f64,
        ));
        scalars.push((
            format!("shards{n_shards}_checkpoints"),
            out_on.stats.checkpoints as f64,
        ));
        scalars.push((format!("shards{n_shards}_recover_ms"), wall_recover * 1e3));
        last_snapshot = Some(out_on.stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let stats = last_snapshot.expect("at least one durable run");
    let mut report =
        stats.report("durability-overhead: epoch checkpoints vs WAL-only gateway, 1/4/8 shards");
    for (name, value) in &scalars {
        report.scalar(name, *value);
    }
    report.scalar("max_overhead_pct", max_overhead);
    println!("{}", report.render_text());
    println!(
        "worst-case checkpoint overhead: {max_overhead:.1}% of run cpu — target < 15%: {}",
        if max_overhead < 15.0 { "MET" } else { "MISSED" }
    );

    report
        .write_json(Path::new("results"), "BENCH_durability")
        .expect("write results/BENCH_durability.json");
    println!("wrote results/BENCH_durability.json");
}
