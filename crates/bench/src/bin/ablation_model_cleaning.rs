//! **§6.3.1 ablation**: BBQ-style model-based cleaning. An online
//! voltage→temperature regression per device detects a fail-dirty sensor
//! from a single mote — no healthy neighbours required — and can either
//! drop or correct the polluted readings.
//!
//! Usage: `cargo run --release -p esp-bench --bin ablation_model_cleaning [days] [seed]`

use esp_bench::model::model_report;
use esp_metrics::ascii_plot;

fn main() {
    let mut args = std::env::args().skip(1);
    let days: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2.0);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let report = model_report(days, seed);
    print!("{}", report.render_text());
    for name in ["raw", "model_correct"] {
        if let Some(s) = report.series.iter().find(|s| s.name == name) {
            print!("{}", ascii_plot(s, 72, 8));
        }
    }
    report
        .write_json(std::path::Path::new("results"), "ablation_model_cleaning")
        .expect("write results/ablation_model_cleaning.json");
    println!("wrote results/ablation_model_cleaning.json");
}
