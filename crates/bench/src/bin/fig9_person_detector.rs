//! Regenerates **Figure 9(a–e)**: the digital-home person detector —
//! reality, raw per-modality traces, and the ESP output (paper: 92%
//! accuracy).
//!
//! Usage: `cargo run --release -p esp-bench --bin fig9_person_detector [seconds] [seed]`

use esp_bench::home::{figure9, raw_traces};
use esp_metrics::ascii_plot;
use esp_types::TimeDelta;

fn main() {
    let mut args = std::env::args().skip(1);
    let secs: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(600);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let duration = TimeDelta::from_secs(secs);
    let raw = raw_traces(duration, seed);
    print!("{}", raw.render_text());
    let report = figure9(duration, seed);
    print!("{}", report.render_text());
    for name in ["reality", "esp"] {
        if let Some(s) = report.series.iter().find(|s| s.name == name) {
            print!("{}", ascii_plot(s, 72, 4));
        }
    }
    raw.write_json(std::path::Path::new("results"), "fig9_raw_traces")
        .expect("write results/fig9_raw_traces.json");
    report
        .write_json(std::path::Path::new("results"), "fig9_person_detector")
        .expect("write results/fig9_person_detector.json");
    println!("wrote results/fig9_person_detector.json and results/fig9_raw_traces.json");
}
