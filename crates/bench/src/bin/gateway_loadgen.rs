//! gateway-loadgen: drive the TCP receptor gateway at full tilt.
//!
//! Four client threads emulate a mixed receptor fleet — RFID shelf readers
//! (tag sightings), temperature motes (scalar and dual temp+voltage
//! frames), and X10 motion detectors (ON events) — encoding every reading
//! into a checksummed wire frame and pushing it through a per-connection
//! Gilbert–Elliott channel (bursty loss + corruption) before it hits the
//! socket. The gateway decodes at the edge, drops corrupt frames, shards
//! by granule hash into 4 cleaning pipelines, and flushes epochs by
//! watermark. The run reports end-to-end throughput, epoch-flush latency,
//! and the full loss/corruption/backpressure accounting, then writes
//! `results/BENCH_gateway.json`.
//!
//! Usage:
//!
//! ```text
//! gateway-loadgen [total_readings]                    default 400 000
//! gateway-loadgen obs-overhead [total] [rounds]       instrumentation cost
//! ```
//!
//! The `obs-overhead` arm runs the identical workload (same channel
//! seeds, same fleet) with the optional instrumentation layers enabled
//! and disabled ([`esp_obs::set_enabled`]), interleaved and best-of-N per
//! arm, and gates the throughput regression at 5% — the observability
//! layer's admission bill. Writes `results/BENCH_obs.json`.

use std::thread;
use std::time::Instant;

use esp_core::{Pipeline, PointStage};
use esp_gateway::{Gateway, GatewayClient, GatewayConfig, GatewayGroup, GatewaySnapshot};
use esp_receptors::channel::{BernoulliChannel, Channel, Delivery, GilbertElliottChannel};
use esp_receptors::wire::{self, Reading};
use esp_types::{ReceptorId, ReceptorType, TimeDelta, Ts};

/// What a simulated device puts on the wire each tick.
#[derive(Debug, Clone, Copy)]
enum Kind {
    Rfid { shelf: u32 },
    MoteTemp,
    MoteDual,
    X10,
}

/// The fleet: 4 shelves × 2 RFID readers, 2 mote rooms × 2 motes (one
/// scalar, one dual per room), 2 X10 rooms × 1 detector — 14 receptors
/// over 8 spatial granules, so a 4-shard gateway gets real spread.
fn fleet() -> (Vec<GatewayGroup>, Vec<(ReceptorId, Kind)>) {
    let mut groups = Vec::new();
    let mut receptors = Vec::new();
    let mut next_id = 0u32;
    for shelf in 0..4u32 {
        let members: Vec<ReceptorId> = (0..2)
            .map(|_| {
                let id = ReceptorId(next_id);
                next_id += 1;
                receptors.push((id, Kind::Rfid { shelf }));
                id
            })
            .collect();
        groups.push(GatewayGroup {
            receptor_type: ReceptorType::Rfid,
            granule: format!("shelf{shelf}"),
            members,
        });
    }
    for room in 0..2u32 {
        let kinds = [Kind::MoteTemp, Kind::MoteDual];
        let members: Vec<ReceptorId> = kinds
            .iter()
            .map(|&k| {
                let id = ReceptorId(next_id);
                next_id += 1;
                receptors.push((id, k));
                id
            })
            .collect();
        groups.push(GatewayGroup {
            receptor_type: ReceptorType::Mote,
            granule: format!("mote-room{room}"),
            members,
        });
    }
    for room in 0..2u32 {
        let id = ReceptorId(next_id);
        next_id += 1;
        receptors.push((id, Kind::X10));
        groups.push(GatewayGroup {
            receptor_type: ReceptorType::X10Motion,
            granule: format!("x10-room{room}"),
            members: vec![id],
        });
    }
    (groups, receptors)
}

fn synthesize(id: ReceptorId, kind: Kind, ts: Ts, tick: u64) -> Reading {
    match kind {
        Kind::Rfid { shelf } => Reading::Tag {
            receptor: id,
            ts,
            tag_id: format!("tag-{shelf}-{}", (tick + u64::from(id.0)) % 8),
        },
        Kind::MoteTemp => Reading::Scalar {
            receptor: id,
            ts,
            value: 20.0 + ((tick % 600) as f64) * 0.01,
        },
        Kind::MoteDual => Reading::Dual {
            receptor: id,
            ts,
            a: 20.0 + ((tick % 600) as f64) * 0.01,
            b: 2.7 + ((tick % 100) as f64) * 0.001,
        },
        Kind::X10 => Reading::Event {
            receptor: id,
            ts,
            value: "ON".into(),
        },
    }
}

struct ClientTotals {
    sent: u64,
    lost: u64,
    corrupted: u64,
}

/// One complete loadgen run, every number the report needs.
struct RunResult {
    sent: u64,
    lost: u64,
    corrupted: u64,
    wall_secs: f64,
    throughput: f64,
    output_tuples: usize,
    stats: GatewaySnapshot,
}

/// Drive the full fleet once. Channel seeds are fixed, so every call
/// sends the byte-identical frame stream — two runs differ only in what
/// the process does with them.
fn run_once(total: u64) -> RunResult {
    let (groups, receptors) = fleet();
    let n_receptors = receptors.len() as u64;
    let ticks = total.div_ceil(n_receptors);

    let mut config = GatewayConfig::new(groups);
    config.n_shards = 4;
    config.edge_capacity = 512;
    config.period = TimeDelta::from_secs(1);
    // Four clients: hold punctuation until the whole fleet is connected.
    config.min_connections = 4;
    // An empty Point stage per receptor: the real stage plumbing (granule
    // injection, per-receptor instantiation, union) without any filtering,
    // so throughput measures the framework, not a workload.
    let gateway = Gateway::spawn(config, |_| {
        Pipeline::builder()
            .per_receptor("point", |_| Ok(Box::new(PointStage::new("point"))))
            .build()
    })
    .expect("spawn gateway");
    let addr = gateway.local_addr();

    // Partition receptors round-robin over 4 connections so every client
    // carries a mix of kinds and granules.
    let mut partitions: Vec<Vec<(ReceptorId, Kind)>> = vec![Vec::new(); 4];
    for (i, r) in receptors.into_iter().enumerate() {
        partitions[i % 4].push(r);
    }

    let t0 = Instant::now();
    let clients: Vec<_> = partitions
        .into_iter()
        .enumerate()
        .map(|(c, part)| {
            thread::spawn(move || {
                // ~90% delivery in bursts of ~4, like the paper's lossy
                // mote uplinks; Gilbert–Elliott only loses, so a stacked
                // Bernoulli channel adds the 1% bit-error corruption the
                // checksum must catch.
                let mut burst = GilbertElliottChannel::with_yield(0xBEEF + c as u64, 0.9, 4.0);
                let mut bits = BernoulliChannel::new(0xF00D + c as u64, 0.0, 0.01);
                let mut client =
                    GatewayClient::connect(addr, TimeDelta::ZERO).expect("connect loadgen client");
                let mut totals = ClientTotals {
                    sent: 0,
                    lost: 0,
                    corrupted: 0,
                };
                for tick in 0..ticks {
                    let ts = Ts::from_millis(tick);
                    for &(id, kind) in &part {
                        let reading = synthesize(id, kind, ts, tick);
                        totals.sent += 1;
                        let outcome = match burst.transmit() {
                            Delivery::Delivered => bits.transmit(),
                            lost => lost,
                        };
                        match outcome {
                            Delivery::Lost => totals.lost += 1,
                            Delivery::Corrupted => {
                                let mut bad = wire::encode(&reading).to_vec();
                                let mid = bad.len() / 2;
                                bad[mid] ^= 0xff;
                                client.send_raw(&bad).expect("send corrupted frame");
                                totals.corrupted += 1;
                            }
                            Delivery::Delivered => client.send(&reading).expect("send frame"),
                        }
                    }
                }
                client.finish().expect("close loadgen client");
                totals
            })
        })
        .collect();

    let mut sent = 0u64;
    let mut lost = 0u64;
    let mut corrupted = 0u64;
    for c in clients {
        let t = c.join().expect("client thread");
        sent += t.sent;
        lost += t.lost;
        corrupted += t.corrupted;
    }
    let output = gateway.finish().expect("drain gateway");
    let wall = t0.elapsed().as_secs_f64();
    let throughput = output.stats.readings as f64 / wall;
    RunResult {
        sent,
        lost,
        corrupted,
        wall_secs: wall,
        throughput,
        output_tuples: output.total_tuples(),
        stats: output.stats,
    }
}

fn run_default(total: u64) {
    let RunResult {
        sent,
        lost,
        corrupted,
        wall_secs: wall,
        throughput,
        output_tuples,
        stats: s,
    } = run_once(total);
    let mut report = s.report("gateway-loadgen: TCP ingestion into 4-shard ESP pipeline");
    report
        .scalar("client_sent", sent as f64)
        .scalar("client_lost", lost as f64)
        .scalar("client_corrupted", corrupted as f64)
        .scalar("wall_secs", wall)
        .scalar("throughput_readings_per_sec", throughput)
        .scalar("output_tuples", output_tuples as f64);
    println!("{}", report.render_text());
    println!(
        "throughput: {:.0} readings/s over TCP into {} shards ({} delivered of {} sent, \
         {} lost in channel, {} dropped by checksum) — target 100000/s: {}",
        throughput,
        s.shard_readings.len(),
        s.readings,
        sent,
        lost,
        s.corrupt_frames,
        if throughput >= 100_000.0 {
            "MET"
        } else {
            "MISSED"
        },
    );
    assert_eq!(
        sent,
        s.readings + lost + s.corrupt_frames,
        "accounting must close"
    );

    report
        .write_json(std::path::Path::new("results"), "BENCH_gateway")
        .expect("write results/BENCH_gateway.json");
    println!("wrote results/BENCH_gateway.json");
}

/// Throughput cost of the observability layer: the same workload with the
/// optional instrumentation on vs. off, interleaved (round ordering
/// alternates so neither arm always pays the warmup), best-of-`rounds`
/// per arm. The gate is a ≤5% regression of the *enabled* arm against the
/// *disabled* arm.
fn obs_overhead(total: u64, rounds: u32) {
    const GATE_PCT: f64 = 5.0;
    let mut best_on = f64::NEG_INFINITY;
    let mut best_off = f64::NEG_INFINITY;
    for round in 0..rounds.max(1) {
        // Alternate which arm runs first each round.
        let order = if round % 2 == 0 {
            [true, false]
        } else {
            [false, true]
        };
        for enabled in order {
            esp_obs::set_enabled(enabled);
            let r = run_once(total);
            assert_eq!(
                r.sent,
                r.stats.readings + r.lost + r.stats.corrupt_frames,
                "accounting must close in both arms"
            );
            let best = if enabled { &mut best_on } else { &mut best_off };
            *best = best.max(r.throughput);
            println!(
                "round {round} obs={}: {:.0} readings/s",
                if enabled { "on " } else { "off" },
                r.throughput
            );
        }
    }
    esp_obs::set_enabled(true);

    let overhead_pct = (best_off - best_on) / best_off * 100.0;
    let met = overhead_pct <= GATE_PCT;
    let mut report = esp_metrics::Report::new(
        "obs-overhead: instrumentation cost of the observability layer under gateway load",
    );
    report
        .scalar("total_readings", total as f64)
        .scalar("rounds", f64::from(rounds))
        .scalar("enabled_best_readings_per_sec", best_on)
        .scalar("disabled_best_readings_per_sec", best_off)
        .scalar("overhead_pct", overhead_pct)
        .scalar("gate_pct", GATE_PCT)
        .scalar("met", if met { 1.0 } else { 0.0 });
    println!("{}", report.render_text());
    println!(
        "obs overhead: {overhead_pct:.2}% (enabled best {best_on:.0}/s vs disabled best \
         {best_off:.0}/s) — target ≤{GATE_PCT}%: {}",
        if met { "MET" } else { "MISSED" },
    );
    report
        .write_json(std::path::Path::new("results"), "BENCH_obs")
        .expect("write results/BENCH_obs.json");
    println!("wrote results/BENCH_obs.json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "obs-overhead") {
        let total: u64 = args
            .get(1)
            .map(|a| a.parse().expect("total_readings must be a number"))
            .unwrap_or(200_000);
        let rounds: u32 = args
            .get(2)
            .map(|a| a.parse().expect("rounds must be a number"))
            .unwrap_or(3);
        obs_overhead(total, rounds);
        return;
    }
    let total: u64 = args
        .first()
        .map(|a| a.parse().expect("total_readings must be a number"))
        .unwrap_or(400_000);
    run_default(total);
}
