//! # esp-bench
//!
//! The experiment harness: one module per paper deployment, each exposing
//! functions that run a seeded simulation through an ESP pipeline and
//! return a [`Report`](esp_metrics::Report). The `src/bin/` targets print
//! the same rows and series the paper's tables and figures show; the
//! Criterion benches in `benches/` measure engine and pipeline throughput.
//!
//! Experiment ↔ figure map (see DESIGN.md §3 for the full index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig3_shelf_traces` | Figure 3(a–d) + §4 error/alert numbers |
//! | `fig5_pipeline_ablation` | Figure 5 |
//! | `fig6_granule_sweep` | Figure 6 |
//! | `fig7_outlier_detection` | Figure 7 |
//! | `redwood_epoch_yield` | §5.2 epoch-yield staircase |
//! | `fig9_person_detector` | Figure 9(a–e) + 92% accuracy |
//! | `ablation_spatial_granule` | §5.3.2 discussion |
//! | `ablation_window_expansion` | §5.2.1 discussion |

pub mod actuation;
pub mod home;
pub mod lab;
pub mod model;
pub mod redwood;
pub mod shelf;
pub mod util;
