//! §6.3.1 ablation: BBQ-style model-based cleaning.
//!
//! The paper suggests implementing cleaning stages with a BBQ-like system
//! that "would build models of the receptor streams", exploiting
//! "correlations between different sensors (e.g., voltage and
//! temperature)". This experiment puts a [`ModelStage`] (online linear
//! regression voltage → temperature, per device) against the Figure 7
//! scenario and measures what Merge alone cannot do: detect a fail-dirty
//! sensor from a **single** device.

use std::sync::Arc;

use esp_core::{EspProcessor, ModelAction, ModelStage, Pipeline, ProximityGroups, ReceptorBinding};
use esp_metrics::{Report, Series};
use esp_receptors::channel::BernoulliChannel;
use esp_receptors::lab::LabRoomModel;
use esp_receptors::mote::{EnvModel, FailDirty, MoteConfig, MoteSource, VoltageModel};
use esp_types::{well_known, ReceptorId, ReceptorType, TimeDelta, Ts, Value};

/// Result of one model-cleaning run.
pub struct ModelRun {
    /// (days, reported temp) — what the application sees.
    pub reported: Vec<(f64, f64)>,
    /// Mean absolute error vs truth after failure onset.
    pub post_onset_error: f64,
    /// First time (days) a post-onset reading was suppressed/corrected
    /// relative to the raw value, NaN if never.
    pub detection_days: f64,
}

/// A single mote (with a voltage channel) that fails dirty; pipeline is
/// either a [`ModelStage`] or nothing.
pub fn run_model(days: f64, action: Option<ModelAction>, seed: u64) -> ModelRun {
    let onset = Ts::from_secs((0.6 * 86_400.0) as u64);
    let sample_period = TimeDelta::from_secs(31);
    let env: Arc<dyn EnvModel> = Arc::new(LabRoomModel);
    let id = ReceptorId(1);
    let source = MoteSource::new(
        MoteConfig {
            id,
            sample_period,
            noise_sd: 0.2,
            fail: Some(FailDirty {
                onset,
                drift_per_hour: 3.7,
                ceiling: 135.0,
            }),
            seed,
            field: well_known::TEMP,
            voltage: Some(VoltageModel::default()),
        },
        env,
        Box::new(BernoulliChannel::new(seed.wrapping_add(7), 0.2, 0.0)),
    );
    let mut groups = ProximityGroups::new();
    groups.add_group(ReceptorType::Mote, "lab-room", [id]);
    let pipeline = match action {
        Some(action) => Pipeline::builder()
            .per_receptor("model", move |_| {
                Ok(Box::new(ModelStage::new(
                    "model",
                    "receptor_id",
                    "voltage",
                    "temp",
                    4.0,
                    60,
                    0.3,
                    action,
                )?))
            })
            .build(),
        None => Pipeline::raw(),
    };
    let proc = EspProcessor::build(
        groups,
        &pipeline,
        vec![ReceptorBinding::new(
            id,
            ReceptorType::Mote,
            Box::new(source),
        )],
    )
    .expect("processor builds");
    let n_epochs = (days * 86_400.0 / sample_period.as_secs_f64()) as u64;
    let out = proc
        .run(Ts::ZERO, sample_period, n_epochs)
        .expect("run succeeds");

    let truth = |ts: Ts| LabRoomModel.value(id, ts);
    let mut reported = Vec::new();
    let mut post_err = Vec::new();
    let mut detection_days = f64::NAN;
    for (ts, batch) in &out.trace {
        for t in batch {
            if let Some(v) = t.get("temp").and_then(Value::as_f64) {
                let days_t = ts.as_secs_f64() / 86_400.0;
                reported.push((days_t, v));
                if *ts > onset {
                    post_err.push((v - truth(*ts)).abs());
                }
            }
        }
        // Detection: after onset, an epoch where the pipeline emitted
        // nothing (Drop) or a value near truth despite the drifted sensor.
        if detection_days.is_nan() && *ts > onset + TimeDelta::from_secs(3 * 3600) {
            let suppressed = batch.is_empty()
                || batch.iter().all(|t| {
                    t.get("temp")
                        .and_then(Value::as_f64)
                        .is_some_and(|v| (v - truth(*ts)).abs() < 2.0)
                });
            if suppressed && action.is_some() {
                detection_days = ts.as_secs_f64() / 86_400.0;
            }
        }
    }
    let post_onset_error = if post_err.is_empty() {
        // Everything post-onset suppressed: perfect from the error side.
        0.0
    } else {
        post_err.iter().sum::<f64>() / post_err.len() as f64
    };
    ModelRun {
        reported,
        post_onset_error,
        detection_days,
    }
}

/// Compare raw vs model-drop vs model-correct on the single-mote
/// fail-dirty scenario.
pub fn model_report(days: f64, seed: u64) -> Report {
    let mut report = Report::new("§6.3.1 ablation: BBQ-style model-based cleaning (single mote)");
    for (label, action) in [
        ("raw", None),
        ("model_drop", Some(ModelAction::Drop)),
        ("model_correct", Some(ModelAction::Correct)),
    ] {
        let run = run_model(days, action, seed);
        report.scalar(
            format!("{label}:post_onset_mean_abs_error"),
            run.post_onset_error,
        );
        report.scalar(format!("{label}:n_reported"), run.reported.len() as f64);
        if action.is_some() {
            report.scalar(format!("{label}:detection_days"), run.detection_days);
        }
        report.add_series(Series::from_points(label, run.reported));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_detects_failure_with_a_single_device() {
        // Merge (Figure 7) needs healthy neighbours; the model stage
        // detects the same failure from one device via the voltage channel.
        let raw = run_model(1.5, None, 9);
        let dropped = run_model(1.5, Some(ModelAction::Drop), 9);
        assert!(
            raw.post_onset_error > 20.0,
            "raw error {}",
            raw.post_onset_error
        );
        assert!(
            dropped.post_onset_error < 1.5,
            "model-dropped error {}",
            dropped.post_onset_error
        );
        assert!(!dropped.detection_days.is_nan());
    }

    #[test]
    fn correction_keeps_reporting_while_suppressing_the_drift() {
        let corrected = run_model(1.5, Some(ModelAction::Correct), 9);
        let dropped = run_model(1.5, Some(ModelAction::Drop), 9);
        // Correct mode keeps (almost) every reading, Drop discards the
        // failed stretch.
        assert!(
            corrected.reported.len() > dropped.reported.len() + 500,
            "corrected {} vs dropped {}",
            corrected.reported.len(),
            dropped.reported.len()
        );
        assert!(
            corrected.post_onset_error < 2.0,
            "corrected error {}",
            corrected.post_onset_error
        );
    }
}
