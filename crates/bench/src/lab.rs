//! §5.1 outlier detection (Figure 7).

use esp_core::{MergeStage, Pipeline, PointStage};
use esp_metrics::{Report, Series};
use esp_receptors::lab::{LabScenario, LAB_MOTES};
use esp_types::SpatialGranule;
use esp_types::{ReceptorType, TimeDelta, Ts, Value};

use crate::util::{build_processor, with_type};

/// Merge window used for the room average.
pub const MERGE_WINDOW: TimeDelta = TimeDelta(5 * 60 * 1000);

fn lab_pipeline(with_point: bool, outlier_k: f64) -> Pipeline {
    let mut builder = Pipeline::builder();
    if with_point {
        // Paper Query 4: filter fail-dirty readings above 50 °C.
        builder = builder.per_receptor("point", |_ctx| {
            Ok(Box::new(PointStage::new("point").range_filter(
                "temp",
                None,
                Some(50.0),
            )))
        });
    }
    builder
        .per_group("merge", move |ctx| {
            let granule = ctx
                .granule
                .clone()
                .unwrap_or_else(|| SpatialGranule::new("lab-room"));
            Ok(Box::new(MergeStage::outlier_filtered_mean(
                "merge",
                granule,
                MERGE_WINDOW,
                "temp",
                outlier_k,
            )))
        })
        .build()
}

/// One epoch of the Figure 7 traces.
pub struct LabEpoch {
    /// Time in days.
    pub days: f64,
    /// Latest raw reading per mote this epoch (NaN if none arrived).
    pub raw: [f64; 3],
    /// Naive windowed average over all three motes (no outlier rejection).
    pub naive_average: Option<f64>,
    /// ESP output (Point + Merge with mean±1σ rejection).
    pub esp: Option<f64>,
    /// True room temperature.
    pub truth: f64,
}

/// Run the Figure 7 experiment over `days` of simulated time.
pub fn run_lab(days: f64, seed: u64) -> Vec<LabEpoch> {
    let scenario = LabScenario::paper(seed);
    let period = scenario.config().sample_period;
    let n_epochs = ((days * 86_400.0 * 1000.0) / period.as_millis() as f64) as u64;

    // ESP pipeline: Point + Merge(mean ± 1σ).
    let esp_out = {
        let proc = build_processor(
            &scenario.groups(),
            &lab_pipeline(true, 1.0),
            with_type(scenario.sources(), ReceptorType::Mote),
        )
        .expect("lab processor builds");
        proc.run(Ts::ZERO, period, n_epochs).expect("lab run")
    };
    // Naive average: same merge window, no Point, no outlier rejection.
    let naive_out = {
        let proc = build_processor(
            &scenario.groups(),
            &lab_pipeline(false, f64::INFINITY),
            with_type(scenario.sources(), ReceptorType::Mote),
        )
        .expect("lab processor builds");
        proc.run(Ts::ZERO, period, n_epochs).expect("lab run")
    };
    // Raw per-mote readings.
    let raw_out = {
        let proc = build_processor(
            &scenario.groups(),
            &Pipeline::raw(),
            with_type(scenario.sources(), ReceptorType::Mote),
        )
        .expect("lab processor builds");
        proc.run(Ts::ZERO, period, n_epochs).expect("lab run")
    };

    let scalar = |batch: &[esp_types::Tuple]| {
        batch
            .first()
            .and_then(|t| t.get("temp").and_then(Value::as_f64))
    };
    let mut epochs = Vec::with_capacity(esp_out.trace.len());
    for i in 0..esp_out.trace.len() {
        let (ts, raw_batch) = &raw_out.trace[i];
        let mut raw = [f64::NAN; 3];
        for t in raw_batch {
            let Some(id) = t.get("receptor_id").and_then(Value::as_i64) else {
                continue;
            };
            if let Some(pos) = LAB_MOTES.iter().position(|m| i64::from(m.0) == id) {
                raw[pos] = t.get("temp").and_then(Value::as_f64).unwrap_or(f64::NAN);
            }
        }
        epochs.push(LabEpoch {
            days: ts.as_secs_f64() / 86_400.0,
            raw,
            naive_average: scalar(&naive_out.trace[i].1),
            esp: scalar(&esp_out.trace[i].1),
            truth: scenario.true_temp(*ts),
        });
    }
    epochs
}

/// Build the Figure 7 report: traces plus divergence summary.
pub fn figure7(days: f64, seed: u64) -> Report {
    let epochs = run_lab(days, seed);
    let scenario = LabScenario::paper(seed);
    let mut report = Report::new("Figure 7: outlier detection using ESP");

    for (m, _) in LAB_MOTES.iter().enumerate() {
        report.add_series(Series::from_points(
            format!("mote{}", m + 1),
            epochs
                .iter()
                .filter(|e| !e.raw[m].is_nan())
                .map(|e| (e.days, e.raw[m])),
        ));
    }
    report.add_series(Series::from_points(
        "average",
        epochs
            .iter()
            .filter_map(|e| e.naive_average.map(|v| (e.days, v))),
    ));
    report.add_series(Series::from_points(
        "esp",
        epochs.iter().filter_map(|e| e.esp.map(|v| (e.days, v))),
    ));

    // Summary scalars: late-trace behaviour (after the outlier saturates).
    let late: Vec<&LabEpoch> = epochs.iter().filter(|e| e.days > days * 0.75).collect();
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let late_esp_err: Vec<f64> = late
        .iter()
        .filter_map(|e| e.esp.map(|v| (v - e.truth).abs()))
        .collect();
    let late_naive_err: Vec<f64> = late
        .iter()
        .filter_map(|e| e.naive_average.map(|v| (v - e.truth).abs()))
        .collect();
    report.scalar("late_esp_mean_abs_error", mean(&late_esp_err));
    report.scalar("late_naive_mean_abs_error", mean(&late_naive_err));
    report.scalar(
        "fail_onset_days",
        scenario.config().fail_onset.as_secs_f64() / 86_400.0,
    );
    // When does ESP start excluding the outlier? First epoch after onset
    // where ESP diverges from the naive average by > 1 °C.
    let detect = epochs.iter().find(|e| {
        if let (Some(esp), Some(naive)) = (e.esp, e.naive_average) {
            (esp - naive).abs() > 1.0
        } else {
            false
        }
    });
    report.scalar(
        "esp_begins_eliminating_outlier_days",
        detect.map(|e| e.days).unwrap_or(f64::NAN),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn esp_tracks_truth_while_naive_average_is_dragged_up() {
        let epochs = run_lab(1.5, 21);
        let late: Vec<&LabEpoch> = epochs.iter().filter(|e| e.days > 1.2).collect();
        assert!(!late.is_empty());
        let esp_err: f64 = late
            .iter()
            .filter_map(|e| e.esp.map(|v| (v - e.truth).abs()))
            .sum::<f64>()
            / late.len() as f64;
        let naive_err: f64 = late
            .iter()
            .filter_map(|e| e.naive_average.map(|v| (v - e.truth).abs()))
            .sum::<f64>()
            / late.len() as f64;
        assert!(esp_err < 1.5, "ESP stays near truth: {esp_err}");
        assert!(
            naive_err > 5.0,
            "naive average dragged up by outlier: {naive_err}"
        );
    }

    #[test]
    fn merge_detects_outlier_before_point_cutoff() {
        // The paper: "although Point is the first stage in the pipeline,
        // Merge is the first stage to eliminate the outlier" — divergence
        // begins while the failed mote still reads below 50 °C.
        let report = figure7(1.5, 21);
        let detect = report
            .get_scalar("esp_begins_eliminating_outlier_days")
            .unwrap();
        let onset = report.get_scalar("fail_onset_days").unwrap();
        assert!(detect > onset, "detection after onset");
        // 50 °C is reached (3.7 °C/h from ~21 °C) ≈ 7.8 h after onset.
        let cutoff_days = onset + (50.0 - 24.0) / 3.7 / 24.0;
        assert!(
            detect < cutoff_days,
            "Merge should act at {detect} days, before the 50 °C cutoff at {cutoff_days}"
        );
    }

    #[test]
    fn raw_traces_include_dropped_epochs() {
        let epochs = run_lab(0.2, 21);
        let misses = epochs.iter().filter(|e| e.raw[0].is_nan()).count();
        assert!(misses > 0, "20% loss must show up as missing raw epochs");
        assert!(misses < epochs.len() / 2);
    }
}
