//! End-to-end ESP pipeline throughput: simulated epochs per second for the
//! paper's three deployments, and built-in vs declarative Smooth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use esp_bench::home::home_pipeline;
use esp_bench::shelf::{shelf_pipeline, ShelfPipeline};
use esp_bench::util::{build_processor, with_type};
use esp_core::{DeclarativeStage, Pipeline, SmoothStage, Stage};
use esp_query::Engine;
use esp_receptors::office::OfficeScenario;
use esp_receptors::rfid::ShelfScenario;
use esp_types::{well_known, ReceptorType, TimeDelta, Ts, Tuple, TupleBuilder};

fn bench_shelf_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/shelf");
    const EPOCHS: u64 = 250; // 50 simulated seconds at 5 Hz
    group.throughput(Throughput::Elements(EPOCHS));
    for cfg in [
        ShelfPipeline::Raw,
        ShelfPipeline::SmoothOnly,
        ShelfPipeline::SmoothThenArbitrate,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(cfg.label().replace(' ', "_")),
            &cfg,
            |b, &cfg| {
                b.iter(|| {
                    let scenario = ShelfScenario::paper(1);
                    let proc = build_processor(
                        &scenario.groups(),
                        &shelf_pipeline(cfg, TimeDelta::from_secs(5)),
                        with_type(scenario.sources(), ReceptorType::Rfid),
                    )
                    .unwrap();
                    let out = proc
                        .run(Ts::ZERO, TimeDelta::from_millis(200), EPOCHS)
                        .unwrap();
                    out.trace.len()
                })
            },
        );
    }
    group.finish();
}

fn bench_home_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/digital_home");
    const EPOCHS: u64 = 120;
    group.throughput(Throughput::Elements(EPOCHS));
    for (label, pipeline) in [("raw", Pipeline::raw()), ("five_stage", home_pipeline(2))] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &pipeline,
            |b, pipeline| {
                b.iter(|| {
                    let scenario = OfficeScenario::paper(1);
                    let proc =
                        build_processor(&scenario.groups(), pipeline, scenario.sources()).unwrap();
                    let out = proc.run(Ts::ZERO, TimeDelta::from_secs(1), EPOCHS).unwrap();
                    out.trace.len()
                })
            },
        );
    }
    group.finish();
}

/// Built-in Smooth vs the same stage expressed as a declarative query
/// (paper Query 2) — the cost of declarativeness.
fn bench_builtin_vs_declarative_smooth(c: &mut Criterion) {
    let schema = well_known::rfid_schema();
    let batches: Vec<Vec<Tuple>> = (0..200u64)
        .map(|epoch| {
            (0..10)
                .map(|i| {
                    TupleBuilder::new(&schema, Ts::from_millis(epoch * 200))
                        .set("receptor_id", 0i64)
                        .unwrap()
                        .set("tag_id", format!("tag-{}", i % 12))
                        .unwrap()
                        .build()
                        .unwrap()
                })
                .collect()
        })
        .collect();
    let mut group = c.benchmark_group("pipeline/smooth_impl");
    group.throughput(Throughput::Elements((batches.len() * 10) as u64));
    group.bench_function("builtin", |b| {
        b.iter(|| {
            let mut stage =
                SmoothStage::count_by_key("smooth", TimeDelta::from_secs(5), ["tag_id"]);
            let mut n = 0;
            for (i, batch) in batches.iter().enumerate() {
                n += stage
                    .process(Ts::from_millis(i as u64 * 200), batch.clone())
                    .unwrap()
                    .len();
            }
            n
        })
    });
    group.bench_function("declarative", |b| {
        let engine = Engine::new();
        b.iter(|| {
            let q = engine
                .compile(
                    "SELECT tag_id, count(*) FROM smooth_input [Range By '5 sec'] \
                     GROUP BY tag_id",
                )
                .unwrap();
            let mut stage = DeclarativeStage::new("smooth", q).unwrap();
            let mut n = 0;
            for (i, batch) in batches.iter().enumerate() {
                n += stage
                    .process(Ts::from_millis(i as u64 * 200), batch.clone())
                    .unwrap()
                    .len();
            }
            n
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shelf_pipeline,
    bench_home_pipeline,
    bench_builtin_vs_declarative_smooth
);
criterion_main!(benches);
