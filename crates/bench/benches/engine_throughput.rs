//! Throughput of the declarative engine on the paper's queries:
//! tuples/second through a compiled continuous query, per query shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use esp_query::Engine;
use esp_types::{well_known, TimeDelta, Ts, Tuple, TupleBuilder};

fn rfid_batch(epoch: Ts, n: usize) -> Vec<Tuple> {
    let schema = well_known::rfid_schema();
    (0..n)
        .map(|i| {
            TupleBuilder::new(&schema, epoch)
                .set("receptor_id", (i % 2) as i64)
                .unwrap()
                .set("tag_id", format!("tag-{}", i % 25))
                .unwrap()
                .build()
                .unwrap()
        })
        .collect()
}

fn bench_query(c: &mut Criterion, name: &str, sql: &str, stream: &str) {
    let engine = Engine::new();
    let mut group = c.benchmark_group(format!("engine/{name}"));
    for batch_size in [16usize, 128, 1024] {
        group.throughput(Throughput::Elements(batch_size as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(batch_size),
            &batch_size,
            |b, &n| {
                let mut q = engine.compile(sql).unwrap();
                let mut epoch = Ts::ZERO;
                b.iter(|| {
                    let batch = rfid_batch(epoch, n);
                    q.push(stream, &batch).unwrap();
                    let out = q.tick(epoch).unwrap();
                    epoch += TimeDelta::from_millis(200);
                    out.len()
                })
            },
        );
    }
    group.finish();
}

fn bench_filter(c: &mut Criterion) {
    bench_query(
        c,
        "point_filter",
        "SELECT * FROM point_input WHERE receptor_id = 0",
        "point_input",
    );
}

fn bench_windowed_group_by(c: &mut Criterion) {
    bench_query(
        c,
        "smooth_query2",
        "SELECT tag_id, count(*) FROM smooth_input [Range By '5 sec'] GROUP BY tag_id",
        "smooth_input",
    );
}

fn bench_count_distinct(c: &mut Criterion) {
    bench_query(
        c,
        "query1_count_distinct",
        "SELECT receptor_id, count(distinct tag_id) FROM rfid_data [Range By '1 sec'] \
         GROUP BY receptor_id",
        "rfid_data",
    );
}

fn bench_arbitrate_query3(c: &mut Criterion) {
    // Query 3 shape: correlated ALL subquery per group.
    let engine = Engine::new();
    let sql = "SELECT spatial_granule, tag_id
               FROM arbitrate_input ai1 [Range By 'NOW']
               GROUP BY spatial_granule, tag_id
               HAVING count(*) >= ALL(SELECT count(*)
                                      FROM arbitrate_input ai2 [Range By 'NOW']
                                      WHERE ai1.tag_id = ai2.tag_id
                                      GROUP BY spatial_granule)";
    let schema = esp_types::Schema::builder()
        .field("spatial_granule", esp_types::DataType::Str)
        .field("tag_id", esp_types::DataType::Str)
        .build()
        .unwrap();
    let mut group = c.benchmark_group("engine/arbitrate_query3");
    for n_tags in [5usize, 25] {
        let batch: Vec<Tuple> = (0..n_tags * 4)
            .map(|i| {
                TupleBuilder::new(&schema, Ts::ZERO)
                    .set("spatial_granule", format!("shelf{}", i % 2))
                    .unwrap()
                    .set("tag_id", format!("tag-{}", i % n_tags))
                    .unwrap()
                    .build()
                    .unwrap()
            })
            .collect();
        group.throughput(Throughput::Elements(batch.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n_tags), &batch, |b, batch| {
            let mut q = engine.compile(sql).unwrap();
            let mut epoch = Ts::ZERO;
            b.iter(|| {
                let restamped: Vec<Tuple> = batch.iter().map(|t| t.restamped(epoch)).collect();
                q.push("arbitrate_input", &restamped).unwrap();
                let out = q.tick(epoch).unwrap();
                epoch += TimeDelta::from_millis(200);
                out.len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_filter,
    bench_windowed_group_by,
    bench_count_distinct,
    bench_arbitrate_query3
);
criterion_main!(benches);
