//! Micro-benchmarks of the windowing substrate: `WindowBuffer` push +
//! eviction and `RunningStats` folding — the inner loops of Smooth and
//! Merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use esp_stream::stats::RunningStats;
use esp_stream::WindowBuffer;
use esp_types::{DataType, Schema, TimeDelta, Ts, Tuple, Value};

fn tuple(ts: Ts, v: i64) -> Tuple {
    let schema = Schema::builder().field("v", DataType::Int).build().unwrap();
    Tuple::new_unchecked(schema, ts, vec![Value::Int(v)])
}

fn bench_window_push(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_push_advance");
    for window_ms in [1_000u64, 5_000, 30_000] {
        // Pre-build a stream of 10k tuples at 10ms spacing.
        let tuples: Vec<Tuple> = (0..10_000u64)
            .map(|i| tuple(Ts::from_millis(i * 10), i as i64))
            .collect();
        group.throughput(Throughput::Elements(tuples.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{window_ms}ms")),
            &tuples,
            |b, tuples| {
                b.iter(|| {
                    let mut w = WindowBuffer::new(TimeDelta::from_millis(window_ms));
                    for t in tuples {
                        w.push(t.clone());
                        w.advance_to(t.ts());
                    }
                    w.len()
                })
            },
        );
    }
    group.finish();
}

fn bench_running_stats(c: &mut Criterion) {
    let xs: Vec<f64> = (0..10_000)
        .map(|i| (i as f64).sin() * 30.0 + 20.0)
        .collect();
    let mut group = c.benchmark_group("running_stats");
    group.throughput(Throughput::Elements(xs.len() as u64));
    group.bench_function("fold_10k", |b| {
        b.iter(|| {
            let s = RunningStats::from_iter(xs.iter().copied());
            (s.mean(), s.stdev())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_window_push, bench_running_stats);
criterion_main!(benches);
