//! The temporal granule and window expansion.

use esp_types::{EspError, Result, TimeDelta};

/// The application's temporal granule plus the (possibly expanded) window
/// ESP actually smooths with.
///
/// The granule is the atomic unit of time the application cares about; ESP
/// emits output at every granule boundary. To smooth effectively the window
/// must straddle the longest run of dropped readings (paper §4.3.2), so ESP
/// may *expand* the smoothing window beyond the granule while still emitting
/// at granule rate — exactly what the redwood deployment did (§5.2.1:
/// 5-minute granule, 30-minute window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalGranule {
    granule: TimeDelta,
    window: TimeDelta,
}

impl TemporalGranule {
    /// A granule whose smoothing window equals the granule itself (the
    /// common case; the paper's RFID deployment used 5 s for both).
    pub fn new(granule: TimeDelta) -> TemporalGranule {
        TemporalGranule {
            granule,
            window: granule,
        }
    }

    /// A granule with an explicitly expanded smoothing window.
    /// Errors if the window is narrower than the granule.
    pub fn with_window(granule: TimeDelta, window: TimeDelta) -> Result<TemporalGranule> {
        if window < granule {
            return Err(EspError::Config(format!(
                "smoothing window ({window}) must be at least the temporal granule ({granule})"
            )));
        }
        Ok(TemporalGranule { granule, window })
    }

    /// Expand the window to hold at least `min_samples` at the given
    /// receptor sample period, never shrinking below the granule.
    ///
    /// This is the §5.2.1 situation: the redwood motes sampled at the same
    /// 5-minute period as the granule, so a granule-sized window held a
    /// single (often lost) sample; ESP widened it until enough readings
    /// accumulated to smooth over the losses.
    pub fn expanded_for(
        granule: TimeDelta,
        sample_period: TimeDelta,
        min_samples: u32,
    ) -> Result<TemporalGranule> {
        if sample_period.is_now() {
            return Err(EspError::Config("sample period must be positive".into()));
        }
        let needed = TimeDelta::from_millis(sample_period.as_millis() * u64::from(min_samples));
        let window = needed.max(granule);
        TemporalGranule::with_window(granule, window)
    }

    /// The application-visible granule (output period).
    pub fn granule(&self) -> TimeDelta {
        self.granule
    }

    /// The smoothing window width.
    pub fn window(&self) -> TimeDelta {
        self.window
    }

    /// True when the window was expanded beyond the granule.
    pub fn is_expanded(&self) -> bool {
        self.window > self.granule
    }
}

impl From<TimeDelta> for TemporalGranule {
    fn from(granule: TimeDelta) -> Self {
        TemporalGranule::new(granule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_granule_window_equals_granule() {
        let g = TemporalGranule::new(TimeDelta::from_secs(5));
        assert_eq!(g.granule(), g.window());
        assert!(!g.is_expanded());
    }

    #[test]
    fn explicit_expansion_validated() {
        let g = TemporalGranule::with_window(TimeDelta::from_mins(5), TimeDelta::from_mins(30))
            .unwrap();
        assert!(g.is_expanded());
        assert!(
            TemporalGranule::with_window(TimeDelta::from_mins(5), TimeDelta::from_mins(1)).is_err()
        );
    }

    #[test]
    fn expanded_for_redwood_parameters() {
        // 5-minute samples, want ≥6 samples to ride out bursts → 30 min.
        let g = TemporalGranule::expanded_for(TimeDelta::from_mins(5), TimeDelta::from_mins(5), 6)
            .unwrap();
        assert_eq!(g.window(), TimeDelta::from_mins(30));
        assert_eq!(g.granule(), TimeDelta::from_mins(5));
    }

    #[test]
    fn expansion_never_shrinks_below_granule() {
        // Fast sampler: 5 samples fit easily inside the granule.
        let g =
            TemporalGranule::expanded_for(TimeDelta::from_secs(5), TimeDelta::from_millis(200), 5)
                .unwrap();
        assert_eq!(g.window(), TimeDelta::from_secs(5));
    }

    #[test]
    fn zero_sample_period_rejected() {
        assert!(
            TemporalGranule::expanded_for(TimeDelta::from_secs(5), TimeDelta::ZERO, 5).is_err()
        );
    }
}
