//! The ESP Processor: wires receptors through a pipeline and drives it.
//!
//! "An ESP Processor initiates data flow from the appropriate receptors and
//! applies each stage in a Fjord-style manner as the sensor readings stream
//! through the pipeline" (paper §3.3). Concretely, the processor builds an
//! [`esp_stream::Dataflow`]:
//!
//! * one source node per receptor;
//! * a `spatial_granule`-injection operator per (receptor, group)
//!   membership (paper §4 fn. 2 — ESP automatically adds the attribute),
//!   which also implements *dynamic* granule↔device remapping: the
//!   injector consults the shared [`ProximityGroups`] registry every epoch,
//!   so moving a receptor between groups takes effect immediately;
//! * stage operators per the pipeline's scoped slots, with unions at each
//!   fan-in point;
//! * a final union + output tap.

use std::sync::Arc;

use parking_lot::RwLock;

use esp_stream::ops::{MapOp, UnionOp};
use esp_stream::{Dataflow, EpochRunner, NodeId, Source, TapId};
use esp_types::{well_known, Chunk, DataType};
use esp_types::{
    Batch, EspError, Field, ProximityGroupId, ReceptorId, ReceptorType, Result, Schema,
    SpatialGranule, TimeDelta, Ts, Tuple, Value,
};

use crate::pipeline::{Pipeline, Scope, StageCtx};
use crate::proximity::ProximityGroups;
use crate::stage::StageOperator;

/// A receptor plugged into the processor: identity plus its data source.
pub struct ReceptorBinding {
    /// The device id (must match `receptor_id` values in its tuples for
    /// group-keyed stages to work, though the processor does not enforce
    /// this).
    pub id: ReceptorId,
    /// The device type.
    pub receptor_type: ReceptorType,
    /// The stream source (a simulator or a real driver).
    pub source: Box<dyn Source>,
}

impl ReceptorBinding {
    /// Convenience constructor.
    pub fn new(
        id: ReceptorId,
        receptor_type: ReceptorType,
        source: Box<dyn Source>,
    ) -> ReceptorBinding {
        ReceptorBinding {
            id,
            receptor_type,
            source,
        }
    }
}

/// The output of a completed run.
pub struct RunOutput {
    /// One `(epoch, batch)` entry per executed epoch, in order — the
    /// cleaned output stream delivered to the application.
    pub trace: Vec<(Ts, Batch)>,
}

impl RunOutput {
    /// Flatten the trace into a single batch (losing epoch boundaries).
    pub fn flattened(&self) -> Batch {
        self.trace
            .iter()
            .flat_map(|(_, b)| b.iter().cloned())
            .collect()
    }
}

/// Drives receptor streams through an ESP pipeline.
pub struct EspProcessor {
    runner: EpochRunner,
    tap: TapId,
    groups: Arc<RwLock<ProximityGroups>>,
}

impl std::fmt::Debug for EspProcessor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EspProcessor")
            .field("epochs_run", &self.runner.epochs_run())
            .field("groups", &self.groups.read().len())
            .finish_non_exhaustive()
    }
}

struct StreamHandle {
    node: NodeId,
    receptor: Option<ReceptorId>,
    receptor_type: Option<ReceptorType>,
    group: Option<ProximityGroupId>,
    granule: Option<SpatialGranule>,
}

impl EspProcessor {
    /// Validate a deployment document statically, then build a processor
    /// from it.
    ///
    /// Runs [`DeploymentSpec::validate`](crate::DeploymentSpec::validate)
    /// plus a receptor-coverage check (`E0301`: every wired receptor must
    /// appear in at least one proximity group) *before* any stage is
    /// instantiated. If any error-severity diagnostic fires, the spec is
    /// rejected with [`EspError::Invalid`] carrying the full list — no
    /// tuple ever flows through a misconfigured pipeline.
    pub fn deploy(
        spec: &crate::DeploymentSpec,
        engine: &esp_query::Engine,
        receptors: Vec<ReceptorBinding>,
    ) -> Result<EspProcessor> {
        let mut diags = spec.validate();
        diags.extend(spec.analyze());
        for binding in &receptors {
            let covered = spec
                .groups
                .iter()
                .any(|g| g.members.contains(&binding.id.0));
            if !covered {
                diags.push(
                    esp_types::Diagnostic::error(
                        "E0301",
                        format!(
                            "{} is wired to the processor but belongs to no proximity group",
                            binding.id
                        ),
                    )
                    .with_note(
                        "Merge and Arbitrate operate on proximity groups; an ungrouped \
                         receptor's readings would be silently dropped",
                    ),
                );
            }
        }
        let errors: Vec<_> = diags.into_iter().filter(|d| d.is_error()).collect();
        if !errors.is_empty() {
            return Err(EspError::Invalid(errors));
        }
        let groups = spec.build_groups()?;
        let pipeline = spec.build_pipeline(engine)?;
        EspProcessor::build(groups, &pipeline, receptors)
    }

    /// Build a processor. Every receptor must belong to at least one
    /// proximity group; a receptor in several groups fans out to each.
    pub fn build(
        groups: ProximityGroups,
        pipeline: &Pipeline,
        receptors: Vec<ReceptorBinding>,
    ) -> Result<EspProcessor> {
        let (df, tap, groups) = Self::build_dataflow(groups, pipeline, receptors)?;
        Ok(EspProcessor {
            runner: EpochRunner::new(df),
            tap,
            groups,
        })
    }

    /// Build the pipeline and execute it on the multi-threaded runner
    /// (one thread per node, crossbeam queues between them — the Fjord
    /// queues made literal). The per-epoch output is identical to
    /// [`EspProcessor::run`]; use this when receptor simulation or stage
    /// work dominates and cores are available.
    pub fn run_threaded(
        groups: ProximityGroups,
        pipeline: &Pipeline,
        receptors: Vec<ReceptorBinding>,
        start: Ts,
        period: TimeDelta,
        n_epochs: u64,
    ) -> Result<RunOutput> {
        let (df, tap, _groups) = Self::build_dataflow(groups, pipeline, receptors)?;
        let mut traces = esp_stream::ThreadedRunner::run(df, start, period, n_epochs)?;
        Ok(RunOutput {
            trace: std::mem::take(&mut traces[tap.index()]),
        })
    }

    fn build_dataflow(
        groups: ProximityGroups,
        pipeline: &Pipeline,
        receptors: Vec<ReceptorBinding>,
    ) -> Result<(Dataflow, TapId, Arc<RwLock<ProximityGroups>>)> {
        let groups = Arc::new(RwLock::new(groups));
        let mut df = Dataflow::new();

        // Sources + spatial_granule injection, one branch per membership.
        let mut streams: Vec<StreamHandle> = Vec::new();
        for binding in receptors {
            let memberships = groups.read().groups_of(binding.id);
            if memberships.is_empty() {
                return Err(EspError::Config(format!(
                    "{} is not a member of any proximity group",
                    binding.id
                )));
            }
            let receptor = binding.id;
            let rtype = binding.receptor_type;
            let src = df.add_source(binding.source);
            for group in memberships {
                let granule = groups.read().granule(group)?.clone();
                let inject = granule_injector(Arc::clone(&groups), receptor, group);
                let inject_chunk = granule_chunk_injector(Arc::clone(&groups), receptor, group);
                let node = df.add_operator(
                    Box::new(
                        MapOp::new(format!("inject:{granule}"), inject).with_chunk_fn(inject_chunk),
                    ),
                    &[src],
                )?;
                streams.push(StreamHandle {
                    node,
                    receptor: Some(receptor),
                    receptor_type: Some(rtype),
                    group: Some(group),
                    granule: Some(granule),
                });
            }
        }

        // Stage slots.
        for slot in pipeline.slots() {
            match slot.scope {
                Scope::PerReceptor => {
                    for s in &mut streams {
                        let ctx = StageCtx {
                            scope: Scope::PerReceptor,
                            receptor: s.receptor,
                            receptor_type: s.receptor_type,
                            group: s.group,
                            granule: s.granule.clone(),
                        };
                        let stage = (slot.factory)(&ctx)?;
                        s.node = df.add_operator(Box::new(StageOperator::new(stage)), &[s.node])?;
                    }
                }
                Scope::PerGroup => {
                    let mut next: Vec<StreamHandle> = Vec::new();
                    // Preserve group order of first appearance.
                    let mut group_order: Vec<Option<ProximityGroupId>> = Vec::new();
                    for s in &streams {
                        if !group_order.contains(&s.group) {
                            group_order.push(s.group);
                        }
                    }
                    for group in group_order {
                        let members: Vec<&StreamHandle> =
                            streams.iter().filter(|s| s.group == group).collect();
                        let granule = members.iter().find_map(|s| s.granule.clone());
                        let rtype = members.iter().find_map(|s| s.receptor_type);
                        let input = if members.len() == 1 {
                            members[0].node
                        } else {
                            let nodes: Vec<NodeId> = members.iter().map(|s| s.node).collect();
                            df.add_operator(Box::new(UnionOp::new(nodes.len())), &nodes)?
                        };
                        let ctx = StageCtx {
                            scope: Scope::PerGroup,
                            receptor: None,
                            receptor_type: rtype,
                            group,
                            granule: granule.clone(),
                        };
                        let stage = (slot.factory)(&ctx)?;
                        let node =
                            df.add_operator(Box::new(StageOperator::new(stage)), &[input])?;
                        next.push(StreamHandle {
                            node,
                            receptor: None,
                            receptor_type: rtype,
                            group,
                            granule,
                        });
                    }
                    streams = next;
                }
                Scope::Global => {
                    let input = if streams.len() == 1 {
                        streams[0].node
                    } else {
                        let nodes: Vec<NodeId> = streams.iter().map(|s| s.node).collect();
                        df.add_operator(Box::new(UnionOp::new(nodes.len())), &nodes)?
                    };
                    let ctx = StageCtx {
                        scope: Scope::Global,
                        receptor: None,
                        receptor_type: None,
                        group: None,
                        granule: None,
                    };
                    let stage = (slot.factory)(&ctx)?;
                    let node = df.add_operator(Box::new(StageOperator::new(stage)), &[input])?;
                    streams = vec![StreamHandle {
                        node,
                        receptor: None,
                        receptor_type: None,
                        group: None,
                        granule: None,
                    }];
                }
            }
        }

        // Final fan-in and tap.
        let out = if streams.len() == 1 {
            streams[0].node
        } else {
            let nodes: Vec<NodeId> = streams.iter().map(|s| s.node).collect();
            df.add_operator(Box::new(UnionOp::new(nodes.len())), &nodes)?
        };
        let tap = df.add_tap(out)?;
        Ok((df, tap, groups))
    }

    /// Handle to the live proximity-group registry; changes (membership
    /// moves, new members) take effect on the next epoch.
    pub fn groups(&self) -> Arc<RwLock<ProximityGroups>> {
        Arc::clone(&self.groups)
    }

    /// Register per-stage flush spans and the per-epoch step span in
    /// `registry` (names `esp_stream_node_flush_nanos{node,…}` and
    /// `esp_stream_epoch_step_nanos`), tagging every series with
    /// `labels`. Delegates to
    /// [`EpochRunner::attach_obs`](esp_stream::EpochRunner::attach_obs).
    pub fn attach_obs(&mut self, registry: &esp_obs::Registry, labels: &[(&str, &str)]) {
        self.runner.attach_obs(registry, labels);
    }

    /// Execute one epoch.
    pub fn step(&mut self, epoch: Ts) -> Result<()> {
        self.runner.step(epoch)
    }

    /// Run `n_epochs` epochs from `start`, spaced `period` apart, and
    /// return the cleaned output trace.
    pub fn run(mut self, start: Ts, period: TimeDelta, n_epochs: u64) -> Result<RunOutput> {
        self.runner.run(start, period, n_epochs)?;
        Ok(RunOutput {
            trace: self.runner.take_tap(self.tap),
        })
    }

    /// Drain the output collected so far (for step-driven use).
    pub fn take_output(&mut self) -> Vec<(Ts, Batch)> {
        self.runner.take_tap(self.tap)
    }

    /// Names of stages in this cascade that can never be checkpointed
    /// ([`Stage::checkpointable`](crate::Stage::checkpointable) is
    /// `false`). A durable gateway refuses to spawn over a non-empty
    /// answer (`E0804`) — otherwise it would run fine until its first
    /// checkpoint and only then fail at runtime.
    pub fn non_checkpointable_stages(&self) -> Vec<String> {
        self.runner.non_checkpointable()
    }

    /// Names and causes of stages in this cascade whose replay is not
    /// reproducible ([`Stage::determinism`](crate::Stage::determinism)
    /// reports taint) — the replay half of the durability contract,
    /// companion to [`EspProcessor::non_checkpointable_stages`]. A
    /// durable gateway refuses to spawn over a non-empty answer
    /// (`E0903`): recovery replays the WAL, and a tainted stage would
    /// recover to different bytes.
    pub fn nondeterministic_stages(&self) -> Vec<(String, String)> {
        self.runner.nondeterministic()
    }

    /// Capture the cross-epoch state of every stage in the cascade (the
    /// epoch-aligned checkpoint protocol — see `esp-durability`). Call
    /// only between [`EspProcessor::step`]s.
    pub fn snapshot_state(&self) -> Result<Vec<u8>> {
        self.runner.snapshot_state()
    }

    /// Restore stage state captured by [`EspProcessor::snapshot_state`]
    /// into a freshly built processor of the same configuration.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<()> {
        self.runner.restore_state(bytes)
    }
}

/// Build the `spatial_granule` injection function for one (receptor,
/// group) membership. Consults the registry per tuple so dynamic
/// remapping (and granule renames) take effect immediately; tuples from a
/// receptor that has left the group are dropped.
fn granule_injector(
    groups: Arc<RwLock<ProximityGroups>>,
    receptor: ReceptorId,
    group: ProximityGroupId,
) -> impl Fn(&Tuple) -> Result<Option<Tuple>> + Send {
    // Single-entry schema cache: receptors emit one schema per stream.
    let cache: RwLock<Option<(Arc<Schema>, Arc<Schema>)>> = RwLock::new(None);
    move |t: &Tuple| {
        let Some(granule) = current_granule(&groups, receptor, group)? else {
            return Ok(None);
        };
        let extended = extended_schema(&cache, t.schema())?;
        Ok(Some(t.with_appended(&extended, granule)?))
    }
}

/// The chunk-path twin of [`granule_injector`]: one membership check and
/// one appended constant column per *chunk* instead of per tuple.
fn granule_chunk_injector(
    groups: Arc<RwLock<ProximityGroups>>,
    receptor: ReceptorId,
    group: ProximityGroupId,
) -> impl Fn(&Chunk) -> Result<Option<Chunk>> + Send {
    let cache: RwLock<Option<(Arc<Schema>, Arc<Schema>)>> = RwLock::new(None);
    move |chunk: &Chunk| {
        let Some(granule) = current_granule(&groups, receptor, group)? else {
            return Ok(None);
        };
        let extended = extended_schema(&cache, chunk.schema())?;
        Ok(Some(chunk.with_appended(&extended, granule)?))
    }
}

/// Consult the live registry: the granule value to inject, or `None` when
/// the receptor has left the group (its readings are dropped).
fn current_granule(
    groups: &RwLock<ProximityGroups>,
    receptor: ReceptorId,
    group: ProximityGroupId,
) -> Result<Option<Value>> {
    let registry = groups.read();
    let entry = registry.group(group)?;
    if !entry.members.contains(&receptor) {
        return Ok(None);
    }
    Ok(Some(Value::Str(Arc::clone(&entry.granule.0))))
}

/// Cached `input + spatial_granule` schema extension. Interned so every
/// (receptor, group) branch shares one `Arc` — downstream queries' slot
/// plans stay pointer-valid across branches and epochs.
fn extended_schema(
    cache: &RwLock<Option<(Arc<Schema>, Arc<Schema>)>>,
    input: &Arc<Schema>,
) -> Result<Arc<Schema>> {
    let hit = cache
        .read()
        .as_ref()
        .filter(|(i, _)| Arc::ptr_eq(i, input))
        .map(|(_, out)| Arc::clone(out));
    if let Some(s) = hit {
        return Ok(s);
    }
    let s = esp_types::registry::intern(
        &input.with_field(Field::new(well_known::SPATIAL_GRANULE, DataType::Str))?,
    );
    *cache.write() = Some((Arc::clone(input), Arc::clone(&s)));
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use crate::stage::FnStage;
    use crate::stages::smooth::SmoothStage;
    use esp_stream::ScriptedSource;
    use esp_types::TupleBuilder;

    fn rfid(ts: Ts, receptor: i64, tag: &str) -> Tuple {
        TupleBuilder::new(&well_known::rfid_schema(), ts)
            .set("receptor_id", receptor)
            .unwrap()
            .set("tag_id", tag)
            .unwrap()
            .build()
            .unwrap()
    }

    fn one_reading_source(receptor: i64, tag: &'static str) -> Box<dyn Source> {
        Box::new(ScriptedSource::new(
            format!("reader-{receptor}"),
            vec![(Ts::ZERO, vec![rfid(Ts::ZERO, receptor, tag)])],
        ))
    }

    fn two_shelf_groups() -> ProximityGroups {
        let mut pg = ProximityGroups::new();
        pg.add_group(ReceptorType::Rfid, "shelf0", [ReceptorId(0)]);
        pg.add_group(ReceptorType::Rfid, "shelf1", [ReceptorId(1)]);
        pg
    }

    #[test]
    fn injects_spatial_granule() {
        let proc = EspProcessor::build(
            two_shelf_groups(),
            &Pipeline::raw(),
            vec![
                ReceptorBinding::new(
                    ReceptorId(0),
                    ReceptorType::Rfid,
                    one_reading_source(0, "a"),
                ),
                ReceptorBinding::new(
                    ReceptorId(1),
                    ReceptorType::Rfid,
                    one_reading_source(1, "b"),
                ),
            ],
        )
        .unwrap();
        let out = proc.run(Ts::ZERO, TimeDelta::from_millis(200), 1).unwrap();
        let batch = &out.trace[0].1;
        assert_eq!(batch.len(), 2);
        let granules: Vec<&str> = batch
            .iter()
            .map(|t| t.get("spatial_granule").unwrap().as_str().unwrap())
            .collect();
        assert!(granules.contains(&"shelf0") && granules.contains(&"shelf1"));
    }

    #[test]
    fn ungrouped_receptor_rejected() {
        let err = EspProcessor::build(
            ProximityGroups::new(),
            &Pipeline::raw(),
            vec![ReceptorBinding::new(
                ReceptorId(7),
                ReceptorType::Rfid,
                one_reading_source(7, "a"),
            )],
        )
        .unwrap_err();
        assert!(err.to_string().contains("receptor#7"));
    }

    #[test]
    fn per_receptor_stage_instantiated_per_stream() {
        // A smooth stage per reader: each keeps its own window.
        let pipeline = Pipeline::builder()
            .per_receptor("smooth", |ctx| {
                assert!(ctx.receptor.is_some());
                assert!(ctx.granule.is_some());
                Ok(Box::new(SmoothStage::count_by_key(
                    "smooth",
                    TimeDelta::from_secs(5),
                    ["spatial_granule", "tag_id"],
                )))
            })
            .build();
        let proc = EspProcessor::build(
            two_shelf_groups(),
            &pipeline,
            vec![
                ReceptorBinding::new(
                    ReceptorId(0),
                    ReceptorType::Rfid,
                    one_reading_source(0, "a"),
                ),
                ReceptorBinding::new(
                    ReceptorId(1),
                    ReceptorType::Rfid,
                    one_reading_source(1, "b"),
                ),
            ],
        )
        .unwrap();
        let out = proc.run(Ts::ZERO, TimeDelta::from_secs(1), 3).unwrap();
        // Both tags persist through the granule on every epoch.
        for (_, batch) in &out.trace {
            assert_eq!(batch.len(), 2);
        }
    }

    #[test]
    fn per_group_stage_unions_members() {
        let mut pg = ProximityGroups::new();
        pg.add_group(ReceptorType::Rfid, "room", [ReceptorId(0), ReceptorId(1)]);
        let pipeline = Pipeline::builder()
            .per_group("count", |_| {
                Ok(Box::new(FnStage::per_epoch("count", |epoch, input| {
                    let schema = Schema::builder().field("n", DataType::Int).build().unwrap();
                    Ok(vec![Tuple::new_unchecked(
                        schema,
                        epoch,
                        vec![Value::Int(input.len() as i64)],
                    )])
                })))
            })
            .build();
        let proc = EspProcessor::build(
            pg,
            &pipeline,
            vec![
                ReceptorBinding::new(
                    ReceptorId(0),
                    ReceptorType::Rfid,
                    one_reading_source(0, "a"),
                ),
                ReceptorBinding::new(
                    ReceptorId(1),
                    ReceptorType::Rfid,
                    one_reading_source(1, "b"),
                ),
            ],
        )
        .unwrap();
        let out = proc.run(Ts::ZERO, TimeDelta::from_millis(200), 1).unwrap();
        assert_eq!(out.trace[0].1[0].get("n"), Some(&Value::Int(2)));
    }

    #[test]
    fn dynamic_remapping_takes_effect_mid_run() {
        let mut pg = ProximityGroups::new();
        let g0 = pg.add_group(ReceptorType::Rfid, "shelf0", [ReceptorId(0)]);
        let _g1 = pg.add_group(ReceptorType::Rfid, "shelf1", [ReceptorId(1)]);
        let script: Vec<(Ts, Batch)> = (0..4u64)
            .map(|i| {
                let ts = Ts::from_secs(i);
                (ts, vec![rfid(ts, 0, "a")])
            })
            .collect();
        let mut proc = EspProcessor::build(
            pg,
            &Pipeline::raw(),
            vec![
                ReceptorBinding::new(
                    ReceptorId(0),
                    ReceptorType::Rfid,
                    Box::new(ScriptedSource::new("r0", script)),
                ),
                ReceptorBinding::new(
                    ReceptorId(1),
                    ReceptorType::Rfid,
                    one_reading_source(1, "b"),
                ),
            ],
        )
        .unwrap();
        proc.step(Ts::ZERO).unwrap();
        proc.step(Ts::from_secs(1)).unwrap();
        // Receptor 0 leaves its group: its branch goes silent.
        proc.groups()
            .write()
            .remove_member(g0, ReceptorId(0))
            .unwrap();
        proc.step(Ts::from_secs(2)).unwrap();
        proc.step(Ts::from_secs(3)).unwrap();
        let trace = proc.take_output();
        let counts: Vec<usize> = trace
            .iter()
            .map(|(_, b)| {
                b.iter()
                    .filter(|t| t.get("tag_id") == Some(&Value::str("a")))
                    .count()
            })
            .collect();
        assert_eq!(counts, vec![1, 1, 0, 0]);
    }

    #[test]
    fn chunk_fed_processor_matches_row_fed_trace() {
        use esp_stream::ScriptedChunkSource;
        // Same readings, once as row batches and once as columnar chunks,
        // through a smoothing pipeline: the traces must be identical.
        let script: Vec<(Ts, Batch)> = (0..4u64)
            .map(|i| {
                let ts = Ts::from_secs(i);
                (ts, vec![rfid(ts, 0, "a"), rfid(ts, 0, "b")])
            })
            .collect();
        let chunk_script: Vec<(Ts, Chunk)> = script
            .iter()
            .map(|(ts, batch)| {
                (
                    *ts,
                    Chunk::from_tuples(&well_known::rfid_schema(), batch).unwrap(),
                )
            })
            .collect();
        let pipeline = || {
            Pipeline::builder()
                .per_receptor("smooth", |_| {
                    Ok(Box::new(SmoothStage::count_by_key(
                        "smooth",
                        TimeDelta::from_secs(5),
                        ["spatial_granule", "tag_id"],
                    )))
                })
                .build()
        };
        let groups = || {
            let mut pg = ProximityGroups::new();
            pg.add_group(ReceptorType::Rfid, "shelf0", [ReceptorId(0)]);
            pg
        };
        let row_proc = EspProcessor::build(
            groups(),
            &pipeline(),
            vec![ReceptorBinding::new(
                ReceptorId(0),
                ReceptorType::Rfid,
                Box::new(ScriptedSource::new("r0", script)),
            )],
        )
        .unwrap();
        let chunk_proc = EspProcessor::build(
            groups(),
            &pipeline(),
            vec![ReceptorBinding::new(
                ReceptorId(0),
                ReceptorType::Rfid,
                Box::new(ScriptedChunkSource::new("r0", chunk_script)),
            )],
        )
        .unwrap();
        let rows = row_proc.run(Ts::ZERO, TimeDelta::from_secs(1), 4).unwrap();
        let chunks = chunk_proc
            .run(Ts::ZERO, TimeDelta::from_secs(1), 4)
            .unwrap();
        assert_eq!(rows.trace, chunks.trace);
        assert!(rows.trace.iter().any(|(_, b)| !b.is_empty()));
    }

    #[test]
    fn global_stage_sees_union_of_everything() {
        let pipeline = Pipeline::builder()
            .global("merge-all", |ctx| {
                assert_eq!(ctx.scope, Scope::Global);
                Ok(Box::new(FnStage::per_epoch("merge-all", |epoch, input| {
                    let schema = Schema::builder().field("n", DataType::Int).build().unwrap();
                    Ok(vec![Tuple::new_unchecked(
                        schema,
                        epoch,
                        vec![Value::Int(input.len() as i64)],
                    )])
                })))
            })
            .build();
        let proc = EspProcessor::build(
            two_shelf_groups(),
            &pipeline,
            vec![
                ReceptorBinding::new(
                    ReceptorId(0),
                    ReceptorType::Rfid,
                    one_reading_source(0, "a"),
                ),
                ReceptorBinding::new(
                    ReceptorId(1),
                    ReceptorType::Rfid,
                    one_reading_source(1, "b"),
                ),
            ],
        )
        .unwrap();
        let out = proc.run(Ts::ZERO, TimeDelta::from_millis(200), 1).unwrap();
        assert_eq!(out.trace[0].1[0].get("n"), Some(&Value::Int(2)));
    }
}
