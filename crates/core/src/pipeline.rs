//! Pipelines: ordered, scoped arrangements of stage factories.
//!
//! A [`Pipeline`] does not hold stages — it holds *factories*. The
//! [`EspProcessor`](crate::EspProcessor) instantiates one stage per
//! receptor stream for per-receptor slots, one per proximity group for
//! per-group slots, and a single instance for global slots. This is what
//! makes the Figure 5 ablation a configuration change: the same factories
//! can be arranged Smooth→Arbitrate, Arbitrate→Smooth, or individually.

use esp_types::{ProximityGroupId, ReceptorId, ReceptorType, Result, SpatialGranule};

use crate::stage::Stage;

/// Where in the fan-in topology a stage slot sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// One stage instance per receptor stream (Point, Smooth).
    PerReceptor,
    /// One instance per proximity group, fed by the union of the group's
    /// streams (Merge).
    PerGroup,
    /// One instance fed by the union of everything (Arbitrate, Virtualize).
    Global,
}

/// Context handed to a stage factory when the processor instantiates it.
#[derive(Debug, Clone)]
pub struct StageCtx {
    /// The slot's scope.
    pub scope: Scope,
    /// The receptor this instance serves (per-receptor slots).
    pub receptor: Option<ReceptorId>,
    /// The receptor's type, when known.
    pub receptor_type: Option<ReceptorType>,
    /// The proximity group this instance serves (per-receptor and
    /// per-group slots).
    pub group: Option<ProximityGroupId>,
    /// The spatial granule the group monitors, when known.
    pub granule: Option<SpatialGranule>,
}

/// A stage factory: instantiates a fresh stage for one (receptor | group |
/// global) placement.
pub type StageFactory = Box<dyn Fn(&StageCtx) -> Result<Box<dyn Stage>> + Send + Sync>;

/// One slot of a pipeline.
pub struct StageSlot {
    /// Display label ("smooth", "arbitrate", …).
    pub label: String,
    /// Fan-in scope.
    pub scope: Scope,
    /// Stage factory.
    pub factory: StageFactory,
}

/// An ordered cascade of scoped stage slots.
pub struct Pipeline {
    slots: Vec<StageSlot>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let labels: Vec<(&str, Scope)> = self
            .slots
            .iter()
            .map(|s| (s.label.as_str(), s.scope))
            .collect();
        f.debug_struct("Pipeline").field("slots", &labels).finish()
    }
}

impl Pipeline {
    /// Start building a pipeline.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder { slots: Vec::new() }
    }

    /// An empty pipeline: raw receptor data passes straight through (the
    /// "Raw" configuration of Figure 5).
    pub fn raw() -> Pipeline {
        Pipeline { slots: Vec::new() }
    }

    /// The slots in order.
    pub fn slots(&self) -> &[StageSlot] {
        &self.slots
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Builder for [`Pipeline`].
pub struct PipelineBuilder {
    slots: Vec<StageSlot>,
}

impl PipelineBuilder {
    /// Append a per-receptor slot.
    pub fn per_receptor(
        mut self,
        label: impl Into<String>,
        factory: impl Fn(&StageCtx) -> Result<Box<dyn Stage>> + Send + Sync + 'static,
    ) -> Self {
        self.slots.push(StageSlot {
            label: label.into(),
            scope: Scope::PerReceptor,
            factory: Box::new(factory),
        });
        self
    }

    /// Append a per-group slot.
    pub fn per_group(
        mut self,
        label: impl Into<String>,
        factory: impl Fn(&StageCtx) -> Result<Box<dyn Stage>> + Send + Sync + 'static,
    ) -> Self {
        self.slots.push(StageSlot {
            label: label.into(),
            scope: Scope::PerGroup,
            factory: Box::new(factory),
        });
        self
    }

    /// Append a global slot.
    pub fn global(
        mut self,
        label: impl Into<String>,
        factory: impl Fn(&StageCtx) -> Result<Box<dyn Stage>> + Send + Sync + 'static,
    ) -> Self {
        self.slots.push(StageSlot {
            label: label.into(),
            scope: Scope::Global,
            factory: Box::new(factory),
        });
        self
    }

    /// Finish.
    pub fn build(self) -> Pipeline {
        Pipeline { slots: self.slots }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::FnStage;

    #[test]
    fn builder_preserves_order_and_scope() {
        let p = Pipeline::builder()
            .per_receptor("smooth", |_| {
                Ok(Box::new(FnStage::per_tuple("id", |t| Ok(Some(t.clone())))))
            })
            .per_group("merge", |_| {
                Ok(Box::new(FnStage::per_tuple("id", |t| Ok(Some(t.clone())))))
            })
            .global("arbitrate", |_| {
                Ok(Box::new(FnStage::per_tuple("id", |t| Ok(Some(t.clone())))))
            })
            .build();
        let labels: Vec<&str> = p.slots().iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["smooth", "merge", "arbitrate"]);
        assert_eq!(p.slots()[0].scope, Scope::PerReceptor);
        assert_eq!(p.slots()[1].scope, Scope::PerGroup);
        assert_eq!(p.slots()[2].scope, Scope::Global);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn raw_pipeline_is_empty() {
        assert!(Pipeline::raw().is_empty());
    }

    #[test]
    fn factories_receive_context() {
        let p = Pipeline::builder()
            .per_receptor("probe", |ctx| {
                assert_eq!(ctx.scope, Scope::PerReceptor);
                Ok(Box::new(FnStage::per_tuple("id", |t| Ok(Some(t.clone())))))
            })
            .build();
        let ctx = StageCtx {
            scope: Scope::PerReceptor,
            receptor: Some(ReceptorId(3)),
            receptor_type: Some(ReceptorType::Rfid),
            group: Some(ProximityGroupId(0)),
            granule: Some(SpatialGranule::new("shelf0")),
        };
        let stage = (p.slots()[0].factory)(&ctx).unwrap();
        assert_eq!(stage.name(), "id");
    }
}
