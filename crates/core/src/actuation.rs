//! The actuation controller (paper §5.3.1).
//!
//! When a receptor's delivered readings are too sparse for Smooth to fill
//! a granule-sized window, ESP has two options: widen the window (§5.2.1,
//! costing accuracy — see the `ablation_window_expansion` experiment) or
//! *actuate the sensor* to sample faster. [`RateController`] implements
//! the second: fed the per-granule reading count, it speeds the receptor
//! up (halving the period) while the count is under target and relaxes it
//! (doubling) once the count comfortably exceeds target, bounded by a
//! floor and the initial period.

use esp_types::{SampleRateHandle, TimeDelta};

/// Multiplicative-increase/decrease controller for one receptor's sample
/// rate.
#[derive(Debug, Clone)]
pub struct RateController {
    handle: SampleRateHandle,
    /// Desired readings per granule window.
    target: u64,
    /// Fastest allowed sampling (hardware/energy floor).
    min_period: TimeDelta,
    /// Slowest allowed sampling (the deployment's initial period).
    max_period: TimeDelta,
    speedups: u64,
    relaxations: u64,
}

impl RateController {
    /// Create a controller over `handle`. The handle's current period
    /// becomes the ceiling; `min_period` is the floor.
    pub fn new(handle: SampleRateHandle, target: u64, min_period: TimeDelta) -> RateController {
        let max_period = handle.period();
        RateController {
            handle,
            target: target.max(1),
            min_period: min_period.max(TimeDelta::from_millis(1)),
            max_period,
            speedups: 0,
            relaxations: 0,
        }
    }

    /// Report the number of readings that survived into the last granule
    /// window; the controller adjusts the sample period.
    pub fn observe(&mut self, readings_in_window: u64) {
        let current = self.handle.period();
        if readings_in_window < self.target {
            // Halve the period (sample twice as fast), bounded below.
            let next =
                TimeDelta::from_millis((current.as_millis() / 2).max(1)).max(self.min_period);
            if next < current {
                self.handle.set_period(next);
                self.speedups += 1;
            }
        } else if readings_in_window >= self.target.saturating_mul(3) {
            // Plenty of margin: relax to save energy, bounded above.
            let next =
                TimeDelta::from_millis(current.as_millis().saturating_mul(2)).min(self.max_period);
            if next > current {
                self.handle.set_period(next);
                self.relaxations += 1;
            }
        }
    }

    /// The current sample period.
    pub fn period(&self) -> TimeDelta {
        self.handle.period()
    }

    /// Number of speed-up adjustments issued.
    pub fn speedups(&self) -> u64 {
        self.speedups
    }

    /// Number of relax adjustments issued.
    pub fn relaxations(&self) -> u64 {
        self.relaxations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(initial_s: u64, target: u64, floor_s: u64) -> RateController {
        RateController::new(
            SampleRateHandle::new(TimeDelta::from_secs(initial_s)),
            target,
            TimeDelta::from_secs(floor_s),
        )
    }

    #[test]
    fn starved_window_speeds_sampling_up() {
        let mut c = controller(300, 3, 30);
        c.observe(0);
        assert_eq!(c.period(), TimeDelta::from_secs(150));
        c.observe(1);
        assert_eq!(c.period(), TimeDelta::from_secs(75));
        assert_eq!(c.speedups(), 2);
    }

    #[test]
    fn respects_the_floor() {
        let mut c = controller(60, 5, 30);
        for _ in 0..10 {
            c.observe(0);
        }
        assert_eq!(c.period(), TimeDelta::from_secs(30), "floored");
        assert_eq!(c.speedups(), 1, "no-op adjustments not counted");
    }

    #[test]
    fn abundant_readings_relax_toward_initial() {
        let mut c = controller(300, 3, 30);
        // Drive it down…
        c.observe(0);
        c.observe(0);
        assert_eq!(c.period(), TimeDelta::from_secs(75));
        // …then relax once readings are ≥ 3× target.
        c.observe(9);
        assert_eq!(c.period(), TimeDelta::from_secs(150));
        c.observe(9);
        assert_eq!(c.period(), TimeDelta::from_secs(300));
        c.observe(9);
        assert_eq!(
            c.period(),
            TimeDelta::from_secs(300),
            "capped at the initial period"
        );
        assert_eq!(c.relaxations(), 2);
    }

    #[test]
    fn on_target_holds_steady() {
        let mut c = controller(300, 3, 30);
        c.observe(3);
        c.observe(5);
        assert_eq!(c.period(), TimeDelta::from_secs(300));
        assert_eq!(c.speedups() + c.relaxations(), 0);
    }
}
