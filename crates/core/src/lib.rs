//! # esp-core
//!
//! **ESP — Extensible receptor Stream Processing**: the pipelined framework
//! for online cleaning of sensor data streams from Jeffery, Alonso,
//! Franklin, Hong & Widom, *"A Pipelined Framework for Online Cleaning of
//! Sensor Data Streams"* (ICDE 2006).
//!
//! Physical receptor devices (RFID readers, wireless sensor motes, X10
//! motion detectors) produce *dirty* data: readings are frequently missed,
//! and devices "fail dirty" — they keep reporting faulty values. ESP cleans
//! these streams online, before they reach the application, using two
//! application-level abstractions:
//!
//! * the **temporal granule** ([`TemporalGranule`]) — the smallest unit of
//!   time the application operates on, realized as a sliding window;
//! * the **spatial granule** ([`SpatialGranule`](esp_types::SpatialGranule))
//!   — the smallest unit of space (a shelf, a room), monitored by a
//!   *proximity group* ([`ProximityGroups`]) of same-type receptors.
//!
//! Cleaning is a cascade of five programmable stages (paper §3.2), each a
//! [`Stage`] that may be implemented as a declarative query
//! ([`DeclarativeStage`]), a user-defined function ([`FnStage`]), or
//! arbitrary code:
//!
//! | Stage | Scope | Purpose |
//! |---|---|---|
//! | [`PointStage`] | single value | filter errant readings, convert fields |
//! | [`SmoothStage`] | temporal granule | interpolate missed readings, drop errant single readings |
//! | [`MergeStage`] | spatial granule | spatial interpolation, outlier devices |
//! | [`ArbitrateStage`] | between granules | de-duplicate conflicting readings |
//! | [`VirtualizeStage`] | across receptor types | application-level fusion ("person detector") |
//!
//! A [`Pipeline`] arranges stage factories in scoped slots; the
//! [`EspProcessor`] wires receptor sources through the pipeline as an
//! [`esp_stream::Dataflow`] and drives it epoch by epoch, injecting the
//! `spatial_granule` attribute into every stream (paper §4 fn. 2).
//!
//! ```
//! use esp_core::{EspProcessor, Pipeline, ProximityGroups, ReceptorBinding, SmoothStage};
//! use esp_stream::ScriptedSource;
//! use esp_types::{well_known, ReceptorId, ReceptorType, TimeDelta, Ts, TupleBuilder};
//!
//! // One reader on one shelf; one sighting of tag-1 at t=0.
//! let schema = well_known::rfid_schema();
//! let sighting = TupleBuilder::new(&schema, Ts::ZERO)
//!     .set("receptor_id", 0i64).unwrap()
//!     .set("tag_id", "tag-1").unwrap()
//!     .build().unwrap();
//! let source = ScriptedSource::new("reader", vec![(Ts::ZERO, vec![sighting])]);
//!
//! let mut groups = ProximityGroups::new();
//! groups.add_group(ReceptorType::Rfid, "shelf0", [ReceptorId(0)]);
//!
//! let granule = TimeDelta::from_secs(5);
//! let pipeline = Pipeline::builder()
//!     .per_receptor("smooth", move |_ctx| {
//!         Ok(Box::new(SmoothStage::count_by_key("smooth", granule, ["tag_id"])))
//!     })
//!     .build();
//!
//! let processor = EspProcessor::build(
//!     groups,
//!     &pipeline,
//!     vec![ReceptorBinding::new(ReceptorId(0), ReceptorType::Rfid, Box::new(source))],
//! ).unwrap();
//! let output = processor.run(Ts::ZERO, TimeDelta::from_secs(1), 4).unwrap();
//! // The single sighting persists through the 5 s granule at every epoch.
//! assert!(output.trace.iter().all(|(_, batch)| batch.len() == 1));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Library code must surface failures as typed errors, never panic mid-
// cascade; tests are free to unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod absint;
mod actuation;
pub mod deploy;
mod granule;
mod pipeline;
mod processor;
mod proximity;
mod stage;
pub mod stages;

pub use actuation::RateController;
pub use deploy::DeploymentSpec;
pub use granule::TemporalGranule;
pub use pipeline::{Pipeline, PipelineBuilder, Scope, StageCtx};
pub use processor::{EspProcessor, ReceptorBinding, RunOutput};
pub use proximity::ProximityGroups;
pub use stage::{DeclarativeStage, FnStage, Stage, StageOperator, TupleMapFn};
pub use stages::arbitrate::{ArbitrateStage, TieBreak};
pub use stages::merge::MergeStage;
pub use stages::model::{ModelAction, ModelStage};
pub use stages::point::PointStage;
pub use stages::smooth::SmoothStage;
pub use stages::virtualize::{VirtualizeStage, VoteFn, VoteRule};
