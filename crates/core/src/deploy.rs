//! Declarative deployment descriptors.
//!
//! The paper's second design goal is that ESP be "easy to deploy and
//! configure" (§1): "deploying a cleaning pipeline using ESP involves
//! implementing one or more of these stages … in many cases through
//! declarative queries" (§3.3). [`DeploymentSpec`] takes that to its
//! conclusion: an entire deployment — temporal granule, proximity groups,
//! and the stage cascade (including stages written as embedded CQL) — is a
//! JSON document, so reconfiguring for a new deployment means editing a
//! config file, not recompiling.
//!
//! ```json
//! {
//!   "temporal_granule": "5 sec",
//!   "groups": [
//!     { "granule": "shelf0", "receptor_type": "rfid", "members": [0] },
//!     { "granule": "shelf1", "receptor_type": "rfid", "members": [1] }
//!   ],
//!   "stages": [
//!     { "smooth": { "mode": "count_by_key", "keys": ["spatial_granule", "tag_id"] } },
//!     { "arbitrate": { "tie_break": { "priority": ["shelf1", "shelf0"] } } }
//!   ]
//! }
//! ```

use std::sync::Arc;

use serde::{value::Value as Json, DeError, Deserialize};

use esp_query::Engine;
use esp_types::{
    registry, well_known, DataType, Diagnostic, EspError, Field, ReceptorId, ReceptorType, Result,
    Schema, SpatialGranule, TimeDelta, Value,
};

use crate::pipeline::{Pipeline, PipelineBuilder, StageCtx};
use crate::proximity::ProximityGroups;
use crate::stage::{DeclarativeStage, Stage};
use crate::stages::arbitrate::{ArbitrateStage, TieBreak};
use crate::stages::merge::MergeStage;
use crate::stages::point::PointStage;
use crate::stages::smooth::SmoothStage;
use crate::stages::virtualize::{VirtualizeStage, VoteRule};
use crate::TemporalGranule;

/// A complete ESP deployment described as data.
#[derive(Debug, Clone)]
pub struct DeploymentSpec {
    /// The application's temporal granule (`"5 sec"`, `"5 min"`, …).
    pub temporal_granule: String,
    /// Optional expanded smoothing window (§5.2.1); defaults to the
    /// granule.
    pub smooth_window: Option<String>,
    /// The proximity groups.
    pub groups: Vec<GroupSpec>,
    /// The stage cascade, in order.
    pub stages: Vec<StageSpec>,
}

/// One proximity group in a deployment document.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// Spatial granule name.
    pub granule: String,
    /// Receptor type: `"rfid"`, `"mote"`, or `"x10-motion"`.
    pub receptor_type: String,
    /// Member device ids.
    pub members: Vec<u32>,
}

/// One stage of the cascade. Scope defaults follow the paper's pipeline
/// (Point/Smooth per receptor, Merge per group, Arbitrate/Virtualize
/// global); `declarative` stages choose their scope explicitly.
#[derive(Debug, Clone)]
pub enum StageSpec {
    /// Tuple-level filters.
    Point(PointSpec),
    /// Temporal-granule aggregation (per receptor).
    Smooth(SmoothSpec),
    /// Spatial-granule aggregation (per group).
    Merge(MergeSpec),
    /// Cross-granule conflict resolution (global).
    Arbitrate(ArbitrateSpec),
    /// Cross-type fusion (global).
    Virtualize(VirtualizeSpec),
    /// An arbitrary stage written as a CQL continuous query.
    Declarative(DeclarativeSpec),
}

/// Point-stage configuration.
#[derive(Debug, Clone)]
pub struct PointSpec {
    /// Numeric range filters: keep `min <= field <= max`.
    pub range_filters: Vec<RangeFilterSpec>,
    /// Keep only tuples whose `field` is one of `allowed`.
    pub expected_values: Option<ExpectedValuesSpec>,
}

/// One numeric range filter.
#[derive(Debug, Clone)]
pub struct RangeFilterSpec {
    /// Field to test.
    pub field: String,
    /// Lower bound (unbounded if absent).
    pub min: Option<f64>,
    /// Upper bound (unbounded if absent).
    pub max: Option<f64>,
}

/// Expected-values filter.
#[derive(Debug, Clone)]
pub struct ExpectedValuesSpec {
    /// Field to test.
    pub field: String,
    /// The allowed values.
    pub allowed: Vec<String>,
}

/// Smooth-stage configuration.
#[derive(Debug, Clone)]
pub struct SmoothSpec {
    /// `count_by_key`, `windowed_mean`, `event_presence`, or `ewma`.
    pub mode: String,
    /// Grouping keys (e.g. `["spatial_granule", "tag_id"]`).
    pub keys: Vec<String>,
    /// Value field for `windowed_mean` / `ewma` / `event_presence`.
    pub value_field: Option<String>,
    /// `event_presence`: the "on" value (default `"ON"`).
    pub on_value: Option<String>,
    /// `event_presence`: events required in the window (default 1).
    pub min_events: Option<usize>,
    /// `ewma`: smoothing factor in `[0, 1]`.
    pub alpha: Option<f64>,
}

/// Merge-stage configuration.
#[derive(Debug, Clone)]
pub struct MergeSpec {
    /// `outlier_filtered_mean`, `union_all`, `vote_threshold`, or
    /// `windowed_median`.
    pub mode: String,
    /// Value field for the scalar modes.
    pub value_field: Option<String>,
    /// `outlier_filtered_mean`: rejection threshold in σ (default 1.0).
    pub k: Option<f64>,
    /// `union_all`: optional dedup key.
    pub dedup_key: Option<String>,
    /// `vote_threshold`: the "on" value (default `"ON"`).
    pub on_value: Option<String>,
    /// `vote_threshold`: device field (default `"receptor_id"`).
    pub device_field: Option<String>,
    /// `vote_threshold`: devices required (default 2).
    pub min_devices: Option<usize>,
}

/// Arbitrate-stage configuration.
#[derive(Debug, Clone)]
pub struct ArbitrateSpec {
    /// Tie-break policy.
    pub tie_break: Option<TieBreakSpec>,
    /// Key field (default `"tag_id"`).
    pub key_field: Option<String>,
    /// Count field (default `"count"`).
    pub count_field: Option<String>,
}

/// Tie-break policy in a deployment document.
#[derive(Debug, Clone)]
pub enum TieBreakSpec {
    /// Keep the reading in every tied granule.
    KeepAll,
    /// Highest-priority granule wins (first in the list).
    Priority(Vec<String>),
}

/// Virtualize-stage configuration.
#[derive(Debug, Clone)]
pub struct VirtualizeSpec {
    /// The event emitted on detection.
    pub event: String,
    /// Votes required.
    pub threshold: usize,
    /// Voting rules.
    pub rules: Vec<VoteRuleSpec>,
}

/// One vote rule.
#[derive(Debug, Clone)]
pub enum VoteRuleSpec {
    /// Yes when any tuple's `field` exceeds `threshold`.
    NumericAbove {
        /// Field to test.
        field: String,
        /// Threshold value.
        threshold: f64,
    },
    /// Yes when any tuple's `field` equals `value`.
    ValueEquals {
        /// Field to test.
        field: String,
        /// Value to match.
        value: String,
    },
    /// Yes when at least `n` tuples carry a non-null `field`.
    MinTuplesWith {
        /// Field to test.
        field: String,
        /// Required tuple count.
        n: usize,
    },
}

/// A stage written as CQL.
#[derive(Debug, Clone)]
pub struct DeclarativeSpec {
    /// `per_receptor`, `per_group`, or `global`.
    pub scope: String,
    /// The continuous query (single input stream).
    pub query: String,
    /// Display label (defaults to `"declarative"`).
    pub label: Option<String>,
}

/// Required field lookup for the hand-written `Deserialize` impls below
/// (the vendored serde has no derive; see `vendor/serde`).
fn req<T: Deserialize>(v: &Json, key: &str) -> std::result::Result<T, DeError> {
    match v.get(key) {
        Some(x) => T::from_value(x).map_err(|e| DeError::msg(format!("{key}: {e}"))),
        None => Err(DeError::msg(format!("missing field '{key}'"))),
    }
}

/// Optional field lookup: absent and `null` both mean `None`.
fn opt<T: Deserialize>(v: &Json, key: &str) -> std::result::Result<Option<T>, DeError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) if x.is_null() => Ok(None),
        Some(x) => T::from_value(x)
            .map(Some)
            .map_err(|e| DeError::msg(format!("{key}: {e}"))),
    }
}

impl Deserialize for DeploymentSpec {
    fn from_value(v: &Json) -> std::result::Result<Self, DeError> {
        Ok(DeploymentSpec {
            temporal_granule: req(v, "temporal_granule")?,
            smooth_window: opt(v, "smooth_window")?,
            groups: req(v, "groups")?,
            stages: req(v, "stages")?,
        })
    }
}

impl Deserialize for GroupSpec {
    fn from_value(v: &Json) -> std::result::Result<Self, DeError> {
        Ok(GroupSpec {
            granule: req(v, "granule")?,
            receptor_type: req(v, "receptor_type")?,
            members: req(v, "members")?,
        })
    }
}

impl Deserialize for StageSpec {
    fn from_value(v: &Json) -> std::result::Result<Self, DeError> {
        let o = v
            .as_object()
            .ok_or_else(|| DeError::msg(format!("stage must be an object, got {}", v.kind())))?;
        if o.len() != 1 {
            return Err(DeError::msg("stage object must have exactly one key"));
        }
        let (kind, body) = &o[0];
        Ok(match kind.as_str() {
            "point" => StageSpec::Point(PointSpec::from_value(body)?),
            "smooth" => StageSpec::Smooth(SmoothSpec::from_value(body)?),
            "merge" => StageSpec::Merge(MergeSpec::from_value(body)?),
            "arbitrate" => StageSpec::Arbitrate(ArbitrateSpec::from_value(body)?),
            "virtualize" => StageSpec::Virtualize(VirtualizeSpec::from_value(body)?),
            "declarative" => StageSpec::Declarative(DeclarativeSpec::from_value(body)?),
            other => return Err(DeError::msg(format!("unknown stage kind '{other}'"))),
        })
    }
}

impl Deserialize for PointSpec {
    fn from_value(v: &Json) -> std::result::Result<Self, DeError> {
        Ok(PointSpec {
            range_filters: opt(v, "range_filters")?.unwrap_or_default(),
            expected_values: opt(v, "expected_values")?,
        })
    }
}

impl Deserialize for RangeFilterSpec {
    fn from_value(v: &Json) -> std::result::Result<Self, DeError> {
        Ok(RangeFilterSpec {
            field: req(v, "field")?,
            min: opt(v, "min")?,
            max: opt(v, "max")?,
        })
    }
}

impl Deserialize for ExpectedValuesSpec {
    fn from_value(v: &Json) -> std::result::Result<Self, DeError> {
        Ok(ExpectedValuesSpec {
            field: req(v, "field")?,
            allowed: req(v, "allowed")?,
        })
    }
}

impl Deserialize for SmoothSpec {
    fn from_value(v: &Json) -> std::result::Result<Self, DeError> {
        Ok(SmoothSpec {
            mode: req(v, "mode")?,
            keys: opt(v, "keys")?.unwrap_or_default(),
            value_field: opt(v, "value_field")?,
            on_value: opt(v, "on_value")?,
            min_events: opt(v, "min_events")?,
            alpha: opt(v, "alpha")?,
        })
    }
}

impl Deserialize for MergeSpec {
    fn from_value(v: &Json) -> std::result::Result<Self, DeError> {
        Ok(MergeSpec {
            mode: req(v, "mode")?,
            value_field: opt(v, "value_field")?,
            k: opt(v, "k")?,
            dedup_key: opt(v, "dedup_key")?,
            on_value: opt(v, "on_value")?,
            device_field: opt(v, "device_field")?,
            min_devices: opt(v, "min_devices")?,
        })
    }
}

impl Deserialize for ArbitrateSpec {
    fn from_value(v: &Json) -> std::result::Result<Self, DeError> {
        Ok(ArbitrateSpec {
            tie_break: opt(v, "tie_break")?,
            key_field: opt(v, "key_field")?,
            count_field: opt(v, "count_field")?,
        })
    }
}

impl Deserialize for TieBreakSpec {
    fn from_value(v: &Json) -> std::result::Result<Self, DeError> {
        // Unit variant as a bare string, data variant externally tagged.
        if let Some(s) = v.as_str() {
            return match s {
                "keep_all" => Ok(TieBreakSpec::KeepAll),
                other => Err(DeError::msg(format!("unknown tie_break '{other}'"))),
            };
        }
        let o = v
            .as_object()
            .filter(|o| o.len() == 1)
            .ok_or_else(|| DeError::msg("tie_break must be a string or one-key object"))?;
        let (kind, body) = &o[0];
        match kind.as_str() {
            "keep_all" => Ok(TieBreakSpec::KeepAll),
            "priority" => Ok(TieBreakSpec::Priority(Vec::<String>::from_value(body)?)),
            other => Err(DeError::msg(format!("unknown tie_break '{other}'"))),
        }
    }
}

impl Deserialize for VirtualizeSpec {
    fn from_value(v: &Json) -> std::result::Result<Self, DeError> {
        Ok(VirtualizeSpec {
            event: req(v, "event")?,
            threshold: req(v, "threshold")?,
            rules: req(v, "rules")?,
        })
    }
}

impl Deserialize for VoteRuleSpec {
    fn from_value(v: &Json) -> std::result::Result<Self, DeError> {
        let kind: String = req(v, "kind")?;
        Ok(match kind.as_str() {
            "numeric_above" => VoteRuleSpec::NumericAbove {
                field: req(v, "field")?,
                threshold: req(v, "threshold")?,
            },
            "value_equals" => VoteRuleSpec::ValueEquals {
                field: req(v, "field")?,
                value: req(v, "value")?,
            },
            "min_tuples_with" => VoteRuleSpec::MinTuplesWith {
                field: req(v, "field")?,
                n: req(v, "n")?,
            },
            other => return Err(DeError::msg(format!("unknown vote rule kind '{other}'"))),
        })
    }
}

impl Deserialize for DeclarativeSpec {
    fn from_value(v: &Json) -> std::result::Result<Self, DeError> {
        Ok(DeclarativeSpec {
            scope: req(v, "scope")?,
            query: req(v, "query")?,
            label: opt(v, "label")?,
        })
    }
}

impl DeploymentSpec {
    /// Parse a deployment document from JSON.
    pub fn from_json(json: &str) -> Result<DeploymentSpec> {
        serde_json::from_str(json)
            .map_err(|e| EspError::Config(format!("invalid deployment document: {e}")))
    }

    /// The parsed temporal granule (with any window expansion).
    pub fn granule(&self) -> Result<TemporalGranule> {
        let g = TimeDelta::parse(&self.temporal_granule)?;
        match &self.smooth_window {
            Some(w) => TemporalGranule::with_window(g, TimeDelta::parse(w)?),
            None => Ok(TemporalGranule::new(g)),
        }
    }

    /// Build the proximity-group registry.
    pub fn build_groups(&self) -> Result<ProximityGroups> {
        let mut groups = ProximityGroups::new();
        for g in &self.groups {
            let rtype = parse_receptor_type(&g.receptor_type)?;
            groups.add_group(
                rtype,
                g.granule.as_str(),
                g.members.iter().map(|m| ReceptorId(*m)),
            );
        }
        Ok(groups)
    }

    /// Statically validate this deployment document, returning every
    /// finding without building anything.
    ///
    /// Checks performed (see `esp-lint` for the full catalog):
    ///
    /// * `E0204` — a time span (`temporal_granule`, `smooth_window`) that
    ///   does not parse.
    /// * `E0201` — a smoothing window narrower than the temporal granule.
    /// * `E0203` — a smoothing window that is not a whole multiple of the
    ///   granule, so window eviction never aligns with granule boundaries.
    /// * `E0302` — a proximity group with no members.
    /// * `E0303` — two groups sharing one spatial-granule name.
    /// * `E0304` — an unknown receptor type.
    ///
    /// [`EspProcessor::deploy`](crate::EspProcessor::deploy) runs this (plus
    /// receptor-coverage checks) and refuses to build when any
    /// error-severity diagnostic fires.
    pub fn validate(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let granule = match TimeDelta::parse(&self.temporal_granule) {
            Ok(g) => Some(g),
            Err(e) => {
                diags.push(
                    Diagnostic::error(
                        "E0204",
                        format!(
                            "temporal granule '{}' is not a valid time span",
                            self.temporal_granule
                        ),
                    )
                    .with_note(e.to_string()),
                );
                None
            }
        };
        let window = self
            .smooth_window
            .as_ref()
            .and_then(|w| match TimeDelta::parse(w) {
                Ok(w) => Some(w),
                Err(e) => {
                    diags.push(
                        Diagnostic::error(
                            "E0204",
                            format!("smooth window '{w}' is not a valid time span"),
                        )
                        .with_note(e.to_string()),
                    );
                    None
                }
            });
        if let (Some(g), Some(w)) = (granule, window) {
            if w < g {
                diags.push(
                    Diagnostic::error(
                        "E0201",
                        format!(
                            "smoothing window ({w}) is narrower than the temporal granule ({g})"
                        ),
                    )
                    .with_note("the window must cover at least one full granule (paper §4.3.2)"),
                );
            } else if g.as_millis() > 0 && w.as_millis() % g.as_millis() != 0 {
                diags.push(
                    Diagnostic::error(
                        "E0203",
                        format!(
                            "smoothing window ({w}) is not a whole multiple of the temporal \
                             granule ({g})"
                        ),
                    )
                    .with_note(
                        "output is emitted at granule boundaries; a fractional window \
                         mis-aligns eviction with emission",
                    ),
                );
            }
        }
        let mut seen: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for (i, g) in self.groups.iter().enumerate() {
            if g.members.is_empty() {
                diags.push(
                    Diagnostic::error(
                        "E0302",
                        format!("proximity group '{}' has no members", g.granule),
                    )
                    .with_note("Merge over an empty group can never produce output"),
                );
            }
            if let Some(prev) = seen.insert(g.granule.as_str(), i) {
                diags.push(
                    Diagnostic::error(
                        "E0303",
                        format!(
                            "spatial granule '{}' is declared by two groups (#{prev} and #{i})",
                            g.granule
                        ),
                    )
                    .with_note(
                        "granule names identify groups downstream; duplicates make \
                         Arbitrate tie-breaks ambiguous",
                    ),
                );
            }
            if parse_receptor_type(&g.receptor_type).is_err() {
                diags.push(Diagnostic::error(
                    "E0304",
                    format!(
                        "group '{}' names unknown receptor type '{}'",
                        g.granule, g.receptor_type
                    ),
                ));
            }
        }
        esp_types::diag::sort_diagnostics(&mut diags);
        diags
    }

    /// Build the pipeline. Declarative stages are compiled against
    /// `engine`'s catalog (static relations, UDFs, UDAs). When the
    /// deployment pins down the entry schema (see
    /// [`entry_schema`](Self::entry_schema)), the first stage's query is
    /// additionally slot-resolved against it at deploy time, so unknown
    /// or ambiguous field references fail here — with source spans — and
    /// the stage executes on compiled slots from its very first epoch.
    pub fn build_pipeline(&self, engine: &Engine) -> Result<Pipeline> {
        let granule = self.granule()?;
        let entry = self.entry_schema();
        let mut builder = Pipeline::builder();
        for (i, stage) in self.stages.iter().enumerate() {
            let declared = if i == 0 { entry.clone() } else { None };
            builder = add_stage(builder, stage, granule, engine, declared)?;
        }
        Ok(builder.build())
    }

    /// The schema tuples carry into the first pipeline stage, when the
    /// deployment determines it: every group uses the same receptor type,
    /// that type has a single well-known raw layout, and the processor
    /// appends `spatial_granule`. Mote deployments return `None` (motes
    /// report several layouts: temperature, sound, temperature+voltage),
    /// as do mixed-type deployments — those resolve lazily at runtime.
    pub fn entry_schema(&self) -> Option<Arc<Schema>> {
        let mut types = self
            .groups
            .iter()
            .map(|g| parse_receptor_type(&g.receptor_type).ok());
        let first = types.next()??;
        for t in types {
            if t? != first {
                return None;
            }
        }
        let raw = match first {
            ReceptorType::Rfid => well_known::rfid_schema(),
            ReceptorType::X10Motion => well_known::motion_schema(),
            ReceptorType::Mote | ReceptorType::Other(_) => return None,
        };
        let extended = raw
            .with_field(Field::new(well_known::SPATIAL_GRANULE, DataType::Str))
            .ok()?;
        Some(registry::intern(&extended))
    }
}

pub(crate) fn parse_receptor_type(s: &str) -> Result<ReceptorType> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "rfid" => ReceptorType::Rfid,
        "mote" => ReceptorType::Mote,
        "x10-motion" | "x10" => ReceptorType::X10Motion,
        other => return Err(EspError::Config(format!("unknown receptor type '{other}'"))),
    })
}

fn add_stage(
    builder: PipelineBuilder,
    spec: &StageSpec,
    granule: TemporalGranule,
    engine: &Engine,
    declared: Option<Arc<Schema>>,
) -> Result<PipelineBuilder> {
    Ok(match spec {
        StageSpec::Point(p) => {
            let p = p.clone();
            builder.per_receptor("point", move |_ctx: &StageCtx| {
                let mut stage = PointStage::new("point");
                for rf in &p.range_filters {
                    stage = stage.range_filter(&rf.field, rf.min, rf.max);
                }
                if let Some(ev) = &p.expected_values {
                    stage = stage.expected_values(&ev.field, ev.allowed.iter());
                }
                Ok(Box::new(stage))
            })
        }
        StageSpec::Smooth(s) => {
            let s = s.clone();
            // Validate the mode eagerly so configuration errors surface at
            // deploy time, not first-epoch time.
            build_smooth(&s, granule)?;
            builder.per_receptor("smooth", move |_ctx: &StageCtx| build_smooth(&s, granule))
        }
        StageSpec::Merge(m) => {
            let m = m.clone();
            {
                let probe = StageCtx {
                    scope: crate::Scope::PerGroup,
                    receptor: None,
                    receptor_type: None,
                    group: None,
                    granule: Some(SpatialGranule::new("probe")),
                };
                build_merge(&m, granule, &probe)?;
            }
            builder.per_group("merge", move |ctx: &StageCtx| build_merge(&m, granule, ctx))
        }
        StageSpec::Arbitrate(a) => {
            let a = a.clone();
            builder.global("arbitrate", move |_ctx: &StageCtx| {
                let tie = match &a.tie_break {
                    None | Some(TieBreakSpec::KeepAll) => TieBreak::KeepAll,
                    Some(TieBreakSpec::Priority(names)) => {
                        TieBreak::Priority(names.iter().map(|n| Arc::from(n.as_str())).collect())
                    }
                };
                let mut stage = ArbitrateStage::new("arbitrate", tie);
                if a.key_field.is_some() || a.count_field.is_some() {
                    stage = stage.with_fields(
                        a.key_field.clone().unwrap_or_else(|| "tag_id".into()),
                        a.count_field.clone().unwrap_or_else(|| "count".into()),
                    );
                }
                Ok(Box::new(stage))
            })
        }
        StageSpec::Virtualize(v) => {
            let v = v.clone();
            build_virtualize(&v)?; // eager validation
            builder.global("virtualize", move |_ctx: &StageCtx| build_virtualize(&v))
        }
        StageSpec::Declarative(d) => {
            let label = d.label.clone().unwrap_or_else(|| "declarative".into());
            // Compile eagerly once to validate the query text and learn
            // its (single) input stream.
            let probe = engine.compile(&d.query)?;
            let entry_stream = probe.input_streams().first().cloned();
            DeclarativeStage::new(label.clone(), probe)?;
            // When the deployment determines the stage's input schema,
            // slot-resolve the query against it now: unknown/ambiguous
            // field references become deploy errors with spans, and the
            // stage runs on compiled slots from its first epoch.
            let declared = match (declared, entry_stream) {
                (Some(schema), Some(stream)) => {
                    engine.compile_with_schemas(&d.query, &[(&stream, Arc::clone(&schema))])?;
                    Some((stream, schema))
                }
                _ => None,
            };
            let engine = engine.clone();
            let query = d.query.clone();
            let factory = move |_ctx: &StageCtx| -> Result<Box<dyn Stage>> {
                let compiled = match &declared {
                    Some((stream, schema)) => engine
                        .compile_with_schemas(&query, &[(stream.as_str(), Arc::clone(schema))])?,
                    None => engine.compile(&query)?,
                };
                Ok(Box::new(DeclarativeStage::new(label.clone(), compiled)?))
            };
            match d.scope.as_str() {
                "per_receptor" => builder.per_receptor("declarative", factory),
                "per_group" => builder.per_group("declarative", factory),
                "global" => builder.global("declarative", factory),
                other => return Err(EspError::Config(format!("unknown stage scope '{other}'"))),
            }
        }
    })
}

fn build_smooth(s: &SmoothSpec, granule: TemporalGranule) -> Result<Box<dyn Stage>> {
    let value_field = || {
        s.value_field
            .clone()
            .ok_or_else(|| EspError::Config(format!("smooth mode '{}' needs value_field", s.mode)))
    };
    Ok(match s.mode.as_str() {
        "count_by_key" => Box::new(SmoothStage::count_by_key(
            "smooth",
            granule,
            s.keys.iter().cloned(),
        )),
        "windowed_mean" => Box::new(SmoothStage::windowed_mean(
            "smooth",
            granule,
            s.keys.iter().cloned(),
            value_field()?,
        )),
        "event_presence" => Box::new(SmoothStage::event_presence(
            "smooth",
            granule,
            s.keys.iter().cloned(),
            value_field()?,
            Value::str(s.on_value.as_deref().unwrap_or("ON")),
            s.min_events.unwrap_or(1),
        )),
        "ewma" => Box::new(SmoothStage::ewma(
            "smooth",
            granule,
            s.keys.iter().cloned(),
            value_field()?,
            s.alpha.unwrap_or(0.5),
        )?),
        other => return Err(EspError::Config(format!("unknown smooth mode '{other}'"))),
    })
}

fn build_merge(m: &MergeSpec, granule: TemporalGranule, ctx: &StageCtx) -> Result<Box<dyn Stage>> {
    let spatial = ctx
        .granule
        .clone()
        .unwrap_or_else(|| SpatialGranule::new("unknown"));
    let value_field = || {
        m.value_field
            .clone()
            .ok_or_else(|| EspError::Config(format!("merge mode '{}' needs value_field", m.mode)))
    };
    Ok(match m.mode.as_str() {
        "outlier_filtered_mean" => Box::new(MergeStage::outlier_filtered_mean(
            "merge",
            spatial,
            granule,
            value_field()?,
            m.k.unwrap_or(1.0),
        )),
        "union_all" => Box::new(MergeStage::union_all("merge", spatial, m.dedup_key.clone())),
        "vote_threshold" => Box::new(MergeStage::vote_threshold(
            "merge",
            spatial,
            granule,
            value_field()?,
            Value::str(m.on_value.as_deref().unwrap_or("ON")),
            m.device_field
                .clone()
                .unwrap_or_else(|| "receptor_id".into()),
            m.min_devices.unwrap_or(2),
        )),
        "windowed_median" => Box::new(MergeStage::windowed_median(
            "merge",
            spatial,
            granule,
            value_field()?,
        )),
        other => return Err(EspError::Config(format!("unknown merge mode '{other}'"))),
    })
}

fn build_virtualize(v: &VirtualizeSpec) -> Result<Box<dyn Stage>> {
    let rules: Vec<VoteRule> = v
        .rules
        .iter()
        .map(|r| match r {
            VoteRuleSpec::NumericAbove { field, threshold } => {
                VoteRule::numeric_above(field.clone(), field.clone(), *threshold)
            }
            VoteRuleSpec::ValueEquals { field, value } => {
                VoteRule::value_equals(field.clone(), field.clone(), Value::str(value))
            }
            VoteRuleSpec::MinTuplesWith { field, n } => {
                VoteRule::min_tuples_with(field.clone(), field.clone(), *n)
            }
        })
        .collect();
    Ok(Box::new(VirtualizeStage::voting(
        "virtualize",
        Value::str(&v.event),
        rules,
        v.threshold,
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EspProcessor, ReceptorBinding};
    use esp_stream::ScriptedSource;
    use esp_types::{well_known, Ts, Tuple, TupleBuilder};

    const SHELF_DEPLOYMENT: &str = r#"{
        "temporal_granule": "5 sec",
        "groups": [
            { "granule": "shelf0", "receptor_type": "rfid", "members": [0] },
            { "granule": "shelf1", "receptor_type": "rfid", "members": [1] }
        ],
        "stages": [
            { "smooth": { "mode": "count_by_key",
                          "keys": ["spatial_granule", "tag_id"] } },
            { "arbitrate": { "tie_break": { "priority": ["shelf1", "shelf0"] } } }
        ]
    }"#;

    fn sighting(ts: Ts, reader: i64, tag: &str) -> Tuple {
        TupleBuilder::new(&well_known::rfid_schema(), ts)
            .set("receptor_id", reader)
            .unwrap()
            .set("tag_id", tag)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn shelf_deployment_parses_and_runs() {
        let spec = DeploymentSpec::from_json(SHELF_DEPLOYMENT).unwrap();
        assert_eq!(spec.granule().unwrap().granule(), TimeDelta::from_secs(5));
        let groups = spec.build_groups().unwrap();
        assert_eq!(groups.len(), 2);
        let pipeline = spec.build_pipeline(&Engine::new()).unwrap();
        assert_eq!(pipeline.len(), 2);

        // Run: reader 0 sees the tag 3×, reader 1 once → arbitrate to shelf0.
        let r0 = ScriptedSource::new(
            "r0",
            vec![(
                Ts::ZERO,
                vec![
                    sighting(Ts::ZERO, 0, "x"),
                    sighting(Ts::ZERO, 0, "x"),
                    sighting(Ts::ZERO, 0, "x"),
                ],
            )],
        );
        let r1 = ScriptedSource::new("r1", vec![(Ts::ZERO, vec![sighting(Ts::ZERO, 1, "x")])]);
        let proc = EspProcessor::build(
            groups,
            &pipeline,
            vec![
                ReceptorBinding::new(ReceptorId(0), ReceptorType::Rfid, Box::new(r0)),
                ReceptorBinding::new(ReceptorId(1), ReceptorType::Rfid, Box::new(r1)),
            ],
        )
        .unwrap();
        let out = proc.run(Ts::ZERO, TimeDelta::from_millis(200), 1).unwrap();
        let batch = &out.trace[0].1;
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].get("spatial_granule"), Some(&Value::str("shelf0")));
    }

    #[test]
    fn declarative_stage_in_json() {
        let doc = r#"{
            "temporal_granule": "5 sec",
            "groups": [
                { "granule": "shelf0", "receptor_type": "rfid", "members": [0] }
            ],
            "stages": [
                { "declarative": {
                    "scope": "per_receptor",
                    "label": "smooth(Q2)",
                    "query": "SELECT tag_id, count(*) FROM smooth_input [Range By '5 sec'] GROUP BY tag_id"
                } }
            ]
        }"#;
        let spec = DeploymentSpec::from_json(doc).unwrap();
        let pipeline = spec.build_pipeline(&Engine::new()).unwrap();
        let proc = EspProcessor::build(
            spec.build_groups().unwrap(),
            &pipeline,
            vec![ReceptorBinding::new(
                ReceptorId(0),
                ReceptorType::Rfid,
                Box::new(ScriptedSource::new(
                    "r",
                    vec![(Ts::ZERO, vec![sighting(Ts::ZERO, 0, "a")])],
                )),
            )],
        )
        .unwrap();
        let out = proc.run(Ts::ZERO, TimeDelta::from_secs(1), 3).unwrap();
        // The CQL smooth interpolates across all three epochs.
        assert!(out.trace.iter().all(|(_, b)| b.len() == 1));
    }

    #[test]
    fn entry_field_typos_fail_at_deploy_time() {
        // rfid deployments pin the first stage's input schema, so a typo'd
        // field reference is a deploy error with a span — not a per-row
        // runtime error on the first epoch.
        let doc = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "g", "receptor_type": "rfid", "members": [0] }],
            "stages": [
                { "declarative": {
                    "scope": "per_receptor",
                    "query": "SELECT tag_idd FROM s [Range By '5 sec']"
                } }
            ]
        }"#;
        let spec = DeploymentSpec::from_json(doc).unwrap();
        let err = spec.build_pipeline(&Engine::new()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("tag_idd"), "{msg}");

        // The injected spatial_granule column is part of the declared
        // schema, so queries over it still deploy.
        let doc = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "g", "receptor_type": "rfid", "members": [0] }],
            "stages": [
                { "declarative": {
                    "scope": "per_receptor",
                    "query": "SELECT spatial_granule, tag_id FROM s [Range By '5 sec']"
                } }
            ]
        }"#;
        let spec = DeploymentSpec::from_json(doc).unwrap();
        assert!(spec.build_pipeline(&Engine::new()).is_ok());
    }

    #[test]
    fn mote_and_mixed_deployments_resolve_lazily() {
        // Motes report several tuple layouts, so the entry schema is
        // undetermined and field references stay lazily resolved.
        let doc = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "g", "receptor_type": "mote", "members": [0] }],
            "stages": [
                { "declarative": {
                    "scope": "per_receptor",
                    "query": "SELECT maybe_voltage FROM s [Range By '5 sec']"
                } }
            ]
        }"#;
        let spec = DeploymentSpec::from_json(doc).unwrap();
        assert!(spec.entry_schema().is_none());
        assert!(spec.build_pipeline(&Engine::new()).is_ok());

        // Mixed receptor types likewise leave the entry schema open.
        let doc = r#"{
            "temporal_granule": "5 sec",
            "groups": [
                { "granule": "a", "receptor_type": "rfid", "members": [0] },
                { "granule": "b", "receptor_type": "x10-motion", "members": [1] }
            ],
            "stages": []
        }"#;
        assert!(DeploymentSpec::from_json(doc)
            .unwrap()
            .entry_schema()
            .is_none());
    }

    #[test]
    fn entry_schema_is_interned_and_extended() {
        let spec = DeploymentSpec::from_json(SHELF_DEPLOYMENT).unwrap();
        let schema = spec.entry_schema().expect("rfid entry schema");
        assert!(schema.index_of(well_known::SPATIAL_GRANULE).is_some());
        assert!(schema.index_of("tag_id").is_some());
        // Interned: asking again yields the very same allocation.
        let again = spec.entry_schema().unwrap();
        assert!(Arc::ptr_eq(&schema, &again));
    }

    #[test]
    fn bad_documents_are_rejected_at_deploy_time() {
        // Malformed JSON.
        assert!(DeploymentSpec::from_json("{").is_err());
        // Unknown smooth mode surfaces when the pipeline is built.
        let doc = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "g", "receptor_type": "mote", "members": [0] }],
            "stages": [ { "smooth": { "mode": "psychic" } } ]
        }"#;
        let spec = DeploymentSpec::from_json(doc).unwrap();
        let err = spec.build_pipeline(&Engine::new()).unwrap_err();
        assert!(err.to_string().contains("psychic"));
        // Bad CQL in a declarative stage surfaces at build time too.
        let doc = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "g", "receptor_type": "mote", "members": [0] }],
            "stages": [ { "declarative": { "scope": "global", "query": "SELEC oops" } } ]
        }"#;
        let spec = DeploymentSpec::from_json(doc).unwrap();
        assert!(spec.build_pipeline(&Engine::new()).is_err());
        // Unknown receptor type.
        let doc = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "g", "receptor_type": "lidar", "members": [0] }],
            "stages": []
        }"#;
        assert!(DeploymentSpec::from_json(doc)
            .unwrap()
            .build_groups()
            .is_err());
        // Bad granule text.
        let doc = r#"{
            "temporal_granule": "sideways",
            "groups": [{ "granule": "g", "receptor_type": "mote", "members": [0] }],
            "stages": []
        }"#;
        assert!(DeploymentSpec::from_json(doc).unwrap().granule().is_err());
    }

    #[test]
    fn validate_accepts_shipped_deployment() {
        let spec = DeploymentSpec::from_json(SHELF_DEPLOYMENT).unwrap();
        assert!(spec.validate().is_empty());
    }

    #[test]
    fn validate_catches_temporal_and_spatial_defects() {
        let doc = r#"{
            "temporal_granule": "5 sec",
            "smooth_window": "12 sec",
            "groups": [
                { "granule": "a", "receptor_type": "rfid", "members": [] },
                { "granule": "a", "receptor_type": "lidar", "members": [1] }
            ],
            "stages": []
        }"#;
        let spec = DeploymentSpec::from_json(doc).unwrap();
        let diags = spec.validate();
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"E0203"), "{codes:?}"); // 12 s not multiple of 5 s
        assert!(codes.contains(&"E0302"), "{codes:?}"); // empty group
        assert!(codes.contains(&"E0303"), "{codes:?}"); // duplicate granule 'a'
        assert!(codes.contains(&"E0304"), "{codes:?}"); // unknown receptor type
        assert!(diags.iter().all(|d| d.is_error()));
    }

    #[test]
    fn validate_catches_narrow_window_and_bad_spans() {
        let doc = r#"{
            "temporal_granule": "5 sec",
            "smooth_window": "1 sec",
            "groups": [{ "granule": "g", "receptor_type": "mote", "members": [0] }],
            "stages": []
        }"#;
        let diags = DeploymentSpec::from_json(doc).unwrap().validate();
        assert!(diags.iter().any(|d| d.code == "E0201"), "{diags:?}");

        let doc = r#"{
            "temporal_granule": "sideways",
            "groups": [{ "granule": "g", "receptor_type": "mote", "members": [0] }],
            "stages": []
        }"#;
        let diags = DeploymentSpec::from_json(doc).unwrap().validate();
        assert!(diags.iter().any(|d| d.code == "E0204"), "{diags:?}");
    }

    #[test]
    fn deploy_rejects_invalid_spec_with_diagnostics() {
        let doc = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "g", "receptor_type": "rfid", "members": [] }],
            "stages": []
        }"#;
        let spec = DeploymentSpec::from_json(doc).unwrap();
        let err = EspProcessor::deploy(&spec, &Engine::new(), vec![]).unwrap_err();
        match err {
            EspError::Invalid(diags) => {
                assert!(diags.iter().any(|d| d.code == "E0302"), "{diags:?}");
            }
            other => panic!("expected Invalid, got {other}"),
        }
    }

    #[test]
    fn deploy_rejects_ungrouped_receptor() {
        let spec = DeploymentSpec::from_json(SHELF_DEPLOYMENT).unwrap();
        let err = EspProcessor::deploy(
            &spec,
            &Engine::new(),
            vec![ReceptorBinding::new(
                ReceptorId(9),
                ReceptorType::Rfid,
                Box::new(ScriptedSource::new("r9", vec![])),
            )],
        )
        .unwrap_err();
        match err {
            EspError::Invalid(diags) => {
                assert!(diags.iter().any(|d| d.code == "E0301"), "{diags:?}");
            }
            other => panic!("expected Invalid, got {other}"),
        }
    }

    #[test]
    fn deploy_builds_and_runs_valid_spec() {
        let spec = DeploymentSpec::from_json(SHELF_DEPLOYMENT).unwrap();
        let r0 = ScriptedSource::new(
            "r0",
            vec![(
                Ts::ZERO,
                vec![sighting(Ts::ZERO, 0, "x"), sighting(Ts::ZERO, 0, "x")],
            )],
        );
        let proc = EspProcessor::deploy(
            &spec,
            &Engine::new(),
            vec![ReceptorBinding::new(
                ReceptorId(0),
                ReceptorType::Rfid,
                Box::new(r0),
            )],
        )
        .unwrap();
        let out = proc.run(Ts::ZERO, TimeDelta::from_millis(200), 1).unwrap();
        assert_eq!(out.trace[0].1.len(), 1);
    }

    #[test]
    fn virtualize_and_merge_modes_from_json() {
        let doc = r#"{
            "temporal_granule": "5 sec",
            "groups": [
                { "granule": "office", "receptor_type": "mote", "members": [10, 11, 12] }
            ],
            "stages": [
                { "merge": { "mode": "windowed_median", "value_field": "noise" } },
                { "virtualize": {
                    "event": "Person-in-room",
                    "threshold": 1,
                    "rules": [ { "kind": "numeric_above", "field": "noise", "threshold": 525.0 } ]
                } }
            ]
        }"#;
        let spec = DeploymentSpec::from_json(doc).unwrap();
        let pipeline = spec.build_pipeline(&Engine::new()).unwrap();
        assert_eq!(pipeline.len(), 2);

        let mote = |id: i64, v: f64| {
            TupleBuilder::new(&well_known::sound_schema(), Ts::ZERO)
                .set("receptor_id", id)
                .unwrap()
                .set("noise", v)
                .unwrap()
                .build()
                .unwrap()
        };
        let proc = EspProcessor::build(
            spec.build_groups().unwrap(),
            &pipeline,
            vec![ReceptorBinding::new(
                ReceptorId(10),
                ReceptorType::Mote,
                Box::new(ScriptedSource::new(
                    "m",
                    vec![(
                        Ts::ZERO,
                        vec![mote(10, 700.0), mote(10, 710.0), mote(10, 400.0)],
                    )],
                )),
            )],
        )
        .unwrap();
        let out = proc.run(Ts::ZERO, TimeDelta::from_secs(1), 1).unwrap();
        // median(400,700,710) = 700 > 525 → event fires.
        assert_eq!(out.trace[0].1.len(), 1);
        assert_eq!(
            out.trace[0].1[0].get("event"),
            Some(&Value::str("Person-in-room"))
        );
    }
}
