//! Cascade-level semantic analysis (`E06xx`) over deployment documents.
//!
//! [`DeploymentSpec::validate`] checks *shapes* — granule math, group
//! structure, receptor types. [`DeploymentSpec::analyze`] goes one level
//! deeper and abstractly interprets what the cascade will *do* to the
//! readings the declared receptors produce:
//!
//! * `E0601` — a Point stage whose filters can never pass: an empty or
//!   mutually-exclusive range, or an expected-values list that allows
//!   nothing. The stage drops every reading, so everything downstream
//!   is dead.
//! * `E0604` — producer/consumer schema drift: a per-receptor stage
//!   reads a field that no declared receptor type produces (or produces
//!   with an incompatible type). The runtime treats a missing field as
//!   "drop the tuple", so drift is silent data loss, not an error.
//! * `E0605` — a granule-unit mismatch surviving the Merge/Arbitrate
//!   boundary: a per-group or global declarative stage windows over a
//!   span that is not a whole multiple of the temporal granule. Tuples
//!   past that boundary arrive granule-aligned; a fractional window
//!   drifts against the alignment and double- or under-counts.
//!
//! The interval propagation reuses [`esp_query::range::Interval`] — the
//! same abstract domain the CQL linter's predicate analysis runs on —
//! so both halves of the analyzer agree on arithmetic. Everything the
//! analysis cannot prove stays silent: the zero-false-positive bar from
//! `esp-lint` applies here too.

use std::collections::HashMap;
use std::sync::Arc;

use esp_query::ast::{Expr, FromSource, SelectStmt};
use esp_query::range::Interval;
use esp_types::{well_known, DataType, Diagnostic, ReceptorType, Schema, TimeDelta};

use crate::deploy::{parse_receptor_type, DeploymentSpec, PointSpec, StageSpec};

/// The schemas a receptor type can emit. `None` means open-ended
/// (`Other`): drift checks stay silent for deployments using it.
fn receptor_schemas(rt: ReceptorType) -> Option<Vec<Arc<Schema>>> {
    match rt {
        ReceptorType::Rfid => Some(vec![well_known::rfid_schema()]),
        // A mote reports scalar samples: temperature, temperature with
        // battery voltage, or sound — the union of those schemas.
        ReceptorType::Mote => Some(vec![
            well_known::temp_schema(),
            well_known::temp_voltage_schema(),
            well_known::sound_schema(),
        ]),
        ReceptorType::X10Motion => Some(vec![well_known::motion_schema()]),
        ReceptorType::Other(_) => None,
    }
}

/// What the declared receptor fleet can say about one field name.
#[derive(Clone, Copy, PartialEq)]
enum FieldFact {
    /// No declared receptor type produces the field.
    Absent,
    /// Produced somewhere, but never with a numeric type.
    NonNumeric,
    /// Produced somewhere with a numeric type (`Int`/`Float`/`Ts`).
    Numeric,
}

/// Everything the analysis knows about the raw-reading schemas feeding
/// the per-receptor stages. `None` when any group's receptor type is
/// open-ended or unknown — drift checks then stay silent (`E0304`
/// already flags unknown types).
struct FleetSchemas {
    schemas: Vec<Arc<Schema>>,
    types: Vec<String>,
}

impl FleetSchemas {
    fn gather(spec: &DeploymentSpec) -> Option<FleetSchemas> {
        if spec.groups.is_empty() {
            return None;
        }
        let mut schemas = Vec::new();
        let mut types = Vec::new();
        for g in &spec.groups {
            let rt = parse_receptor_type(&g.receptor_type).ok()?;
            schemas.extend(receptor_schemas(rt)?);
            if !types.contains(&g.receptor_type) {
                types.push(g.receptor_type.clone());
            }
        }
        Some(FleetSchemas { schemas, types })
    }

    fn fact(&self, field: &str) -> FieldFact {
        let mut fact = FieldFact::Absent;
        for s in &self.schemas {
            if let Some(f) = s.field(field) {
                match f.data_type {
                    DataType::Int | DataType::Float | DataType::Ts | DataType::Any => {
                        return FieldFact::Numeric;
                    }
                    DataType::Str | DataType::Bool => fact = FieldFact::NonNumeric,
                }
            }
        }
        fact
    }

    fn types(&self) -> String {
        self.types.join(", ")
    }
}

impl DeploymentSpec {
    /// Abstractly interpret the cascade this document describes,
    /// returning every `E06xx` finding without building anything.
    ///
    /// Complements [`DeploymentSpec::validate`]; both run (and both
    /// gate) in [`EspProcessor::deploy`](crate::EspProcessor::deploy).
    pub fn analyze(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let fleet = FleetSchemas::gather(self);
        let granule = TimeDelta::parse(&self.temporal_granule).ok();
        for stage in &self.stages {
            match stage {
                StageSpec::Point(p) => analyze_point(p, fleet.as_ref(), &mut diags),
                StageSpec::Smooth(s) => {
                    if let Some(field) = &s.value_field {
                        check_numeric_field(
                            fleet.as_ref(),
                            field,
                            "the Smooth stage's value_field",
                            &mut diags,
                        );
                    }
                }
                StageSpec::Declarative(d) => {
                    // Per-receptor stages see raw readings at arbitrary
                    // timestamps; only past the Merge/Arbitrate boundary
                    // do tuples arrive granule-aligned.
                    if matches!(d.scope.as_str(), "per_group" | "global") {
                        if let (Some(g), Ok(stmt)) = (granule, esp_query::parse(&d.query)) {
                            let label = d.label.as_deref().unwrap_or("declarative");
                            check_windows(&stmt, g, label, &mut diags);
                        }
                    }
                }
                StageSpec::Merge(_) | StageSpec::Arbitrate(_) | StageSpec::Virtualize(_) => {
                    // These consume smoothed/merged tuples whose schema
                    // the builder synthesizes; raw-schema drift checks
                    // do not apply.
                }
            }
        }
        esp_types::diag::sort_diagnostics(&mut diags);
        diags
    }
}

fn analyze_point(p: &PointSpec, fleet: Option<&FleetSchemas>, diags: &mut Vec<Diagnostic>) {
    // Interval propagation: successive range filters on one field
    // intersect. An empty single filter or an empty intersection means
    // the stage can never pass a reading.
    let mut kept: HashMap<&str, Interval> = HashMap::new();
    for rf in &p.range_filters {
        let lo = rf.min.unwrap_or(f64::NEG_INFINITY);
        let hi = rf.max.unwrap_or(f64::INFINITY);
        let Some(iv) = Interval::new(lo, hi) else {
            diags.push(
                Diagnostic::error(
                    "E0601",
                    format!(
                        "Point range filter on '{}' keeps nothing ({lo} > {hi})",
                        rf.field
                    ),
                )
                .with_note(
                    "no reading can satisfy an empty range — the stage is dead and every \
                     stage downstream of it sees no input",
                ),
            );
            continue;
        };
        match kept.get(rf.field.as_str()) {
            None => {
                kept.insert(&rf.field, iv);
            }
            Some(prev) => match prev.intersect(&iv) {
                Some(narrowed) => {
                    kept.insert(&rf.field, narrowed);
                }
                None => {
                    diags.push(
                        Diagnostic::error(
                            "E0601",
                            format!(
                                "Point range filters on '{}' are mutually exclusive \
                                 ([{}, {}] ∩ [{lo}, {hi}] = ∅)",
                                rf.field,
                                prev.lo(),
                                prev.hi(),
                            ),
                        )
                        .with_note(
                            "every reading fails one of the two filters — the stage is dead",
                        ),
                    );
                }
            },
        }
        check_numeric_field(fleet, &rf.field, "the Point range filter", diags);
    }
    if let Some(ev) = &p.expected_values {
        if ev.allowed.is_empty() {
            diags.push(
                Diagnostic::error(
                    "E0601",
                    format!(
                        "Point expected-values filter on '{}' allows no values",
                        ev.field
                    ),
                )
                .with_note("an empty allow-list drops every reading — the stage is dead"),
            );
        }
        if let Some(fleet) = fleet {
            match fleet.fact(&ev.field) {
                FieldFact::Absent => diags.push(drift_absent(
                    &ev.field,
                    "the Point expected-values filter",
                    fleet,
                )),
                FieldFact::Numeric => diags.push(
                    Diagnostic::error(
                        "E0604",
                        format!(
                            "Point expected-values filter on '{}' can never match: the \
                             declared receptor types ({}) produce it as a number, but the \
                             filter matches only string values",
                            ev.field,
                            fleet.types(),
                        ),
                    )
                    .with_note(
                        "a non-string value always fails the filter — every reading is dropped",
                    ),
                ),
                FieldFact::NonNumeric => {}
            }
        }
    }
}

/// Flag a per-receptor numeric read (range filter, smooth value) whose
/// field no declared receptor type produces as a number.
fn check_numeric_field(
    fleet: Option<&FleetSchemas>,
    field: &str,
    what: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(fleet) = fleet else { return };
    match fleet.fact(field) {
        FieldFact::Numeric => {}
        FieldFact::Absent => diags.push(drift_absent(field, what, fleet)),
        FieldFact::NonNumeric => diags.push(
            Diagnostic::error(
                "E0604",
                format!(
                    "{what} reads '{field}' as a number, but the declared receptor \
                     types ({}) never produce it as one",
                    fleet.types(),
                ),
            )
            .with_note(
                "a non-numeric field reads as NULL at this stage, and the stage drops \
                 tuples where its field is missing — silent data loss",
            ),
        ),
    }
}

fn drift_absent(field: &str, what: &str, fleet: &FleetSchemas) -> Diagnostic {
    Diagnostic::error(
        "E0604",
        format!(
            "{what} reads '{field}', but no declared receptor type ({}) produces \
             that field",
            fleet.types(),
        ),
    )
    .with_note(
        "the runtime drops tuples where a filtered field is missing, so this stage \
         silently discards every reading — fix the field name or the receptor types",
    )
}

/// Walk a query (including derived tables and quantified subqueries)
/// flagging windows that do not divide evenly into the granule.
fn check_windows(stmt: &SelectStmt, granule: TimeDelta, label: &str, diags: &mut Vec<Diagnostic>) {
    for item in &stmt.from {
        if let Some(w) = &item.window {
            let (wms, gms) = (w.range.as_millis(), granule.as_millis());
            if wms > 0 && gms > 0 && wms % gms != 0 {
                diags.push(
                    Diagnostic::error(
                        "E0605",
                        format!(
                            "declarative stage '{label}' windows over {} — not a whole \
                             multiple of the temporal granule ({granule})",
                            w.range,
                        ),
                    )
                    .with_note(
                        "past the Merge/Arbitrate boundary tuples arrive granule-aligned; \
                         a fractional window drifts against that alignment and double- or \
                         under-counts readings",
                    ),
                );
            }
        }
        if let FromSource::Derived(sub) = &item.source {
            check_windows(sub, granule, label, diags);
        }
    }
    for e in stmt
        .where_clause
        .iter()
        .chain(stmt.having.iter())
        .chain(stmt.group_by.iter())
        .chain(stmt.select.iter().map(|i| &i.expr))
    {
        for_each_subquery(e, &mut |sub| check_windows(sub, granule, label, diags));
    }
}

fn for_each_subquery(expr: &Expr, f: &mut dyn FnMut(&SelectStmt)) {
    match expr {
        Expr::QuantifiedCmp { lhs, subquery, .. } => {
            for_each_subquery(lhs, f);
            f(subquery);
        }
        Expr::Cmp { lhs, rhs, .. } | Expr::Arith { lhs, rhs, .. } => {
            for_each_subquery(lhs, f);
            for_each_subquery(rhs, f);
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            for_each_subquery(a, f);
            for_each_subquery(b, f);
        }
        Expr::Not(e) | Expr::Neg(e) => for_each_subquery(e, f),
        Expr::Call { args, .. } => {
            for a in args {
                for_each_subquery(a, f);
            }
        }
        Expr::Literal(_) | Expr::Field { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use crate::deploy::DeploymentSpec;

    fn spec(json: &str) -> DeploymentSpec {
        DeploymentSpec::from_json(json).expect("spec parses")
    }

    fn codes(json: &str) -> Vec<&'static str> {
        spec(json).analyze().into_iter().map(|d| d.code).collect()
    }

    const CLEAN: &str = r#"{
        "temporal_granule": "5 sec",
        "groups": [
            { "granule": "shelf0", "receptor_type": "rfid", "members": [0] }
        ],
        "stages": [
            { "point": { "expected_values": { "field": "tag_id", "allowed": ["a", "b"] } } }
        ]
    }"#;

    #[test]
    fn clean_spec_analyzes_clean() {
        assert!(codes(CLEAN).is_empty(), "{:#?}", spec(CLEAN).analyze());
    }

    #[test]
    fn empty_range_filter_is_dead() {
        let json = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "g", "receptor_type": "mote", "members": [0] }],
            "stages": [
                { "point": { "range_filters": [
                    { "field": "temp", "min": 50.0, "max": 10.0 }
                ] } }
            ]
        }"#;
        assert_eq!(codes(json), vec!["E0601"]);
    }

    #[test]
    fn mutually_exclusive_filters_are_dead() {
        let json = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "g", "receptor_type": "mote", "members": [0] }],
            "stages": [
                { "point": { "range_filters": [
                    { "field": "temp", "min": 0.0, "max": 10.0 },
                    { "field": "temp", "min": 20.0, "max": 30.0 }
                ] } }
            ]
        }"#;
        assert_eq!(codes(json), vec!["E0601"]);
    }

    #[test]
    fn overlapping_filters_narrow_quietly() {
        let json = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "g", "receptor_type": "mote", "members": [0] }],
            "stages": [
                { "point": { "range_filters": [
                    { "field": "temp", "min": 0.0, "max": 10.0 },
                    { "field": "temp", "min": 5.0 }
                ] } }
            ]
        }"#;
        assert!(codes(json).is_empty());
    }

    #[test]
    fn empty_allow_list_is_dead() {
        let json = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "g", "receptor_type": "rfid", "members": [0] }],
            "stages": [
                { "point": { "expected_values": { "field": "tag_id", "allowed": [] } } }
            ]
        }"#;
        assert_eq!(codes(json), vec!["E0601"]);
    }

    #[test]
    fn range_filter_field_drift() {
        // No rfid reading carries "temp": the filter drops everything.
        let json = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "shelf0", "receptor_type": "rfid", "members": [0] }],
            "stages": [
                { "point": { "range_filters": [{ "field": "temp", "min": 0.0 }] } }
            ]
        }"#;
        assert_eq!(codes(json), vec!["E0604"]);
    }

    #[test]
    fn range_filter_over_string_field_drifts() {
        let json = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "shelf0", "receptor_type": "rfid", "members": [0] }],
            "stages": [
                { "point": { "range_filters": [{ "field": "tag_id", "min": 0.0 }] } }
            ]
        }"#;
        assert_eq!(codes(json), vec!["E0604"]);
    }

    #[test]
    fn expected_values_over_numeric_field_drifts() {
        let json = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "g", "receptor_type": "mote", "members": [0] }],
            "stages": [
                { "point": { "expected_values": { "field": "temp", "allowed": ["hot"] } } }
            ]
        }"#;
        assert_eq!(codes(json), vec!["E0604"]);
    }

    #[test]
    fn mixed_fleet_suppresses_drift() {
        // "temp" is a mote field; with a mote group present the same
        // filter is plausible, so the analysis stays silent.
        let json = r#"{
            "temporal_granule": "5 sec",
            "groups": [
                { "granule": "shelf0", "receptor_type": "rfid", "members": [0] },
                { "granule": "room0", "receptor_type": "mote", "members": [1] }
            ],
            "stages": [
                { "point": { "range_filters": [{ "field": "temp", "min": 0.0 }] } }
            ]
        }"#;
        assert!(codes(json).is_empty());
    }

    #[test]
    fn smooth_value_field_drift() {
        let json = r#"{
            "temporal_granule": "5 sec",
            "smooth_window": "5 sec",
            "groups": [{ "granule": "shelf0", "receptor_type": "rfid", "members": [0] }],
            "stages": [
                { "smooth": { "mode": "windowed_mean", "keys": ["receptor_id"],
                  "value_field": "temp" } }
            ]
        }"#;
        assert_eq!(codes(json), vec!["E0604"]);
    }

    #[test]
    fn fractional_window_past_merge_boundary() {
        let json = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "g", "receptor_type": "mote", "members": [0] }],
            "stages": [
                { "declarative": { "scope": "per_group",
                  "query": "SELECT avg(temp) FROM input [Range By '12 sec']" } }
            ]
        }"#;
        assert_eq!(codes(json), vec!["E0605"]);
    }

    #[test]
    fn whole_multiple_window_is_fine_and_per_receptor_is_exempt() {
        let json = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "g", "receptor_type": "mote", "members": [0] }],
            "stages": [
                { "declarative": { "scope": "global",
                  "query": "SELECT avg(temp) FROM input [Range By '15 sec']" } }
            ]
        }"#;
        assert!(codes(json).is_empty());
        // Raw readings arrive at arbitrary timestamps per receptor, so a
        // fractional window there has no boundary to drift against.
        let json = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "g", "receptor_type": "mote", "members": [0] }],
            "stages": [
                { "declarative": { "scope": "per_receptor",
                  "query": "SELECT avg(temp) FROM input [Range By '12 sec']" } }
            ]
        }"#;
        assert!(codes(json).is_empty());
    }

    #[test]
    fn fractional_window_in_subquery_is_caught() {
        let json = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "g", "receptor_type": "mote", "members": [0] }],
            "stages": [
                { "declarative": { "scope": "global",
                  "query": "SELECT granule FROM input [Range By '5 sec'] GROUP BY granule HAVING count(*) >= ALL(SELECT count(*) FROM input [Range By '7 sec'] GROUP BY granule)" } }
            ]
        }"#;
        assert_eq!(codes(json), vec!["E0605"]);
    }

    #[test]
    fn open_ended_receptor_types_stay_silent() {
        // An unknown receptor type is E0304's job (validate); analyze
        // must not guess at its schema.
        let json = r#"{
            "temporal_granule": "5 sec",
            "groups": [{ "granule": "g", "receptor_type": "laser", "members": [0] }],
            "stages": [
                { "point": { "range_filters": [{ "field": "wavelength", "min": 0.0 }] } }
            ]
        }"#;
        assert!(codes(json).is_empty());
    }
}
