//! Proximity groups: the realization of the spatial granule.
//!
//! A proximity group is "a set of receptors of the same type that are
//! monitoring the same spatial granule" (paper §3.1.2). Granules and
//! devices may be related one-to-many, many-to-one, or many-to-many, and
//! the mapping may change dynamically; ESP hides all of that from the
//! application.

use std::collections::BTreeSet;

use esp_types::{EspError, ProximityGroupId, ReceptorId, ReceptorType, Result, SpatialGranule};

/// One registered proximity group.
#[derive(Debug, Clone)]
pub struct GroupEntry {
    /// The group id.
    pub id: ProximityGroupId,
    /// The receptor type shared by all members.
    pub receptor_type: ReceptorType,
    /// The spatial granule this group monitors.
    pub granule: SpatialGranule,
    /// The member devices.
    pub members: BTreeSet<ReceptorId>,
}

/// The registry mapping receptors to proximity groups and spatial granules.
#[derive(Debug, Clone, Default)]
pub struct ProximityGroups {
    groups: Vec<GroupEntry>,
}

impl ProximityGroups {
    /// An empty registry.
    pub fn new() -> ProximityGroups {
        ProximityGroups { groups: Vec::new() }
    }

    /// Register a group of `receptor_type` devices monitoring `granule`.
    /// Members may be added later with [`ProximityGroups::add_member`].
    pub fn add_group(
        &mut self,
        receptor_type: ReceptorType,
        granule: impl Into<SpatialGranule>,
        members: impl IntoIterator<Item = ReceptorId>,
    ) -> ProximityGroupId {
        let id = ProximityGroupId(self.groups.len() as u32);
        self.groups.push(GroupEntry {
            id,
            receptor_type,
            granule: granule.into(),
            members: members.into_iter().collect(),
        });
        id
    }

    /// All registered groups.
    pub fn groups(&self) -> &[GroupEntry] {
        &self.groups
    }

    /// The group with the given id.
    pub fn group(&self, id: ProximityGroupId) -> Result<&GroupEntry> {
        self.groups
            .get(id.0 as usize)
            .ok_or_else(|| EspError::Config(format!("unknown proximity group {id}")))
    }

    /// The spatial granule a group monitors.
    pub fn granule(&self, id: ProximityGroupId) -> Result<&SpatialGranule> {
        Ok(&self.group(id)?.granule)
    }

    /// Every group a receptor belongs to (many-to-many supported).
    pub fn groups_of(&self, receptor: ReceptorId) -> Vec<ProximityGroupId> {
        self.groups
            .iter()
            .filter(|g| g.members.contains(&receptor))
            .map(|g| g.id)
            .collect()
    }

    /// Add a device to a group (dynamic remapping).
    pub fn add_member(&mut self, group: ProximityGroupId, receptor: ReceptorId) -> Result<()> {
        let g = self
            .groups
            .get_mut(group.0 as usize)
            .ok_or_else(|| EspError::Config(format!("unknown proximity group {group}")))?;
        g.members.insert(receptor);
        Ok(())
    }

    /// Remove a device from a group (dynamic remapping; e.g. a mote died or
    /// was physically relocated).
    pub fn remove_member(&mut self, group: ProximityGroupId, receptor: ReceptorId) -> Result<()> {
        let g = self
            .groups
            .get_mut(group.0 as usize)
            .ok_or_else(|| EspError::Config(format!("unknown proximity group {group}")))?;
        if !g.members.remove(&receptor) {
            return Err(EspError::Config(format!(
                "{receptor} is not a member of {group}"
            )));
        }
        Ok(())
    }

    /// Move a device between groups atomically.
    pub fn move_member(
        &mut self,
        from: ProximityGroupId,
        to: ProximityGroupId,
        receptor: ReceptorId,
    ) -> Result<()> {
        self.remove_member(from, receptor)?;
        self.add_member(to, receptor)
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no group is registered.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_resolve_members_and_granules() {
        let mut pg = ProximityGroups::new();
        let shelf0 = pg.add_group(ReceptorType::Rfid, "shelf0", [ReceptorId(0)]);
        let shelf1 = pg.add_group(ReceptorType::Rfid, "shelf1", [ReceptorId(1)]);
        assert_eq!(pg.len(), 2);
        assert_eq!(pg.granule(shelf0).unwrap().name(), "shelf0");
        assert_eq!(pg.groups_of(ReceptorId(1)), vec![shelf1]);
        assert!(pg.groups_of(ReceptorId(9)).is_empty());
    }

    #[test]
    fn many_to_many_memberships() {
        let mut pg = ProximityGroups::new();
        let a = pg.add_group(ReceptorType::Mote, "room-a", [ReceptorId(0), ReceptorId(1)]);
        let b = pg.add_group(ReceptorType::Mote, "hall", [ReceptorId(1)]);
        assert_eq!(pg.groups_of(ReceptorId(1)), vec![a, b]);
    }

    #[test]
    fn dynamic_remapping() {
        let mut pg = ProximityGroups::new();
        let a = pg.add_group(ReceptorType::Mote, "low", [ReceptorId(0)]);
        let b = pg.add_group(ReceptorType::Mote, "high", []);
        pg.move_member(a, b, ReceptorId(0)).unwrap();
        assert_eq!(pg.groups_of(ReceptorId(0)), vec![b]);
        assert!(pg.remove_member(a, ReceptorId(0)).is_err(), "already moved");
    }

    #[test]
    fn unknown_group_errors() {
        let pg = ProximityGroups::new();
        assert!(pg.group(ProximityGroupId(3)).is_err());
        let mut pg2 = ProximityGroups::new();
        assert!(pg2.add_member(ProximityGroupId(0), ReceptorId(0)).is_err());
    }
}
