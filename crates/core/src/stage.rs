//! The [`Stage`] trait and its three implementation styles.
//!
//! Paper §3.3: "Stages may be implemented in a variety of ways: declarative
//! continuous queries; user-defined functions or aggregates; arbitrary
//! code." [`DeclarativeStage`] covers the first, [`FnStage`] the second,
//! and any hand-written `impl Stage` the third.

use esp_query::ContinuousQuery;
use esp_stream::{ops::SegBuf, unexpected_state, Operator, Payload, StageState};
use esp_types::{Batch, Chunk, Determinism, EspError, FieldEffects, Result, Ts, Tuple};

/// One processing stage of an ESP pipeline.
///
/// A stage receives the epoch's input tuples and emits the epoch's output;
/// windowing (temporal or spatial aggregation) is internal stage state.
pub trait Stage: Send {
    /// Human-readable name for diagnostics.
    fn name(&self) -> &str;

    /// Process one epoch.
    fn process(&mut self, epoch: Ts, input: Vec<Tuple>) -> Result<Batch>;

    /// Whether this stage consumes and produces columnar chunks natively.
    /// Purely informational — [`Stage::process_chunks`] is always safe to
    /// call — but lets adapters and diagnostics report where the columnar
    /// data path demotes to rows.
    fn accepts_chunks(&self) -> bool {
        false
    }

    /// Process one epoch whose input arrived as columnar chunks. The
    /// default materializes the rows and delegates to [`Stage::process`],
    /// so every row-at-a-time stage (UDFs, arbitrary code) works
    /// unmodified; chunk-native stages ([`DeclarativeStage`]) override it
    /// to keep the columns intact end-to-end.
    fn process_chunks(&mut self, epoch: Ts, chunks: Vec<Chunk>) -> Result<Payload> {
        let rows: Vec<Tuple> = chunks.iter().flat_map(Chunk::to_tuples).collect();
        self.process(epoch, rows).map(Payload::Rows)
    }

    /// Capture cross-epoch state for a durability checkpoint (called at
    /// epoch boundaries only). The default declares the stage stateless —
    /// correct for per-tuple filters, wrong for anything windowed: a
    /// stage holding a window buffer or running aggregate must override
    /// this and [`Stage::restore`], or recovery silently resets it.
    /// Built-in stages ([`SmoothStage`](crate::SmoothStage),
    /// [`MergeStage`](crate::MergeStage), …) all do.
    fn state(&self) -> Result<Option<StageState>> {
        Ok(None)
    }

    /// Restore state captured by [`Stage::state`] into this freshly
    /// built, identically configured stage.
    fn restore(&mut self, _state: &StageState) -> Result<()> {
        Err(unexpected_state(self.name()))
    }

    /// Whether this stage can be checkpointed at all — the static
    /// question, as opposed to [`Stage::state`]'s "capture it now". A
    /// stage whose cross-epoch state has no serialized form (e.g.
    /// [`DeclarativeStage`]) returns `false`, and a durable gateway
    /// rejects the pipeline up front (`E0804`) rather than running until
    /// its first checkpoint and dying there.
    fn checkpointable(&self) -> bool {
        true
    }

    /// Whether replaying this stage over identical input epochs reproduces
    /// identical output — the replay half of the durability contract,
    /// companion to [`Stage::checkpointable`]. Stages that read the wall
    /// clock or otherwise depend on anything besides their input must
    /// report taint; a durable gateway rejects tainted stages at spawn
    /// time (`E0903`) instead of recovering to different bytes.
    fn determinism(&self) -> Determinism {
        Determinism::Deterministic
    }

    /// Static field-effect summary for the whole-pipeline dataflow
    /// analyses (`esp-lint` E0901/E0902): which input columns the stage
    /// reads, which output columns it writes (`None` = passthrough), and
    /// whether it counts rows. The default is fully opaque — reads and
    /// writes everything — which is always sound and merely disables
    /// liveness-based findings for this stage.
    fn field_effects(&self) -> FieldEffects {
        FieldEffects::opaque()
    }
}

/// A stage defined by a declarative continuous query.
///
/// The query must read exactly one stream; the stage's input is pushed to
/// it and the query is ticked at each epoch.
pub struct DeclarativeStage {
    name: String,
    stream: String,
    query: ContinuousQuery,
}

impl DeclarativeStage {
    /// Wrap a compiled single-stream query as a stage.
    pub fn new(name: impl Into<String>, query: ContinuousQuery) -> Result<DeclarativeStage> {
        let streams = query.input_streams();
        let [stream] = streams else {
            return Err(esp_types::EspError::Config(format!(
                "a declarative stage needs a single-input query; '{}' reads {} streams",
                query.text(),
                streams.len()
            )));
        };
        let stream = stream.clone();
        Ok(DeclarativeStage {
            name: name.into(),
            stream,
            query,
        })
    }
}

impl Stage for DeclarativeStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, epoch: Ts, input: Vec<Tuple>) -> Result<Batch> {
        if !input.is_empty() {
            self.query.push(&self.stream, &input)?;
        }
        self.query.tick(epoch)
    }

    fn accepts_chunks(&self) -> bool {
        true
    }

    fn process_chunks(&mut self, epoch: Ts, chunks: Vec<Chunk>) -> Result<Payload> {
        for chunk in chunks {
            self.query.push_chunk(&self.stream, chunk)?;
        }
        Ok(Payload::Chunks(vec![self.query.tick_chunk(epoch)?]))
    }

    fn state(&self) -> Result<Option<StageState>> {
        // The compiled query's window state lives inside the engine and
        // has no serial form yet. Failing the checkpoint is honest;
        // pretending the stage is stateless would make recovery silently
        // wrong. Deployments that need durability use the built-in
        // stages, whose state round-trips exactly. `checkpointable()`
        // below reports this statically, so a durable gateway never gets
        // here (E0804 rejects it at spawn); this error is the backstop
        // for anyone driving checkpoints by hand.
        Err(EspError::Snapshot(format!(
            "declarative stage '{}' cannot be checkpointed: compiled-query window state \
             has no serialized form",
            self.name
        )))
    }

    fn checkpointable(&self) -> bool {
        false
    }

    fn determinism(&self) -> Determinism {
        self.query.determinism()
    }

    fn field_effects(&self) -> FieldEffects {
        self.query.field_effects()
    }
}

/// A boxed per-tuple transform: maps a tuple to a replacement (`None`
/// drops it). Shared by [`FnStage::per_tuple`] and `PointOp::Map`.
pub type TupleMapFn = Box<dyn FnMut(&Tuple) -> Result<Option<Tuple>> + Send>;

/// A stage defined by user code: either a per-tuple function or a
/// per-epoch function.
pub struct FnStage {
    name: String,
    kind: FnKind,
    determinism: Determinism,
}

enum FnKind {
    PerTuple(TupleMapFn),
    PerEpoch(Box<dyn FnMut(Ts, Vec<Tuple>) -> Result<Batch> + Send>),
}

impl FnStage {
    /// A stage that maps each tuple independently (`None` drops it).
    pub fn per_tuple(
        name: impl Into<String>,
        f: impl FnMut(&Tuple) -> Result<Option<Tuple>> + Send + 'static,
    ) -> FnStage {
        FnStage {
            name: name.into(),
            kind: FnKind::PerTuple(Box::new(f)),
            determinism: Determinism::Deterministic,
        }
    }

    /// A stage that sees the whole epoch at once.
    pub fn per_epoch(
        name: impl Into<String>,
        f: impl FnMut(Ts, Vec<Tuple>) -> Result<Batch> + Send + 'static,
    ) -> FnStage {
        FnStage {
            name: name.into(),
            kind: FnKind::PerEpoch(Box::new(f)),
            determinism: Determinism::Deterministic,
        }
    }

    /// Declare that the wrapped function is **not** a pure function of its
    /// input (it reads the wall clock, draws randomness, consults external
    /// state, …). A durable gateway then rejects the pipeline at spawn
    /// time (`E0903`) rather than recovering to different bytes. User code
    /// is opaque, so honesty here is the contract: the default assumes
    /// determinism.
    pub fn nondeterministic(mut self, reason: impl Into<String>) -> FnStage {
        self.determinism = Determinism::nondeterministic(reason);
        self
    }
}

impl Stage for FnStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, epoch: Ts, input: Vec<Tuple>) -> Result<Batch> {
        match &mut self.kind {
            FnKind::PerTuple(f) => {
                let mut out = Batch::with_capacity(input.len());
                for t in &input {
                    if let Some(mapped) = f(t)? {
                        out.push(mapped);
                    }
                }
                Ok(out)
            }
            FnKind::PerEpoch(f) => f(epoch, input),
        }
    }

    fn determinism(&self) -> Determinism {
        self.determinism.clone()
    }
}

/// Adapter running any [`Stage`] as an [`esp_stream::Operator`] so the ESP
/// processor can place it in a dataflow. Chunk arrivals stay columnar when
/// the whole epoch arrived as chunks; mixed epochs are processed as rows
/// in arrival order.
pub struct StageOperator {
    stage: Box<dyn Stage>,
    buf: SegBuf,
}

impl StageOperator {
    /// Wrap a stage.
    pub fn new(stage: Box<dyn Stage>) -> StageOperator {
        StageOperator {
            stage,
            buf: SegBuf::default(),
        }
    }

    fn run_epoch(&mut self, epoch: Ts) -> Result<Payload> {
        match self.buf.take() {
            Payload::Chunks(chunks) => self.stage.process_chunks(epoch, chunks),
            Payload::Rows(rows) => self.stage.process(epoch, rows).map(Payload::Rows),
        }
    }
}

impl Operator for StageOperator {
    fn name(&self) -> &str {
        self.stage.name()
    }

    fn push(&mut self, _port: usize, batch: &[Tuple]) -> Result<()> {
        self.buf.push_rows(batch);
        Ok(())
    }

    fn push_chunk(&mut self, _port: usize, chunk: &Chunk) -> Result<()> {
        self.buf.push_chunk(chunk);
        Ok(())
    }

    fn flush(&mut self, epoch: Ts) -> Result<Batch> {
        self.run_epoch(epoch).map(Payload::into_rows)
    }

    fn flush_payload(&mut self, epoch: Ts) -> Result<Payload> {
        self.run_epoch(epoch)
    }

    fn state(&self) -> Result<Option<StageState>> {
        // `buf` only holds tuples mid-epoch; checkpoints happen at epoch
        // boundaries where the last flush drained it. Guard anyway: a
        // non-empty buffer here means the protocol was violated, and a
        // snapshot that ignored it would lose data on recovery.
        if !self.buf.is_empty() {
            return Err(EspError::Snapshot(format!(
                "stage '{}' checkpointed mid-epoch: {} undelivered tuple(s) in its input buffer",
                self.stage.name(),
                self.buf.len()
            )));
        }
        self.stage.state()
    }

    fn restore(&mut self, state: &StageState) -> Result<()> {
        self.stage.restore(state)
    }

    fn checkpointable(&self) -> bool {
        self.stage.checkpointable()
    }

    fn determinism(&self) -> Determinism {
        self.stage.determinism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_query::Engine;
    use esp_types::{well_known, TupleBuilder, Value};

    fn rfid(ts: Ts, tag: &str) -> Tuple {
        TupleBuilder::new(&well_known::rfid_schema(), ts)
            .set("receptor_id", 0i64)
            .unwrap()
            .set("tag_id", tag)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn declarative_stage_runs_paper_query_2() {
        let engine = Engine::new();
        let q = engine
            .compile("SELECT tag_id, count(*) FROM smooth_input [Range By '5 sec'] GROUP BY tag_id")
            .unwrap();
        let mut stage = DeclarativeStage::new("smooth", q).unwrap();
        let out = stage.process(Ts::ZERO, vec![rfid(Ts::ZERO, "a")]).unwrap();
        assert_eq!(out.len(), 1);
        // The tag persists through the granule even with no new input.
        let out = stage.process(Ts::from_secs(3), vec![]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("tag_id"), Some(&Value::str("a")));
        let out = stage.process(Ts::from_secs(8), vec![]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn declarative_stage_rejects_multi_stream_queries() {
        let engine = Engine::new();
        let q = engine
            .compile("SELECT a.tag_id FROM a [Range 'NOW'], b [Range 'NOW']")
            .unwrap();
        assert!(DeclarativeStage::new("bad", q).is_err());
    }

    #[test]
    fn per_tuple_stage_filters() {
        let mut stage = FnStage::per_tuple("drop-b", |t| {
            Ok((t.get("tag_id") != Some(&Value::str("b"))).then(|| t.clone()))
        });
        let out = stage
            .process(Ts::ZERO, vec![rfid(Ts::ZERO, "a"), rfid(Ts::ZERO, "b")])
            .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn per_epoch_stage_sees_batch() {
        let mut stage = FnStage::per_epoch("count", |epoch, input| {
            let schema = esp_types::Schema::builder()
                .field("n", esp_types::DataType::Int)
                .build()
                .unwrap();
            Ok(vec![Tuple::new(
                schema,
                epoch,
                vec![Value::Int(input.len() as i64)],
            )?])
        });
        let out = stage
            .process(
                Ts::from_secs(1),
                vec![rfid(Ts::ZERO, "a"), rfid(Ts::ZERO, "b")],
            )
            .unwrap();
        assert_eq!(out[0].get("n"), Some(&Value::Int(2)));
    }

    #[test]
    fn declarative_stage_is_not_checkpointable() {
        let engine = Engine::new();
        let q = engine
            .compile("SELECT tag_id FROM s [Range By '5 sec']")
            .unwrap();
        let stage = DeclarativeStage::new("q", q).unwrap();
        assert!(!stage.checkpointable());
        assert!(stage.state().is_err(), "runtime backstop still errors");
        // The static flag survives the operator adapter, which is what the
        // gateway's spawn-time E0804 probe actually consults.
        let op = StageOperator::new(Box::new(stage));
        assert!(!op.checkpointable());
        // Ordinary stages stay checkpointable by default.
        let plain = FnStage::per_tuple("id", |t| Ok(Some(t.clone())));
        assert!(plain.checkpointable());
    }

    #[test]
    fn determinism_survives_the_operator_adapter() {
        // A query calling now() taints its declarative stage; the taint —
        // reason included — survives StageOperator, which is what the
        // gateway's spawn-time E0903 probe actually consults.
        let engine = Engine::new();
        let q = engine
            .compile("SELECT tag_id, now() FROM s [Range By 'NOW']")
            .unwrap();
        let stage = DeclarativeStage::new("stamp", q).unwrap();
        assert!(!stage.determinism().is_deterministic());
        let op = StageOperator::new(Box::new(stage));
        let Determinism::Nondeterministic { reason } = op.determinism() else {
            panic!("taint lost through the adapter");
        };
        assert!(reason.contains("now"), "{reason}");
        // Plain stages stay deterministic by default; the marker opts out.
        let plain = FnStage::per_tuple("id", |t| Ok(Some(t.clone())));
        assert!(plain.determinism().is_deterministic());
        let tainted = FnStage::per_tuple("roll", |t| Ok(Some(t.clone())))
            .nondeterministic("draws randomness");
        let op = StageOperator::new(Box::new(tainted));
        assert!(!op.determinism().is_deterministic());
    }

    #[test]
    fn field_effects_survive_the_stage_layer() {
        let engine = Engine::new();
        let q = engine
            .compile("SELECT tag_id, count(*) FROM s [Range By '5 sec'] GROUP BY tag_id")
            .unwrap();
        let stage = DeclarativeStage::new("smooth", q).unwrap();
        let fe = stage.field_effects();
        assert!(!fe.opaque);
        assert!(fe.reads.contains("tag_id"));
        assert!(fe.counts_rows);
        // User code stays opaque unless it says otherwise.
        let plain = FnStage::per_tuple("id", |t| Ok(Some(t.clone())));
        assert!(plain.field_effects().opaque);
    }

    #[test]
    fn declarative_stage_keeps_chunks_columnar() {
        let engine = Engine::new();
        let q = engine
            .compile("SELECT tag_id, count(*) FROM smooth_input [Range By '5 sec'] GROUP BY tag_id")
            .unwrap();
        let mut stage = DeclarativeStage::new("smooth", q).unwrap();
        assert!(stage.accepts_chunks());
        let chunk = Chunk::from_tuples(
            &esp_types::well_known::rfid_schema(),
            &[rfid(Ts::ZERO, "a"), rfid(Ts::ZERO, "b")],
        )
        .unwrap();
        let out = stage.process_chunks(Ts::ZERO, vec![chunk]).unwrap();
        let Payload::Chunks(chunks) = out else {
            panic!("declarative stage demoted to rows");
        };
        assert_eq!(chunks.iter().map(Chunk::len).sum::<usize>(), 2);
        // Row twin produces the same tuples.
        let engine = Engine::new();
        let q = engine
            .compile("SELECT tag_id, count(*) FROM smooth_input [Range By '5 sec'] GROUP BY tag_id")
            .unwrap();
        let mut twin = DeclarativeStage::new("smooth", q).unwrap();
        let row_out = twin
            .process(Ts::ZERO, vec![rfid(Ts::ZERO, "a"), rfid(Ts::ZERO, "b")])
            .unwrap();
        let chunk_rows: Vec<Tuple> = chunks.iter().flat_map(Chunk::to_tuples).collect();
        assert_eq!(chunk_rows, row_out);
    }

    #[test]
    fn row_stage_receives_chunk_input_through_the_shim() {
        let stage = FnStage::per_tuple("drop-b", |t| {
            Ok((t.get("tag_id") != Some(&Value::str("b"))).then(|| t.clone()))
        });
        assert!(!stage.accepts_chunks());
        let mut op = StageOperator::new(Box::new(stage));
        let chunk = Chunk::from_tuples(
            &esp_types::well_known::rfid_schema(),
            &[rfid(Ts::ZERO, "a"), rfid(Ts::ZERO, "b")],
        )
        .unwrap();
        op.push_chunk(0, &chunk).unwrap();
        let out = op.flush(Ts::ZERO).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("tag_id"), Some(&Value::str("a")));
    }

    #[test]
    fn mixed_row_and_chunk_epoch_preserves_arrival_order() {
        let stage = FnStage::per_epoch("id", |_, input| Ok(input));
        let mut op = StageOperator::new(Box::new(stage));
        op.push(0, &[rfid(Ts::ZERO, "r1")]).unwrap();
        let chunk = Chunk::from_tuples(
            &esp_types::well_known::rfid_schema(),
            &[rfid(Ts::ZERO, "c1")],
        )
        .unwrap();
        op.push_chunk(0, &chunk).unwrap();
        op.push(0, &[rfid(Ts::ZERO, "r2")]).unwrap();
        let out = op.flush(Ts::ZERO).unwrap();
        let tags: Vec<_> = out.iter().map(|t| t.get("tag_id").cloned()).collect();
        assert_eq!(
            tags,
            vec![
                Some(Value::str("r1")),
                Some(Value::str("c1")),
                Some(Value::str("r2"))
            ]
        );
    }

    #[test]
    fn stage_operator_adapts() {
        let stage = FnStage::per_tuple("id", |t| Ok(Some(t.clone())));
        let mut op = StageOperator::new(Box::new(stage));
        op.push(0, &[rfid(Ts::ZERO, "a")]).unwrap();
        op.push(0, &[rfid(Ts::ZERO, "b")]).unwrap();
        assert_eq!(op.flush(Ts::ZERO).unwrap().len(), 2);
        assert_eq!(op.name(), "id");
        assert!(op.flush(Ts::ZERO).unwrap().is_empty());
    }
}
