//! Stage 5 — **Virtualize**: cross-receptor-type, application-level
//! cleaning.
//!
//! Virtualize combines readings from different types of devices and
//! different proximity groups into application-level data — the paper's
//! "person detector" (§6.2, Query 6): each modality's cleaned stream is
//! normalized to a vote, and an event is emitted when the vote total
//! reaches a threshold.

use std::sync::Arc;

use esp_types::{Batch, DataType, Field, Result, Schema, Ts, Tuple, Value};

use crate::stage::Stage;

/// A boxed vote predicate: given the epoch's input tuples, does this
/// modality vote "present"?
pub type VoteFn = Box<dyn FnMut(&[Tuple]) -> bool + Send>;

/// One modality's vote: a named predicate over the epoch's input tuples.
pub struct VoteRule {
    /// Modality label (diagnostics).
    pub label: String,
    /// Returns true when this modality votes "present" given the epoch's
    /// tuples.
    pub vote: VoteFn,
}

impl VoteRule {
    /// Build a rule from a closure.
    pub fn new(
        label: impl Into<String>,
        vote: impl FnMut(&[Tuple]) -> bool + Send + 'static,
    ) -> VoteRule {
        VoteRule {
            label: label.into(),
            vote: Box::new(vote),
        }
    }

    /// Votes yes when any tuple has `field` ≥ `threshold` (numeric) — e.g.
    /// the paper's `sensors.noise > 525`.
    pub fn numeric_above(
        label: impl Into<String>,
        field: impl Into<String>,
        threshold: f64,
    ) -> VoteRule {
        let field = field.into();
        VoteRule::new(label, move |tuples| {
            tuples.iter().any(|t| {
                t.get(&field)
                    .and_then(Value::as_f64)
                    .is_some_and(|x| x > threshold)
            })
        })
    }

    /// Votes yes when any tuple's `field` equals `value` — e.g. X10
    /// `value = 'ON'`.
    pub fn value_equals(
        label: impl Into<String>,
        field: impl Into<String>,
        value: impl Into<Value>,
    ) -> VoteRule {
        let field = field.into();
        let value = value.into();
        VoteRule::new(label, move |tuples| {
            tuples
                .iter()
                .any(|t| t.get(&field).is_some_and(|v| v.sql_eq(&value)))
        })
    }

    /// Votes yes when at least `n` tuples carry a non-null `field` — e.g.
    /// the paper's `count(distinct tag_id) > 1` becomes
    /// `min_tuples_with("tag_id", 2)` over the cleaned RFID stream.
    pub fn min_tuples_with(
        label: impl Into<String>,
        field: impl Into<String>,
        n: usize,
    ) -> VoteRule {
        let field = field.into();
        VoteRule::new(label, move |tuples| {
            tuples
                .iter()
                .filter(|t| t.get(&field).is_some_and(|v| !v.is_null()))
                .count()
                >= n
        })
    }
}

/// The built-in Virtualize stage: threshold voting across modalities.
///
/// Emits one `(event, votes)` tuple per epoch in which at least
/// `threshold` rules vote yes; silent otherwise.
pub struct VirtualizeStage {
    name: String,
    event: Value,
    rules: Vec<VoteRule>,
    threshold: usize,
    schema: Arc<Schema>,
}

impl VirtualizeStage {
    /// Build a voting virtualizer that emits `event` when at least
    /// `threshold` of `rules` vote yes.
    pub fn voting(
        name: impl Into<String>,
        event: impl Into<Value>,
        rules: Vec<VoteRule>,
        threshold: usize,
    ) -> Result<VirtualizeStage> {
        if threshold == 0 || threshold > rules.len() {
            return Err(esp_types::EspError::Config(format!(
                "vote threshold {threshold} out of range for {} rules",
                rules.len()
            )));
        }
        let schema = Schema::new(vec![
            Field::new("event", DataType::Any),
            Field::new("votes", DataType::Int),
        ])?;
        Ok(VirtualizeStage {
            name: name.into(),
            event: event.into(),
            rules,
            threshold,
            schema,
        })
    }

    /// The vote threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }
}

impl Stage for VirtualizeStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, epoch: Ts, input: Vec<Tuple>) -> Result<Batch> {
        let mut votes = 0usize;
        for rule in &mut self.rules {
            if (rule.vote)(&input) {
                votes += 1;
            }
        }
        if votes < self.threshold {
            return Ok(Batch::new());
        }
        Ok(vec![Tuple::new_unchecked(
            Arc::clone(&self.schema),
            epoch,
            vec![self.event.clone(), Value::Int(votes as i64)],
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_types::{well_known, TupleBuilder};

    fn sound(ts: Ts, level: f64) -> Tuple {
        TupleBuilder::new(&well_known::sound_schema(), ts)
            .set("receptor_id", 1i64)
            .unwrap()
            .set("noise", level)
            .unwrap()
            .build()
            .unwrap()
    }

    fn rfid(ts: Ts, tag: &str) -> Tuple {
        TupleBuilder::new(&well_known::rfid_schema(), ts)
            .set("receptor_id", 0i64)
            .unwrap()
            .set("tag_id", tag)
            .unwrap()
            .build()
            .unwrap()
    }

    fn motion(ts: Ts, v: &str) -> Tuple {
        TupleBuilder::new(&well_known::motion_schema(), ts)
            .set("receptor_id", 2i64)
            .unwrap()
            .set("value", v)
            .unwrap()
            .build()
            .unwrap()
    }

    fn person_detector(threshold: usize) -> VirtualizeStage {
        VirtualizeStage::voting(
            "virtualize",
            "Person-in-room",
            vec![
                VoteRule::numeric_above("sound", "noise", 525.0),
                VoteRule::min_tuples_with("rfid", "tag_id", 1),
                VoteRule::value_equals("motion", "value", "ON"),
            ],
            threshold,
        )
        .unwrap()
    }

    #[test]
    fn two_of_three_votes_detects() {
        let mut v = person_detector(2);
        let out = v
            .process(
                Ts::ZERO,
                vec![sound(Ts::ZERO, 700.0), rfid(Ts::ZERO, "badge-1")],
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("event"), Some(&Value::str("Person-in-room")));
        assert_eq!(out[0].get("votes"), Some(&Value::Int(2)));
    }

    #[test]
    fn one_vote_is_not_enough() {
        let mut v = person_detector(2);
        let out = v.process(Ts::ZERO, vec![sound(Ts::ZERO, 700.0)]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn quiet_room_produces_nothing() {
        let mut v = person_detector(2);
        // Sound below threshold + motion OFF: zero votes.
        let out = v
            .process(
                Ts::ZERO,
                vec![sound(Ts::ZERO, 400.0), motion(Ts::ZERO, "OFF")],
            )
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn all_three_modalities_vote() {
        let mut v = person_detector(3);
        let out = v
            .process(
                Ts::ZERO,
                vec![
                    sound(Ts::ZERO, 600.0),
                    rfid(Ts::ZERO, "badge-1"),
                    motion(Ts::ZERO, "ON"),
                ],
            )
            .unwrap();
        assert_eq!(out[0].get("votes"), Some(&Value::Int(3)));
    }

    #[test]
    fn threshold_validation() {
        assert!(VirtualizeStage::voting("v", "e", vec![], 1).is_err());
        let rules = vec![VoteRule::value_equals("m", "value", "ON")];
        assert!(VirtualizeStage::voting("v", "e", rules, 2).is_err());
    }
}
