//! Stage 4 — **Arbitrate**: conflict resolution between spatial granules.
//!
//! Receptors' detection fields rarely match spatial granules exactly, so
//! the same RFID tag is often read by the readers of *two* granules at
//! once. Arbitrate de-duplicates by attributing each tag to the granule
//! that read it the most (paper Query 3), exploiting the physical fact
//! that tags closer to a reader are read more often. Ties go to the
//! configured [`TieBreak`] policy; the paper's deployment used "attribute
//! a reading to the weaker antenna if the counts are equal" as crude
//! calibration (§4.3.1).

use std::collections::HashMap;
use std::sync::Arc;

use esp_stream::StageState;
use esp_types::{Batch, DataType, Field, Result, Schema, Ts, Tuple, Value, ValueKey};

use crate::stage::Stage;

/// Tie-break policy when two granules read a tag equally often in an epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TieBreak {
    /// Keep the reading in every tied granule (the raw Query 3 `>= ALL`
    /// semantics — both groups satisfy the predicate).
    KeepAll,
    /// Attribute the reading to the listed granule of highest priority
    /// (earliest in the list wins). The paper's crude calibration: list the
    /// weaker antenna's granule first.
    Priority(Vec<Arc<str>>),
}

/// The built-in Arbitrate stage.
///
/// Input tuples must carry `spatial_granule`, a key field (default
/// `tag_id`), and optionally a `count` field (produced by Smooth); a
/// missing count field counts each tuple as one sighting, which is what
/// running Arbitrate directly over raw readings (the Figure 5 ablation)
/// looks like.
pub struct ArbitrateStage {
    name: String,
    key_field: String,
    count_field: String,
    tie_break: TieBreak,
    out_schema: Option<Arc<Schema>>,
}

impl ArbitrateStage {
    /// Arbitrate on `tag_id`/`count` with the given tie-break policy.
    pub fn new(name: impl Into<String>, tie_break: TieBreak) -> ArbitrateStage {
        ArbitrateStage {
            name: name.into(),
            key_field: "tag_id".into(),
            count_field: "count".into(),
            tie_break,
            out_schema: None,
        }
    }

    /// Override the key and count field names.
    pub fn with_fields(
        mut self,
        key_field: impl Into<String>,
        count_field: impl Into<String>,
    ) -> ArbitrateStage {
        self.key_field = key_field.into();
        self.count_field = count_field.into();
        self
    }

    fn schema(&mut self) -> Result<Arc<Schema>> {
        if let Some(s) = &self.out_schema {
            return Ok(Arc::clone(s));
        }
        let s = Schema::new(vec![
            Field::new(esp_types::well_known::SPATIAL_GRANULE, DataType::Str),
            Field::new(&self.key_field, DataType::Any),
            Field::new(&self.count_field, DataType::Int),
        ])?;
        self.out_schema = Some(Arc::clone(&s));
        Ok(s)
    }

    fn priority_of(&self, granule: &Value) -> usize {
        match &self.tie_break {
            TieBreak::KeepAll => 0,
            TieBreak::Priority(order) => match granule {
                Value::Str(s) => order
                    .iter()
                    .position(|g| g.as_ref() == s.as_ref())
                    .unwrap_or(order.len()),
                _ => order.len(),
            },
        }
    }
}

impl Stage for ArbitrateStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, epoch: Ts, input: Vec<Tuple>) -> Result<Batch> {
        // Sum sightings per (key, granule) over this epoch's input.
        struct PerKey {
            key_value: Value,
            granules: Vec<(Value, i64)>,
        }
        let mut per_key: HashMap<ValueKey, PerKey> = HashMap::new();
        let mut order: Vec<ValueKey> = Vec::new();
        for t in &input {
            let key_value = t.require(&self.key_field)?.clone();
            let granule = t.require(esp_types::well_known::SPATIAL_GRANULE)?.clone();
            let n = match t.get(&self.count_field) {
                Some(Value::Int(n)) => *n,
                Some(Value::Float(f)) => f.round() as i64,
                _ => 1, // raw sighting
            };
            let k = key_value.group_key();
            let entry = per_key.entry(k.clone()).or_insert_with(|| {
                order.push(k);
                PerKey {
                    key_value,
                    granules: Vec::new(),
                }
            });
            match entry
                .granules
                .iter_mut()
                .find(|(g, _)| g.group_key() == granule.group_key())
            {
                Some((_, total)) => *total += n,
                None => entry.granules.push((granule, n)),
            }
        }

        let schema = self.schema()?;
        let mut out = Batch::new();
        for k in &order {
            let entry = &per_key[k];
            let max = entry.granules.iter().map(|(_, n)| *n).max().unwrap_or(0);
            let mut winners: Vec<&(Value, i64)> =
                entry.granules.iter().filter(|(_, n)| *n == max).collect();
            if winners.len() > 1 {
                match &self.tie_break {
                    TieBreak::KeepAll => {}
                    TieBreak::Priority(_) => {
                        winners.sort_by_key(|(g, _)| self.priority_of(g));
                        winners.truncate(1);
                    }
                }
            }
            for (granule, n) in winners {
                out.push(Tuple::new_unchecked(
                    Arc::clone(&schema),
                    epoch,
                    vec![granule.clone(), entry.key_value.clone(), Value::Int(*n)],
                ));
            }
        }
        Ok(out)
    }

    // Arbitrate's candidate sets are rebuilt from each epoch's input —
    // nothing survives an epoch boundary, so checkpoints record nothing
    // and recovery rebuilds the stage from configuration. Stated
    // explicitly (rather than inheriting the default) because it is a
    // load-bearing property of the recovery invariant.
    fn state(&self) -> Result<Option<StageState>> {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_types::TupleBuilder;

    fn smoothed(ts: Ts, granule: &str, tag: &str, count: i64) -> Tuple {
        let schema = Schema::builder()
            .field("spatial_granule", DataType::Str)
            .field("tag_id", DataType::Str)
            .field("count", DataType::Int)
            .build()
            .unwrap();
        TupleBuilder::new(&schema, ts)
            .set("spatial_granule", granule)
            .unwrap()
            .set("tag_id", tag)
            .unwrap()
            .set("count", count)
            .unwrap()
            .build()
            .unwrap()
    }

    fn granules_for(out: &Batch, tag: &str) -> Vec<String> {
        out.iter()
            .filter(|t| t.get("tag_id") == Some(&Value::str(tag)))
            .map(|t| {
                t.get("spatial_granule")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect()
    }

    #[test]
    fn majority_granule_wins() {
        let mut a = ArbitrateStage::new("arbitrate", TieBreak::KeepAll);
        let out = a
            .process(
                Ts::ZERO,
                vec![
                    smoothed(Ts::ZERO, "shelf0", "tag-1", 12),
                    smoothed(Ts::ZERO, "shelf1", "tag-1", 3),
                    smoothed(Ts::ZERO, "shelf1", "tag-2", 7),
                ],
            )
            .unwrap();
        assert_eq!(granules_for(&out, "tag-1"), vec!["shelf0"]);
        assert_eq!(granules_for(&out, "tag-2"), vec!["shelf1"]);
        // Winner's count is carried through.
        assert_eq!(out[0].get("count"), Some(&Value::Int(12)));
    }

    #[test]
    fn tie_keep_all_emits_both() {
        let mut a = ArbitrateStage::new("arbitrate", TieBreak::KeepAll);
        let out = a
            .process(
                Ts::ZERO,
                vec![
                    smoothed(Ts::ZERO, "shelf0", "tag-1", 5),
                    smoothed(Ts::ZERO, "shelf1", "tag-1", 5),
                ],
            )
            .unwrap();
        let mut gs = granules_for(&out, "tag-1");
        gs.sort();
        assert_eq!(gs, vec!["shelf0", "shelf1"]);
    }

    #[test]
    fn tie_priority_prefers_weaker_antenna() {
        // Paper §4.3.1: ties attributed to the weaker antenna (shelf1).
        let mut a = ArbitrateStage::new(
            "arbitrate",
            TieBreak::Priority(vec![Arc::from("shelf1"), Arc::from("shelf0")]),
        );
        let out = a
            .process(
                Ts::ZERO,
                vec![
                    smoothed(Ts::ZERO, "shelf0", "tag-1", 5),
                    smoothed(Ts::ZERO, "shelf1", "tag-1", 5),
                ],
            )
            .unwrap();
        assert_eq!(granules_for(&out, "tag-1"), vec!["shelf1"]);
    }

    #[test]
    fn raw_readings_count_as_one_each() {
        // Without a count field, each tuple is a single sighting — the
        // Figure 5 "Arbitrate only" configuration.
        let schema = Schema::builder()
            .field("spatial_granule", DataType::Str)
            .field("tag_id", DataType::Str)
            .build()
            .unwrap();
        let raw = |g: &str, tag: &str| {
            TupleBuilder::new(&schema, Ts::ZERO)
                .set("spatial_granule", g)
                .unwrap()
                .set("tag_id", tag)
                .unwrap()
                .build()
                .unwrap()
        };
        let mut a = ArbitrateStage::new("arbitrate", TieBreak::KeepAll);
        let out = a
            .process(
                Ts::ZERO,
                vec![raw("shelf0", "t"), raw("shelf0", "t"), raw("shelf1", "t")],
            )
            .unwrap();
        assert_eq!(granules_for(&out, "t"), vec!["shelf0"]);
        assert_eq!(out[0].get("count"), Some(&Value::Int(2)));
    }

    #[test]
    fn missing_spatial_granule_errors() {
        let schema = Schema::builder()
            .field("tag_id", DataType::Str)
            .build()
            .unwrap();
        let t = TupleBuilder::new(&schema, Ts::ZERO)
            .set("tag_id", "x")
            .unwrap()
            .build()
            .unwrap();
        let mut a = ArbitrateStage::new("arbitrate", TieBreak::KeepAll);
        assert!(a.process(Ts::ZERO, vec![t]).is_err());
    }

    #[test]
    fn empty_epoch_is_empty() {
        let mut a = ArbitrateStage::new("arbitrate", TieBreak::KeepAll);
        assert!(a.process(Ts::ZERO, vec![]).unwrap().is_empty());
    }
}
