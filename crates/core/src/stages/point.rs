//! Stage 1 — **Point**: tuple-level corrections, transformations, filters.
//!
//! Point operates over a single value in a receptor stream (paper §3.2):
//! filtering errant RFID tags or obvious outliers, converting fields, and
//! early elimination of data for performance. The paper's Query 4
//! (`SELECT * FROM point_input WHERE temp < 50`) and the digital-home
//! expected-tag join are both expressible here.

use std::collections::HashSet;
use std::sync::Arc;

use esp_stream::StageState;
use esp_types::{snap, Batch, Result, Ts, Tuple, Value};

use crate::stage::{Stage, TupleMapFn};

enum PointOp {
    /// Keep tuples whose `field` lies inside `[min, max]` (missing bound =
    /// unbounded). Non-numeric and NULL values are dropped.
    RangeFilter {
        field: String,
        min: Option<f64>,
        max: Option<f64>,
    },
    /// Keep tuples whose `field` is one of the allowed values — the
    /// digital-home "join with a static relation containing expected tag
    /// IDs" (paper §6.1).
    ExpectedValues {
        field: String,
        allowed: HashSet<Arc<str>>,
    },
    /// Arbitrary per-tuple transform; `None` drops the tuple.
    Map(TupleMapFn),
}

/// The built-in Point stage: an ordered chain of tuple-level operations.
pub struct PointStage {
    name: String,
    ops: Vec<PointOp>,
    dropped: u64,
}

impl PointStage {
    /// An empty Point stage (pass-through until ops are added).
    pub fn new(name: impl Into<String>) -> PointStage {
        PointStage {
            name: name.into(),
            ops: Vec::new(),
            dropped: 0,
        }
    }

    /// Append a numeric range filter: keep tuples with
    /// `min <= field <= max` (a missing bound is unbounded). The paper's
    /// Query 4 is `.range_filter("temp", None, Some(50.0))`; for real-valued
    /// sensor data the closed and open bound are indistinguishable.
    pub fn range_filter(
        mut self,
        field: impl Into<String>,
        min: Option<f64>,
        max: Option<f64>,
    ) -> PointStage {
        self.ops.push(PointOp::RangeFilter {
            field: field.into(),
            min,
            max,
        });
        self
    }

    /// Append an expected-values filter on a string field.
    pub fn expected_values<S: AsRef<str>>(
        mut self,
        field: impl Into<String>,
        allowed: impl IntoIterator<Item = S>,
    ) -> PointStage {
        self.ops.push(PointOp::ExpectedValues {
            field: field.into(),
            allowed: allowed.into_iter().map(|s| Arc::from(s.as_ref())).collect(),
        });
        self
    }

    /// Append an arbitrary per-tuple transform.
    pub fn map(
        mut self,
        f: impl FnMut(&Tuple) -> Result<Option<Tuple>> + Send + 'static,
    ) -> PointStage {
        self.ops.push(PointOp::Map(Box::new(f)));
        self
    }

    /// Number of tuples dropped so far (early-elimination accounting; the
    /// paper notes Point "eliminates excess radio communication" when
    /// pushed to the device).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn apply(&mut self, t: &Tuple) -> Result<Option<Tuple>> {
        let mut current = t.clone();
        for op in &mut self.ops {
            match op {
                PointOp::RangeFilter { field, min, max } => {
                    let Some(x) = current.get(field).and_then(Value::as_f64) else {
                        return Ok(None);
                    };
                    if min.is_some_and(|m| x < m) || max.is_some_and(|m| x > m) {
                        return Ok(None);
                    }
                }
                PointOp::ExpectedValues { field, allowed } => {
                    let keep = match current.get(field) {
                        Some(Value::Str(s)) => allowed.contains(s),
                        _ => false,
                    };
                    if !keep {
                        return Ok(None);
                    }
                }
                PointOp::Map(f) => match f(&current)? {
                    Some(next) => current = next,
                    None => return Ok(None),
                },
            }
        }
        Ok(Some(current))
    }
}

impl Stage for PointStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, _epoch: Ts, input: Vec<Tuple>) -> Result<Batch> {
        let mut out = Batch::with_capacity(input.len());
        for t in &input {
            match self.apply(t)? {
                Some(mapped) => out.push(mapped),
                None => self.dropped += 1,
            }
        }
        Ok(out)
    }

    // Point filters tuples one at a time; the only thing that crosses an
    // epoch boundary is the dropped-readings counter, preserved so
    // recovery does not reset the stage's statistics.
    fn state(&self) -> Result<Option<StageState>> {
        let mut out = Vec::new();
        snap::put_u64(&mut out, self.dropped);
        Ok(Some(StageState(out)))
    }

    fn restore(&mut self, s: &StageState) -> Result<()> {
        let mut cur = snap::Cursor::new(s.bytes());
        self.dropped = cur.u64()?;
        cur.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_types::{well_known, TupleBuilder};

    fn temp(ts: Ts, id: i64, celsius: f64) -> Tuple {
        TupleBuilder::new(&well_known::temp_schema(), ts)
            .set("receptor_id", id)
            .unwrap()
            .set("temp", celsius)
            .unwrap()
            .build()
            .unwrap()
    }

    fn rfid(ts: Ts, tag: &str) -> Tuple {
        TupleBuilder::new(&well_known::rfid_schema(), ts)
            .set("receptor_id", 0i64)
            .unwrap()
            .set("tag_id", tag)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn query_4_range_filter() {
        // The paper's Query 4: filter fail-dirty readings above 50 °C.
        let mut stage = PointStage::new("point").range_filter("temp", None, Some(50.0));
        let out = stage
            .process(
                Ts::ZERO,
                vec![
                    temp(Ts::ZERO, 1, 22.5),
                    temp(Ts::ZERO, 2, 104.0),
                    temp(Ts::ZERO, 3, 50.0),
                ],
            )
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(stage.dropped(), 1);
    }

    #[test]
    fn range_filter_drops_null_and_non_numeric() {
        let mut stage = PointStage::new("point").range_filter("temp", Some(0.0), None);
        let schema = well_known::temp_schema();
        let null_temp = TupleBuilder::new(&schema, Ts::ZERO)
            .set("receptor_id", 1i64)
            .unwrap()
            .build()
            .unwrap();
        let out = stage.process(Ts::ZERO, vec![null_temp]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn expected_tags_filter() {
        // Digital home §6.1: antenna 1 occasionally reads an errant tag.
        let mut stage = PointStage::new("point").expected_values("tag_id", ["badge-1", "badge-2"]);
        let out = stage
            .process(
                Ts::ZERO,
                vec![rfid(Ts::ZERO, "badge-1"), rfid(Ts::ZERO, "errant-99")],
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("tag_id"), Some(&Value::str("badge-1")));
    }

    #[test]
    fn ops_chain_in_order() {
        let mut stage = PointStage::new("point")
            .range_filter("temp", None, Some(50.0))
            .map(|t| {
                // Fahrenheit conversion as a field transform.
                let c = t.get("temp").and_then(Value::as_f64).unwrap();
                let schema = t.schema().clone();
                Ok(Some(Tuple::new_unchecked(
                    schema,
                    t.ts(),
                    vec![t.value(0).clone(), Value::Float(c * 9.0 / 5.0 + 32.0)],
                )))
            });
        let out = stage
            .process(Ts::ZERO, vec![temp(Ts::ZERO, 1, 20.0)])
            .unwrap();
        assert_eq!(out[0].get("temp"), Some(&Value::Float(68.0)));
    }

    #[test]
    fn empty_stage_is_passthrough() {
        let mut stage = PointStage::new("noop");
        let input = vec![temp(Ts::ZERO, 1, 1.0)];
        let out = stage.process(Ts::ZERO, input.clone()).unwrap();
        assert_eq!(out, input);
    }
}
