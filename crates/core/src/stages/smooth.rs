//! Stage 2 — **Smooth**: aggregation within the temporal granule.
//!
//! Smooth interpolates for missed readings and removes errant single
//! readings by processing a sliding window the size of the temporal granule
//! over one receptor stream (paper §3.2, Query 2). Three built-in modes
//! cover the paper's deployments:
//!
//! * [`SmoothStage::count_by_key`] — RFID: count sightings of each key
//!   (tag) within the window; a tag missed for a few polls is still
//!   reported while any sighting remains in the window.
//! * [`SmoothStage::windowed_mean`] — motes: sliding-window average of a
//!   scalar per key; lost samples are masked while the window holds data
//!   (§5.2.1), including with an *expanded* window.
//! * [`SmoothStage::event_presence`] — X10: report an `"ON"` event if at
//!   least `min_events` arrived within the window (§6.1).

use std::collections::HashMap;
use std::sync::Arc;

use esp_stream::stats::RunningStats;
use esp_stream::{StageState, WindowBuffer};
use esp_types::{
    snap, Batch, DataType, EspError, Field, Result, Schema, Ts, Tuple, Value, ValueKey,
};

use crate::granule::TemporalGranule;
use crate::stage::Stage;

enum SmoothMode {
    CountByKey {
        key_fields: Vec<String>,
    },
    WindowedMean {
        key_fields: Vec<String>,
        value_field: String,
    },
    EventPresence {
        key_fields: Vec<String>,
        value_field: String,
        on_value: Value,
        min_events: usize,
    },
    Ewma {
        key_fields: Vec<String>,
        value_field: String,
        alpha: f64,
        /// Per-key state: (key values, estimate, last update time).
        state: HashMap<Vec<ValueKey>, (Vec<Value>, f64, Ts)>,
        order: Vec<Vec<ValueKey>>,
    },
}

/// The built-in Smooth stage.
pub struct SmoothStage {
    name: String,
    granule: TemporalGranule,
    window: WindowBuffer,
    mode: SmoothMode,
    out_schema: Option<Arc<Schema>>,
}

impl SmoothStage {
    /// RFID-style smoothing (paper Query 2): emit `(key…, count)` for each
    /// distinct key combination in the window.
    pub fn count_by_key<S: Into<String>>(
        name: impl Into<String>,
        granule: impl Into<TemporalGranule>,
        key_fields: impl IntoIterator<Item = S>,
    ) -> SmoothStage {
        let granule = granule.into();
        SmoothStage {
            name: name.into(),
            window: WindowBuffer::new(granule.window()),
            granule,
            mode: SmoothMode::CountByKey {
                key_fields: key_fields.into_iter().map(Into::into).collect(),
            },
            out_schema: None,
        }
    }

    /// Mote-style smoothing (paper §5.2.1): emit `(key…, value)` with the
    /// windowed mean of `value_field` per key combination.
    pub fn windowed_mean<S: Into<String>>(
        name: impl Into<String>,
        granule: impl Into<TemporalGranule>,
        key_fields: impl IntoIterator<Item = S>,
        value_field: impl Into<String>,
    ) -> SmoothStage {
        let granule = granule.into();
        SmoothStage {
            name: name.into(),
            window: WindowBuffer::new(granule.window()),
            granule,
            mode: SmoothMode::WindowedMean {
                key_fields: key_fields.into_iter().map(Into::into).collect(),
                value_field: value_field.into(),
            },
            out_schema: None,
        }
    }

    /// X10-style smoothing (paper §6.1): emit one `(key…, value)` tuple
    /// when at least `min_events` tuples whose `value_field` equals
    /// `on_value` arrived within the window. Key fields (e.g.
    /// `spatial_granule`, `receptor_id`) are copied from the most recent
    /// matching event so downstream Merge voting can count devices.
    pub fn event_presence<S: Into<String>>(
        name: impl Into<String>,
        granule: impl Into<TemporalGranule>,
        key_fields: impl IntoIterator<Item = S>,
        value_field: impl Into<String>,
        on_value: impl Into<Value>,
        min_events: usize,
    ) -> SmoothStage {
        let granule = granule.into();
        SmoothStage {
            name: name.into(),
            window: WindowBuffer::new(granule.window()),
            granule,
            mode: SmoothMode::EventPresence {
                key_fields: key_fields.into_iter().map(Into::into).collect(),
                value_field: value_field.into(),
                on_value: on_value.into(),
                min_events,
            },
            out_schema: None,
        }
    }

    /// Exponentially-weighted moving average smoothing — an alternative to
    /// the plain windowed mean from the anticipated "suite of ESP
    /// Operators" (paper §7). Reacts faster to level shifts than a
    /// rectangular window of equal memory; a key's estimate expires when
    /// no sample has arrived within the granule window.
    pub fn ewma<S: Into<String>>(
        name: impl Into<String>,
        granule: impl Into<TemporalGranule>,
        key_fields: impl IntoIterator<Item = S>,
        value_field: impl Into<String>,
        alpha: f64,
    ) -> Result<SmoothStage> {
        if !(0.0..=1.0).contains(&alpha) {
            return Err(EspError::Config(format!(
                "EWMA alpha {alpha} must be in [0, 1]"
            )));
        }
        let granule = granule.into();
        Ok(SmoothStage {
            name: name.into(),
            window: WindowBuffer::new(granule.window()),
            granule,
            mode: SmoothMode::Ewma {
                key_fields: key_fields.into_iter().map(Into::into).collect(),
                value_field: value_field.into(),
                alpha,
                state: HashMap::new(),
                order: Vec::new(),
            },
            out_schema: None,
        })
    }

    /// The configured temporal granule (with any window expansion).
    pub fn granule(&self) -> TemporalGranule {
        self.granule
    }

    fn key_of(key_fields: &[String], t: &Tuple) -> Result<Vec<ValueKey>> {
        key_fields
            .iter()
            .map(|f| Ok(t.require(f)?.group_key()))
            .collect()
    }

    fn output_schema(
        &mut self,
        sample: &Tuple,
        key_fields: &[String],
        value_name: &str,
        value_type: DataType,
    ) -> Result<Arc<Schema>> {
        if let Some(s) = &self.out_schema {
            return Ok(Arc::clone(s));
        }
        let mut fields = Vec::with_capacity(key_fields.len() + 1);
        for k in key_fields {
            let f = sample
                .schema()
                .field(k)
                .ok_or_else(|| EspError::UnknownField(format!("smooth key field '{k}'")))?;
            fields.push(f.clone());
        }
        fields.push(Field::new(value_name, value_type));
        let schema = Schema::new(fields)?;
        self.out_schema = Some(Arc::clone(&schema));
        Ok(schema)
    }
}

impl Stage for SmoothStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, epoch: Ts, input: Vec<Tuple>) -> Result<Batch> {
        if matches!(self.mode, SmoothMode::Ewma { .. }) {
            return self.process_ewma(epoch, input);
        }
        for t in input {
            // Restamp at the epoch so window eviction tracks arrival time.
            let t = if t.ts() == epoch {
                t
            } else {
                t.restamped(epoch)
            };
            self.window.push(t);
        }
        self.window.advance_to(epoch);
        if self.window.is_empty() {
            return Ok(Batch::new());
        }
        // Borrow-friendly: temporarily take the mode.
        match &self.mode {
            SmoothMode::Ewma { .. } => unreachable!("handled by process_ewma above"),
            SmoothMode::CountByKey { key_fields } => {
                let key_fields = key_fields.clone();
                let mut counts: HashMap<Vec<ValueKey>, (Vec<Value>, i64)> = HashMap::new();
                let mut order: Vec<Vec<ValueKey>> = Vec::new();
                for t in self.window.to_vec() {
                    let key = Self::key_of(&key_fields, &t)?;
                    match counts.get_mut(&key) {
                        Some((_, n)) => *n += 1,
                        None => {
                            let vals = key_fields
                                .iter()
                                .map(|f| t.require(f).cloned())
                                .collect::<Result<Vec<_>>>()?;
                            counts.insert(key.clone(), (vals, 1));
                            order.push(key);
                        }
                    }
                }
                let Some(sample) = self.window.contents().next().cloned() else {
                    return Ok(Batch::new());
                };
                let schema = self.output_schema(&sample, &key_fields, "count", DataType::Int)?;
                order
                    .into_iter()
                    .map(|k| {
                        let (mut vals, n) = counts.remove(&k).ok_or_else(|| {
                            EspError::Stage("smooth: key missing from count map".into())
                        })?;
                        vals.push(Value::Int(n));
                        Ok(Tuple::new_unchecked(Arc::clone(&schema), epoch, vals))
                    })
                    .collect()
            }
            SmoothMode::WindowedMean {
                key_fields,
                value_field,
            } => {
                let (key_fields, value_field) = (key_fields.clone(), value_field.clone());
                let mut stats: HashMap<Vec<ValueKey>, (Vec<Value>, RunningStats)> = HashMap::new();
                let mut order: Vec<Vec<ValueKey>> = Vec::new();
                for t in self.window.to_vec() {
                    let Some(x) = t.get(&value_field).and_then(Value::as_f64) else {
                        continue; // NULL / non-numeric samples are skipped.
                    };
                    let key = Self::key_of(&key_fields, &t)?;
                    match stats.get_mut(&key) {
                        Some((_, s)) => s.push(x),
                        None => {
                            let vals = key_fields
                                .iter()
                                .map(|f| t.require(f).cloned())
                                .collect::<Result<Vec<_>>>()?;
                            let mut s = RunningStats::new();
                            s.push(x);
                            stats.insert(key.clone(), (vals, s));
                            order.push(key);
                        }
                    }
                }
                if order.is_empty() {
                    return Ok(Batch::new());
                }
                let Some(sample) = self.window.contents().next().cloned() else {
                    return Ok(Batch::new());
                };
                let schema =
                    self.output_schema(&sample, &key_fields, &value_field, DataType::Float)?;
                order
                    .into_iter()
                    .map(|k| {
                        let (mut vals, s) = stats.remove(&k).ok_or_else(|| {
                            EspError::Stage("smooth: key missing from stats map".into())
                        })?;
                        let mean = s
                            .mean()
                            .ok_or_else(|| EspError::Stage("smooth: empty stats bucket".into()))?;
                        vals.push(Value::Float(mean));
                        Ok(Tuple::new_unchecked(Arc::clone(&schema), epoch, vals))
                    })
                    .collect()
            }
            SmoothMode::EventPresence {
                key_fields,
                value_field,
                on_value,
                min_events,
            } => {
                let matching: Vec<&Tuple> = self
                    .window
                    .contents()
                    .filter(|t| t.get(value_field).is_some_and(|v| v.sql_eq(on_value)))
                    .collect();
                if matching.len() < *min_events {
                    return Ok(Batch::new());
                }
                // `min_events` may be 0 with an empty window: no event.
                let Some(last) = matching.last().map(|t| (*t).clone()) else {
                    return Ok(Batch::new());
                };
                let (key_fields, value_field, on) =
                    (key_fields.clone(), value_field.clone(), on_value.clone());
                let schema = self.output_schema(&last, &key_fields, &value_field, DataType::Any)?;
                let mut vals = key_fields
                    .iter()
                    .map(|f| last.require(f).cloned())
                    .collect::<Result<Vec<_>>>()?;
                vals.push(on);
                Ok(vec![Tuple::new_unchecked(schema, epoch, vals)])
            }
        }
    }

    fn state(&self) -> Result<Option<StageState>> {
        let mut out = Vec::new();
        self.window.encode_into(&mut out);
        match &self.out_schema {
            Some(s) => {
                snap::put_u8(&mut out, 1);
                snap::encode_schema(&mut out, s);
            }
            None => snap::put_u8(&mut out, 0),
        }
        match &self.mode {
            SmoothMode::Ewma { state, order, .. } => {
                snap::put_u8(&mut out, 1);
                snap::put_u32(&mut out, order.len() as u32);
                for key in order {
                    let (vals, est, last) = state.get(key).ok_or_else(|| {
                        EspError::Snapshot("EWMA order/state maps out of sync".into())
                    })?;
                    snap::put_u16(&mut out, vals.len() as u16);
                    for v in vals {
                        snap::encode_value(&mut out, v);
                    }
                    snap::put_f64(&mut out, *est);
                    snap::put_u64(&mut out, last.as_millis());
                }
            }
            // The other modes recompute everything from the window.
            _ => snap::put_u8(&mut out, 0),
        }
        Ok(Some(StageState(out)))
    }

    fn restore(&mut self, s: &StageState) -> Result<()> {
        let mut cur = snap::Cursor::new(s.bytes());
        self.window.restore_from(&mut cur)?;
        self.out_schema = match cur.u8()? {
            0 => None,
            _ => Some(snap::decode_schema(&mut cur)?),
        };
        let has_ewma = cur.u8()? == 1;
        match (&mut self.mode, has_ewma) {
            (SmoothMode::Ewma { state, order, .. }, true) => {
                state.clear();
                order.clear();
                let n = cur.u32()? as usize;
                for _ in 0..n {
                    let n_vals = cur.u16()? as usize;
                    let mut vals = Vec::with_capacity(n_vals);
                    for _ in 0..n_vals {
                        vals.push(snap::decode_value(&mut cur)?);
                    }
                    let est = cur.f64()?;
                    let last = Ts::from_millis(cur.u64()?);
                    let key: Vec<ValueKey> = vals.iter().map(Value::group_key).collect();
                    state.insert(key.clone(), (vals, est, last));
                    order.push(key);
                }
            }
            (SmoothMode::Ewma { .. }, false) | (_, true) => {
                return Err(EspError::Snapshot(format!(
                    "smooth stage '{}' snapshot was taken under a different mode",
                    self.name
                )))
            }
            (_, false) => {}
        }
        cur.finish()
    }
}

impl SmoothStage {
    fn process_ewma(&mut self, epoch: Ts, input: Vec<Tuple>) -> Result<Batch> {
        let expiry = self.granule.window();
        // Output schema from the first tuple ever seen.
        if self.out_schema.is_none() {
            if let Some(sample) = input.first() {
                let (key_fields, value_field) = match &self.mode {
                    SmoothMode::Ewma {
                        key_fields,
                        value_field,
                        ..
                    } => (key_fields.clone(), value_field.clone()),
                    _ => unreachable!("process_ewma only for Ewma mode"),
                };
                let sample = sample.clone();
                self.output_schema(&sample, &key_fields, &value_field, DataType::Float)?;
            }
        }
        let SmoothMode::Ewma {
            key_fields,
            value_field,
            alpha,
            state,
            order,
        } = &mut self.mode
        else {
            unreachable!("process_ewma only for Ewma mode")
        };
        for t in &input {
            let Some(x) = t.get(value_field).and_then(Value::as_f64) else {
                continue;
            };
            let key: Vec<ValueKey> = key_fields
                .iter()
                .map(|f| Ok(t.require(f)?.group_key()))
                .collect::<Result<_>>()?;
            match state.get_mut(&key) {
                Some((_, est, last)) => {
                    *est = *alpha * x + (1.0 - *alpha) * *est;
                    *last = epoch;
                }
                None => {
                    let vals = key_fields
                        .iter()
                        .map(|f| t.require(f).cloned())
                        .collect::<Result<Vec<_>>>()?;
                    state.insert(key.clone(), (vals, x, epoch));
                    order.push(key);
                }
            }
        }
        // Expire stale keys and emit current estimates.
        let cutoff = epoch.window_start(expiry);
        order.retain(|k| match state.get(k) {
            Some((_, _, last)) => {
                if *last < cutoff {
                    state.remove(k);
                    false
                } else {
                    true
                }
            }
            None => false,
        });
        let Some(schema) = self.out_schema.clone() else {
            return Ok(Batch::new());
        };
        let SmoothMode::Ewma { state, order, .. } = &self.mode else {
            unreachable!()
        };
        Ok(order
            .iter()
            .map(|k| {
                let (vals, est, _) = &state[k];
                let mut out = vals.clone();
                out.push(Value::Float(*est));
                Tuple::new_unchecked(Arc::clone(&schema), epoch, out)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_types::{well_known, TimeDelta, TupleBuilder};

    fn rfid(ts: Ts, tag: &str) -> Tuple {
        TupleBuilder::new(&well_known::rfid_schema(), ts)
            .set("receptor_id", 0i64)
            .unwrap()
            .set("tag_id", tag)
            .unwrap()
            .build()
            .unwrap()
    }

    fn temp(ts: Ts, id: i64, celsius: f64) -> Tuple {
        TupleBuilder::new(&well_known::temp_schema(), ts)
            .set("receptor_id", id)
            .unwrap()
            .set("temp", celsius)
            .unwrap()
            .build()
            .unwrap()
    }

    fn motion(ts: Ts, v: &str) -> Tuple {
        TupleBuilder::new(&well_known::motion_schema(), ts)
            .set("receptor_id", 0i64)
            .unwrap()
            .set("value", v)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn count_by_key_interpolates_missed_readings() {
        let mut s = SmoothStage::count_by_key("smooth", TimeDelta::from_secs(5), ["tag_id"]);
        // Tag seen at t=0, then dropped for 4 seconds: still reported.
        let out = s.process(Ts::ZERO, vec![rfid(Ts::ZERO, "a")]).unwrap();
        assert_eq!(out.len(), 1);
        for sec in 1..=4u64 {
            let out = s.process(Ts::from_secs(sec), vec![]).unwrap();
            assert_eq!(out.len(), 1, "tag still in granule at {sec}s");
            assert_eq!(out[0].get("count"), Some(&Value::Int(1)));
        }
        assert!(s.process(Ts::from_secs(6), vec![]).unwrap().is_empty());
    }

    #[test]
    fn count_by_key_counts_per_tag() {
        let mut s = SmoothStage::count_by_key("smooth", TimeDelta::from_secs(5), ["tag_id"]);
        let out = s
            .process(
                Ts::ZERO,
                vec![
                    rfid(Ts::ZERO, "a"),
                    rfid(Ts::ZERO, "a"),
                    rfid(Ts::ZERO, "b"),
                ],
            )
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("count"), Some(&Value::Int(2)));
        assert_eq!(out[1].get("count"), Some(&Value::Int(1)));
        assert_eq!(out[0].ts(), Ts::ZERO);
    }

    #[test]
    fn windowed_mean_masks_lost_samples() {
        let g = TemporalGranule::with_window(TimeDelta::from_mins(5), TimeDelta::from_mins(30))
            .unwrap();
        let mut s = SmoothStage::windowed_mean("smooth", g, ["receptor_id"], "temp");
        let mut t = Ts::ZERO;
        // One sample, then five empty epochs: the mean persists.
        assert_eq!(s.process(t, vec![temp(t, 7, 20.0)]).unwrap().len(), 1);
        for _ in 0..5 {
            t += TimeDelta::from_mins(5);
            let out = s.process(t, vec![]).unwrap();
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].get("temp"), Some(&Value::Float(20.0)));
        }
        // After the 30-minute window fully passes (the lower bound is
        // inclusive, so the sample survives at exactly t=30min), output
        // ceases.
        t += TimeDelta::from_mins(5);
        assert_eq!(s.process(t, vec![]).unwrap().len(), 1);
        t += TimeDelta::from_mins(5);
        assert!(s.process(t, vec![]).unwrap().is_empty());
    }

    #[test]
    fn windowed_mean_averages_within_window() {
        let mut s =
            SmoothStage::windowed_mean("smooth", TimeDelta::from_secs(10), ["receptor_id"], "temp");
        s.process(Ts::ZERO, vec![temp(Ts::ZERO, 1, 10.0)]).unwrap();
        let out = s
            .process(Ts::from_secs(1), vec![temp(Ts::from_secs(1), 1, 20.0)])
            .unwrap();
        assert_eq!(out[0].get("temp"), Some(&Value::Float(15.0)));
    }

    #[test]
    fn windowed_mean_separates_keys() {
        let mut s =
            SmoothStage::windowed_mean("smooth", TimeDelta::from_secs(10), ["receptor_id"], "temp");
        let out = s
            .process(
                Ts::ZERO,
                vec![temp(Ts::ZERO, 1, 10.0), temp(Ts::ZERO, 2, 30.0)],
            )
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("temp"), Some(&Value::Float(10.0)));
        assert_eq!(out[1].get("temp"), Some(&Value::Float(30.0)));
    }

    #[test]
    fn windowed_mean_skips_null_values() {
        let mut s =
            SmoothStage::windowed_mean("smooth", TimeDelta::from_secs(10), ["receptor_id"], "temp");
        let null_temp = TupleBuilder::new(&well_known::temp_schema(), Ts::ZERO)
            .set("receptor_id", 1i64)
            .unwrap()
            .build()
            .unwrap();
        assert!(s.process(Ts::ZERO, vec![null_temp]).unwrap().is_empty());
    }

    #[test]
    fn event_presence_thresholds() {
        let mut s = SmoothStage::event_presence(
            "smooth",
            TimeDelta::from_secs(10),
            ["receptor_id"],
            "value",
            "ON",
            2,
        );
        assert!(s
            .process(Ts::ZERO, vec![motion(Ts::ZERO, "ON")])
            .unwrap()
            .is_empty());
        let out = s
            .process(Ts::from_secs(1), vec![motion(Ts::from_secs(1), "ON")])
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("value"), Some(&Value::str("ON")));
        assert_eq!(out[0].get("receptor_id"), Some(&Value::Int(0)));
    }

    #[test]
    fn ewma_converges_and_expires() {
        let mut s = SmoothStage::ewma(
            "smooth",
            TimeDelta::from_secs(10),
            ["receptor_id"],
            "temp",
            0.5,
        )
        .unwrap();
        // First sample sets the estimate.
        let out = s.process(Ts::ZERO, vec![temp(Ts::ZERO, 1, 10.0)]).unwrap();
        assert_eq!(out[0].get("temp"), Some(&Value::Float(10.0)));
        // Step toward a new level: 0.5*20 + 0.5*10 = 15.
        let out = s
            .process(Ts::from_secs(1), vec![temp(Ts::from_secs(1), 1, 20.0)])
            .unwrap();
        assert_eq!(out[0].get("temp"), Some(&Value::Float(15.0)));
        // No input: estimate persists inside the granule window.
        let out = s.process(Ts::from_secs(5), vec![]).unwrap();
        assert_eq!(out[0].get("temp"), Some(&Value::Float(15.0)));
        // Expires after the granule window with no new samples.
        let out = s.process(Ts::from_secs(30), vec![]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn ewma_tracks_level_shift_faster_than_windowed_mean() {
        let g = TimeDelta::from_secs(60);
        let mut ewma = SmoothStage::ewma("e", g, ["receptor_id"], "temp", 0.5).unwrap();
        let mut mean = SmoothStage::windowed_mean("m", g, ["receptor_id"], "temp");
        // 30 samples at 10 °C, then a step to 30 °C.
        let mut t = Ts::ZERO;
        for _ in 0..30 {
            ewma.process(t, vec![temp(t, 1, 10.0)]).unwrap();
            mean.process(t, vec![temp(t, 1, 10.0)]).unwrap();
            t += TimeDelta::from_secs(1);
        }
        for _ in 0..3 {
            let e = ewma.process(t, vec![temp(t, 1, 30.0)]).unwrap();
            let m = mean.process(t, vec![temp(t, 1, 30.0)]).unwrap();
            let ev = e[0].get("temp").unwrap().as_f64().unwrap();
            let mv = m[0].get("temp").unwrap().as_f64().unwrap();
            assert!(ev > mv, "EWMA {ev} should lead windowed mean {mv}");
            t += TimeDelta::from_secs(1);
        }
    }

    #[test]
    fn ewma_rejects_bad_alpha() {
        assert!(SmoothStage::ewma("e", TimeDelta::from_secs(1), ["k"], "v", 1.5).is_err());
        assert!(SmoothStage::ewma("e", TimeDelta::from_secs(1), ["k"], "v", -0.1).is_err());
    }

    #[test]
    fn unknown_key_field_errors() {
        let mut s = SmoothStage::count_by_key("smooth", TimeDelta::from_secs(5), ["bogus"]);
        assert!(s.process(Ts::ZERO, vec![rfid(Ts::ZERO, "a")]).is_err());
    }

    /// The recovery invariant, stage-local: checkpoint mid-window,
    /// restore into a fresh stage, and the continued runs must emit
    /// identical output at every subsequent epoch.
    #[test]
    fn checkpoint_round_trip_continues_identically() {
        let run = |restore_at: Option<u64>| -> Vec<String> {
            let mut s = SmoothStage::count_by_key("smooth", TimeDelta::from_secs(5), ["tag_id"]);
            let mut out = Vec::new();
            for sec in 0..10u64 {
                if restore_at == Some(sec) {
                    let blob = s.state().unwrap().unwrap();
                    let mut fresh =
                        SmoothStage::count_by_key("smooth", TimeDelta::from_secs(5), ["tag_id"]);
                    fresh.restore(&blob).unwrap();
                    s = fresh;
                }
                let epoch = Ts::from_secs(sec);
                let input = if sec % 3 == 0 {
                    vec![rfid(epoch, "a"), rfid(epoch, "b")]
                } else {
                    vec![rfid(epoch, "a")]
                };
                for t in s.process(epoch, input).unwrap() {
                    out.push(format!("{:?} {:?}", t.ts(), t.values()));
                }
            }
            out
        };
        let uninterrupted = run(None);
        for at in [1, 4, 7] {
            assert_eq!(run(Some(at)), uninterrupted, "restore at epoch {at}");
        }
    }

    #[test]
    fn ewma_checkpoint_preserves_estimates_and_schema() {
        let g = TemporalGranule::from(TimeDelta::from_secs(30));
        let mut s = SmoothStage::ewma("e", g, ["receptor_id"], "temp", 0.5).unwrap();
        let mut t = Ts::ZERO;
        for _ in 0..5 {
            s.process(t, vec![temp(t, 1, 20.0)]).unwrap();
            t += TimeDelta::from_secs(1);
        }
        let blob = Stage::state(&s).unwrap().unwrap();
        let mut r = SmoothStage::ewma("e", g, ["receptor_id"], "temp", 0.5).unwrap();
        r.restore(&blob).unwrap();
        // Next epoch has no input: output comes purely from restored
        // estimate + restored schema.
        let a = s.process(t, vec![]).unwrap();
        let b = r.process(t, vec![]).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].values(), b[0].values());
    }

    #[test]
    fn checkpoint_mode_mismatch_is_rejected() {
        let s = SmoothStage::count_by_key("s", TimeDelta::from_secs(5), ["tag_id"]);
        let blob = s.state().unwrap().unwrap();
        let mut e =
            SmoothStage::ewma("s", TimeDelta::from_secs(5), ["tag_id"], "temp", 0.5).unwrap();
        assert!(e.restore(&blob).is_err());
    }
}
