//! Built-in implementations of the five ESP stages.
//!
//! These form the "suite of ESP Operators" the paper's conclusion
//! anticipates: reusable, configurable stage implementations that can be
//! composed into cleaning pipelines without writing new code. Every one of
//! them can be replaced by a [`DeclarativeStage`](crate::DeclarativeStage)
//! built from a CQL query — the test suite checks built-in and declarative
//! versions agree — but the built-ins are cheaper and easier to configure.

pub mod arbitrate;
pub mod merge;
pub mod model;
pub mod point;
pub mod smooth;
pub mod virtualize;
