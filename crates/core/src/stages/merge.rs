//! Stage 3 — **Merge**: aggregation within the spatial granule.
//!
//! Merge aggregates over the receptor streams of one proximity group,
//! filling in missed readings and eliminating non-correlated errors in
//! individual devices (paper §3.2). Built-in modes:
//!
//! * [`MergeStage::outlier_filtered_mean`] — the paper's Query 5: average
//!   the group's readings within a window, discarding readings more than
//!   `k` standard deviations from the group mean (fail-dirty motes).
//! * [`MergeStage::union_all`] — union the group members' streams (the
//!   digital-home RFID merge, §6.1), optionally deduplicating per key.
//! * [`MergeStage::vote_threshold`] — report an event when at least
//!   `m` of the group's devices report it in the window (X10, §6.1).

use std::collections::HashSet;
use std::sync::Arc;

use esp_stream::stats::RunningStats;
use esp_stream::{StageState, WindowBuffer};
use esp_types::{
    snap, Batch, DataType, Field, Result, Schema, SpatialGranule, Ts, Tuple, Value, ValueKey,
};

use crate::granule::TemporalGranule;
use crate::stage::Stage;

enum MergeMode {
    OutlierFilteredMean {
        value_field: String,
        k: f64,
    },
    UnionAll {
        dedup_key: Option<String>,
    },
    VoteThreshold {
        value_field: String,
        on_value: Value,
        device_field: String,
        min_devices: usize,
    },
    WindowedMedian {
        value_field: String,
    },
}

/// The built-in Merge stage for one proximity group.
pub struct MergeStage {
    name: String,
    granule: SpatialGranule,
    window: WindowBuffer,
    mode: MergeMode,
    out_schema: Option<Arc<Schema>>,
    /// Readings rejected by the outlier test so far.
    outliers_dropped: u64,
}

impl MergeStage {
    /// The paper's Query 5: windowed group mean with mean±k·stdev outlier
    /// rejection. Emits one `(spatial_granule, value)` tuple per epoch
    /// while the window holds data.
    pub fn outlier_filtered_mean(
        name: impl Into<String>,
        granule: SpatialGranule,
        temporal: impl Into<TemporalGranule>,
        value_field: impl Into<String>,
        k: f64,
    ) -> MergeStage {
        MergeStage {
            name: name.into(),
            granule,
            window: WindowBuffer::new(temporal.into().window()),
            mode: MergeMode::OutlierFilteredMean {
                value_field: value_field.into(),
                k,
            },
            out_schema: None,
            outliers_dropped: 0,
        }
    }

    /// Union the group's streams; with `dedup_key = Some(field)` at most
    /// one tuple per distinct key value is emitted per epoch.
    pub fn union_all(
        name: impl Into<String>,
        granule: SpatialGranule,
        dedup_key: Option<String>,
    ) -> MergeStage {
        MergeStage {
            name: name.into(),
            granule,
            window: WindowBuffer::new(esp_types::TimeDelta::ZERO),
            mode: MergeMode::UnionAll { dedup_key },
            out_schema: None,
            outliers_dropped: 0,
        }
    }

    /// m-of-n device voting: emit one `(spatial_granule, value)` tuple when
    /// at least `min_devices` distinct devices (by `device_field`) reported
    /// `on_value` in `value_field` within the window.
    pub fn vote_threshold(
        name: impl Into<String>,
        granule: SpatialGranule,
        temporal: impl Into<TemporalGranule>,
        value_field: impl Into<String>,
        on_value: impl Into<Value>,
        device_field: impl Into<String>,
        min_devices: usize,
    ) -> MergeStage {
        MergeStage {
            name: name.into(),
            granule,
            window: WindowBuffer::new(temporal.into().window()),
            mode: MergeMode::VoteThreshold {
                value_field: value_field.into(),
                on_value: on_value.into(),
                device_field: device_field.into(),
                min_devices,
            },
            out_schema: None,
            outliers_dropped: 0,
        }
    }

    /// Windowed median over the group's readings — a robust alternative to
    /// the mean±k·σ filter from the anticipated "suite of ESP Operators"
    /// (paper §7): a single fail-dirty device can never move the median of
    /// three or more devices, with no threshold to tune.
    pub fn windowed_median(
        name: impl Into<String>,
        granule: SpatialGranule,
        temporal: impl Into<TemporalGranule>,
        value_field: impl Into<String>,
    ) -> MergeStage {
        MergeStage {
            name: name.into(),
            granule,
            window: WindowBuffer::new(temporal.into().window()),
            mode: MergeMode::WindowedMedian {
                value_field: value_field.into(),
            },
            out_schema: None,
            outliers_dropped: 0,
        }
    }

    /// Readings rejected by the outlier test so far.
    pub fn outliers_dropped(&self) -> u64 {
        self.outliers_dropped
    }

    fn granule_value(&self) -> Value {
        Value::Str(Arc::clone(&self.granule.0))
    }

    fn scalar_schema(&mut self, value_field: &str) -> Result<Arc<Schema>> {
        if let Some(s) = &self.out_schema {
            return Ok(Arc::clone(s));
        }
        let s = Schema::new(vec![
            Field::new(esp_types::well_known::SPATIAL_GRANULE, DataType::Str),
            Field::new(value_field, DataType::Float),
        ])?;
        self.out_schema = Some(Arc::clone(&s));
        Ok(s)
    }

    fn event_schema(&mut self, value_field: &str) -> Result<Arc<Schema>> {
        if let Some(s) = &self.out_schema {
            return Ok(Arc::clone(s));
        }
        let s = Schema::new(vec![
            Field::new(esp_types::well_known::SPATIAL_GRANULE, DataType::Str),
            Field::new(value_field, DataType::Any),
        ])?;
        self.out_schema = Some(Arc::clone(&s));
        Ok(s)
    }
}

impl Stage for MergeStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, epoch: Ts, input: Vec<Tuple>) -> Result<Batch> {
        match &self.mode {
            MergeMode::UnionAll { dedup_key } => {
                let dedup_key = dedup_key.clone();
                match dedup_key {
                    None => Ok(input),
                    Some(key) => {
                        let mut seen: HashSet<ValueKey> = HashSet::new();
                        Ok(input
                            .into_iter()
                            .filter(|t| match t.get(&key) {
                                Some(v) => seen.insert(v.group_key()),
                                None => true,
                            })
                            .collect())
                    }
                }
            }
            MergeMode::OutlierFilteredMean { value_field, k } => {
                let (value_field, k) = (value_field.clone(), *k);
                for t in input {
                    let t = if t.ts() == epoch {
                        t
                    } else {
                        t.restamped(epoch)
                    };
                    self.window.push(t);
                }
                self.window.advance_to(epoch);
                // First pass: group statistics over the window.
                let mut all = RunningStats::new();
                for t in self.window.contents() {
                    if let Some(x) = t.get(&value_field).and_then(Value::as_f64) {
                        all.push(x);
                    }
                }
                let Some(mean) = all.mean() else {
                    return Ok(Batch::new());
                };
                // k = ∞ disables rejection entirely (plain windowed mean),
                // including when stdev is 0 (0·∞ would be NaN).
                let band = if k.is_infinite() {
                    f64::INFINITY
                } else {
                    all.stdev().unwrap_or(0.0) * k
                };
                // Second pass: mean over inliers only (the paper's Query 5).
                let mut inliers = RunningStats::new();
                let mut dropped = 0;
                for t in self.window.contents() {
                    if let Some(x) = t.get(&value_field).and_then(Value::as_f64) {
                        if (x - mean).abs() <= band {
                            inliers.push(x);
                        } else {
                            dropped += 1;
                        }
                    }
                }
                self.outliers_dropped += dropped;
                let Some(value) = inliers.mean() else {
                    // Every reading was an outlier: report nothing rather
                    // than a value known to be wrong.
                    return Ok(Batch::new());
                };
                let schema = self.scalar_schema(&value_field)?;
                Ok(vec![Tuple::new_unchecked(
                    schema,
                    epoch,
                    vec![self.granule_value(), Value::Float(value)],
                )])
            }
            MergeMode::WindowedMedian { value_field } => {
                let value_field = value_field.clone();
                for t in input {
                    let t = if t.ts() == epoch {
                        t
                    } else {
                        t.restamped(epoch)
                    };
                    self.window.push(t);
                }
                self.window.advance_to(epoch);
                let mut xs: Vec<f64> = self
                    .window
                    .contents()
                    .filter_map(|t| t.get(&value_field).and_then(Value::as_f64))
                    .collect();
                if xs.is_empty() {
                    return Ok(Batch::new());
                }
                xs.sort_by(f64::total_cmp);
                let median = if xs.len() % 2 == 1 {
                    xs[xs.len() / 2]
                } else {
                    (xs[xs.len() / 2 - 1] + xs[xs.len() / 2]) / 2.0
                };
                let schema = self.scalar_schema(&value_field)?;
                Ok(vec![Tuple::new_unchecked(
                    schema,
                    epoch,
                    vec![self.granule_value(), Value::Float(median)],
                )])
            }
            MergeMode::VoteThreshold {
                value_field,
                on_value,
                device_field,
                min_devices,
            } => {
                let (value_field, on_value, device_field, min_devices) = (
                    value_field.clone(),
                    on_value.clone(),
                    device_field.clone(),
                    *min_devices,
                );
                for t in input {
                    let t = if t.ts() == epoch {
                        t
                    } else {
                        t.restamped(epoch)
                    };
                    self.window.push(t);
                }
                self.window.advance_to(epoch);
                let mut devices: HashSet<ValueKey> = HashSet::new();
                for t in self.window.contents() {
                    if t.get(&value_field).is_some_and(|v| v.sql_eq(&on_value)) {
                        if let Some(d) = t.get(&device_field) {
                            devices.insert(d.group_key());
                        }
                    }
                }
                if devices.len() < min_devices {
                    return Ok(Batch::new());
                }
                let schema = self.event_schema(&value_field)?;
                Ok(vec![Tuple::new_unchecked(
                    schema,
                    epoch,
                    vec![self.granule_value(), on_value],
                )])
            }
        }
    }

    fn state(&self) -> Result<Option<StageState>> {
        let mut out = Vec::new();
        self.window.encode_into(&mut out);
        snap::put_u64(&mut out, self.outliers_dropped);
        Ok(Some(StageState(out)))
    }

    fn restore(&mut self, s: &StageState) -> Result<()> {
        let mut cur = snap::Cursor::new(s.bytes());
        self.window.restore_from(&mut cur)?;
        self.outliers_dropped = cur.u64()?;
        // `out_schema` is a pure function of the configuration; it is
        // rebuilt lazily on the next emission.
        cur.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_types::{well_known, TimeDelta, TupleBuilder};

    fn temp(ts: Ts, id: i64, celsius: f64) -> Tuple {
        TupleBuilder::new(&well_known::temp_schema(), ts)
            .set("receptor_id", id)
            .unwrap()
            .set("temp", celsius)
            .unwrap()
            .build()
            .unwrap()
    }

    fn motion(ts: Ts, id: i64, v: &str) -> Tuple {
        TupleBuilder::new(&well_known::motion_schema(), ts)
            .set("receptor_id", id)
            .unwrap()
            .set("value", v)
            .unwrap()
            .build()
            .unwrap()
    }

    fn room() -> SpatialGranule {
        SpatialGranule::new("room-42")
    }

    #[test]
    fn outlier_mote_excluded_from_mean() {
        // Three motes; one fails dirty at 104 °C. Query 5 semantics.
        let mut m = MergeStage::outlier_filtered_mean(
            "merge",
            room(),
            TimeDelta::from_mins(5),
            "temp",
            1.0,
        );
        let out = m
            .process(
                Ts::ZERO,
                vec![
                    temp(Ts::ZERO, 1, 20.0),
                    temp(Ts::ZERO, 2, 21.0),
                    temp(Ts::ZERO, 3, 104.0),
                ],
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        let v = out[0].get("temp").unwrap().as_f64().unwrap();
        assert!((v - 20.5).abs() < 1e-9, "outlier excluded, got {v}");
        assert_eq!(m.outliers_dropped(), 1);
        assert_eq!(out[0].get("spatial_granule"), Some(&Value::str("room-42")));
    }

    #[test]
    fn agreeing_motes_all_contribute() {
        let mut m = MergeStage::outlier_filtered_mean(
            "merge",
            room(),
            TimeDelta::from_mins(5),
            "temp",
            1.0,
        );
        let out = m
            .process(
                Ts::ZERO,
                vec![temp(Ts::ZERO, 1, 20.0), temp(Ts::ZERO, 2, 22.0)],
            )
            .unwrap();
        let v = out[0].get("temp").unwrap().as_f64().unwrap();
        assert!((v - 21.0).abs() < 1e-9);
        assert_eq!(m.outliers_dropped(), 0);
    }

    #[test]
    fn empty_window_emits_nothing() {
        let mut m = MergeStage::outlier_filtered_mean(
            "merge",
            room(),
            TimeDelta::from_mins(5),
            "temp",
            1.0,
        );
        assert!(m.process(Ts::ZERO, vec![]).unwrap().is_empty());
    }

    #[test]
    fn merge_masks_lost_readings_spatially() {
        // Mote 1 reports, mote 2 silent: the granule still gets a value.
        let mut m = MergeStage::outlier_filtered_mean(
            "merge",
            room(),
            TimeDelta::from_mins(5),
            "temp",
            1.0,
        );
        let out = m.process(Ts::ZERO, vec![temp(Ts::ZERO, 1, 19.0)]).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn union_all_passthrough_and_dedup() {
        let mut m = MergeStage::union_all("merge", room(), None);
        let input = vec![motion(Ts::ZERO, 1, "ON"), motion(Ts::ZERO, 1, "ON")];
        assert_eq!(m.process(Ts::ZERO, input.clone()).unwrap().len(), 2);

        let mut m = MergeStage::union_all("merge", room(), Some("receptor_id".into()));
        assert_eq!(m.process(Ts::ZERO, input).unwrap().len(), 1);
    }

    #[test]
    fn vote_threshold_requires_distinct_devices() {
        let mut m = MergeStage::vote_threshold(
            "merge",
            room(),
            TimeDelta::from_secs(10),
            "value",
            "ON",
            "receptor_id",
            2,
        );
        // Two reports from the SAME device: not enough.
        let out = m
            .process(
                Ts::ZERO,
                vec![motion(Ts::ZERO, 1, "ON"), motion(Ts::ZERO, 1, "ON")],
            )
            .unwrap();
        assert!(out.is_empty());
        // A second device inside the window tips the vote.
        let out = m
            .process(Ts::from_secs(1), vec![motion(Ts::from_secs(1), 2, "ON")])
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("value"), Some(&Value::str("ON")));
    }

    #[test]
    fn median_shrugs_off_a_fail_dirty_device() {
        let mut m = MergeStage::windowed_median("merge", room(), TimeDelta::from_mins(5), "temp");
        let out = m
            .process(
                Ts::ZERO,
                vec![
                    temp(Ts::ZERO, 1, 20.0),
                    temp(Ts::ZERO, 2, 21.0),
                    temp(Ts::ZERO, 3, 104.0),
                ],
            )
            .unwrap();
        assert_eq!(out[0].get("temp"), Some(&Value::Float(21.0)));
        assert_eq!(out[0].get("spatial_granule"), Some(&Value::str("room-42")));
    }

    #[test]
    fn median_of_even_count_averages_middle_pair() {
        let mut m = MergeStage::windowed_median("merge", room(), TimeDelta::from_mins(5), "temp");
        let out = m
            .process(
                Ts::ZERO,
                vec![temp(Ts::ZERO, 1, 10.0), temp(Ts::ZERO, 2, 20.0)],
            )
            .unwrap();
        assert_eq!(out[0].get("temp"), Some(&Value::Float(15.0)));
        // Empty window → silence.
        assert!(m.process(Ts::from_secs(600), vec![]).unwrap().is_empty());
    }

    #[test]
    fn all_readings_outliers_yields_silence() {
        // Two readings so far apart that each is outside mean±1σ… is
        // impossible for n=2 (both are exactly 1σ away), so use k<1.
        let mut m = MergeStage::outlier_filtered_mean(
            "merge",
            room(),
            TimeDelta::from_mins(5),
            "temp",
            0.5,
        );
        let out = m
            .process(
                Ts::ZERO,
                vec![temp(Ts::ZERO, 1, 0.0), temp(Ts::ZERO, 2, 100.0)],
            )
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(m.outliers_dropped(), 2);
    }
}
