//! Model-based cleaning — the paper's BBQ-style extension point.
//!
//! §6.3.1: "the Virtualize stage could also be implemented with a BBQ-like
//! system \[12\]. Such a function would build models of the receptor streams
//! to assist in cleaning the data", and §3.2 suggests exploiting
//! "correlations between different sensors (e.g., voltage and temperature)
//! to provide outlier detection".
//!
//! [`ModelStage`] learns, online and per device, a linear model
//! `target ≈ a·predictor + b` between two fields of the same stream (e.g.
//! battery voltage → temperature). Once warmed up, readings whose target
//! deviates from the model's prediction by more than `k` residual standard
//! deviations are flagged — and either dropped or *corrected* to the
//! predicted value. Because the model conditions on a physically
//! independent channel, it detects a fail-dirty sensor **from a single
//! device**, where Merge needs healthy neighbours in the proximity group.
//!
//! Outliers are excluded from model updates, so a failed sensor cannot
//! drag its own model along with it.

use std::collections::HashMap;

use esp_types::{Batch, EspError, Result, Ts, Tuple, Value, ValueKey};

use crate::stage::Stage;

/// What to do with a reading the model rejects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelAction {
    /// Drop the reading entirely.
    Drop,
    /// Replace the target field with the model's prediction and pass the
    /// reading through (BBQ-style value substitution).
    Correct,
}

/// Online simple linear regression with residual tracking
/// (Welford-style co-moment updates; numerically stable one-pass).
#[derive(Debug, Clone, Copy, Default)]
struct OnlineRegression {
    n: u64,
    mean_x: f64,
    mean_y: f64,
    /// Σ (x−x̄)(y−ȳ)
    c_xy: f64,
    /// Σ (x−x̄)²
    m2_x: f64,
    /// Residual accounting (predictions made before each accepted update).
    resid_n: u64,
    resid_m2: f64,
}

impl OnlineRegression {
    fn observe(&mut self, x: f64, y: f64) {
        self.n += 1;
        let dx = x - self.mean_x;
        self.mean_x += dx / self.n as f64;
        let dy = y - self.mean_y;
        self.mean_y += dy / self.n as f64;
        // Co-moment uses the *updated* mean_x and the pre-update dy.
        self.c_xy += dx * (y - self.mean_y);
        self.m2_x += dx * (x - self.mean_x);
    }

    fn slope(&self) -> Option<f64> {
        (self.n >= 2 && self.m2_x > 1e-12).then(|| self.c_xy / self.m2_x)
    }

    fn predict(&self, x: f64) -> Option<f64> {
        let a = self.slope()?;
        Some(self.mean_y + a * (x - self.mean_x))
    }

    fn record_residual(&mut self, e: f64) {
        self.resid_n += 1;
        self.resid_m2 += e * e;
    }

    fn residual_sd(&self) -> Option<f64> {
        (self.resid_n >= 2).then(|| (self.resid_m2 / self.resid_n as f64).sqrt())
    }
}

/// The model-based cleaning stage: one online regression per key
/// (typically per `receptor_id`).
pub struct ModelStage {
    name: String,
    predictor_field: String,
    target_field: String,
    key_field: String,
    threshold_sigmas: f64,
    min_samples: u64,
    min_residual: f64,
    action: ModelAction,
    models: HashMap<ValueKey, OnlineRegression>,
    flagged: u64,
}

impl ModelStage {
    /// Create a model stage predicting `target_field` from
    /// `predictor_field`, one model per distinct `key_field` value.
    ///
    /// * `threshold_sigmas` — flag readings more than this many residual
    ///   standard deviations from the prediction;
    /// * `min_samples` — warm-up observations before the model judges;
    /// * `min_residual` — floor on the residual σ, so near-noiseless
    ///   training data doesn't make the detector hair-triggered.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        key_field: impl Into<String>,
        predictor_field: impl Into<String>,
        target_field: impl Into<String>,
        threshold_sigmas: f64,
        min_samples: u64,
        min_residual: f64,
        action: ModelAction,
    ) -> Result<ModelStage> {
        if threshold_sigmas <= 0.0 {
            return Err(EspError::Config("model threshold must be positive".into()));
        }
        if min_samples < 2 {
            return Err(EspError::Config(
                "model warm-up needs at least 2 samples".into(),
            ));
        }
        Ok(ModelStage {
            name: name.into(),
            predictor_field: predictor_field.into(),
            target_field: target_field.into(),
            key_field: key_field.into(),
            threshold_sigmas,
            min_samples,
            min_residual,
            action,
            models: HashMap::new(),
            flagged: 0,
        })
    }

    /// Readings flagged as model-inconsistent so far.
    pub fn flagged(&self) -> u64 {
        self.flagged
    }

    /// Replace `target_field` in `t` with `value`.
    fn with_target(&self, t: &Tuple, value: f64) -> Result<Tuple> {
        let idx = t.schema().require(&self.target_field)?;
        let mut vals = t.values().to_vec();
        vals[idx] = Value::Float(value);
        Ok(Tuple::new_unchecked(t.schema().clone(), t.ts(), vals))
    }
}

impl Stage for ModelStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, _epoch: Ts, input: Vec<Tuple>) -> Result<Batch> {
        let mut out = Batch::with_capacity(input.len());
        for t in input {
            let (Some(x), Some(y)) = (
                t.get(&self.predictor_field).and_then(Value::as_f64),
                t.get(&self.target_field).and_then(Value::as_f64),
            ) else {
                // Readings without both channels pass through unjudged.
                out.push(t);
                continue;
            };
            let key = t.require(&self.key_field)?.group_key();
            let model = self.models.entry(key).or_default();
            let warmed = model.n >= self.min_samples;
            let verdict = if warmed {
                match (model.predict(x), model.residual_sd()) {
                    (Some(pred), sd) => {
                        let band = self.threshold_sigmas
                            * sd.unwrap_or(self.min_residual).max(self.min_residual);
                        Some((pred, (y - pred).abs() > band))
                    }
                    _ => None,
                }
            } else {
                None
            };
            match verdict {
                Some((pred, true)) => {
                    // Outlier: act, and do NOT feed it back into the model.
                    self.flagged += 1;
                    match self.action {
                        ModelAction::Drop => {}
                        ModelAction::Correct => out.push(self.with_target(&t, pred)?),
                    }
                }
                Some((pred, false)) => {
                    model.record_residual(y - pred);
                    model.observe(x, y);
                    out.push(t);
                }
                None => {
                    // Warm-up: learn, pass through.
                    if let Some(pred) = model.predict(x) {
                        model.record_residual(y - pred);
                    }
                    model.observe(x, y);
                    out.push(t);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_types::{well_known, TupleBuilder};

    fn reading(ts: Ts, id: i64, temp: f64, volts: f64) -> Tuple {
        TupleBuilder::new(&well_known::temp_voltage_schema(), ts)
            .set("receptor_id", id)
            .unwrap()
            .set("temp", temp)
            .unwrap()
            .set("voltage", volts)
            .unwrap()
            .build()
            .unwrap()
    }

    fn stage(action: ModelAction) -> ModelStage {
        ModelStage::new(
            "model",
            "receptor_id",
            "voltage",
            "temp",
            4.0,
            10,
            0.5,
            action,
        )
        .unwrap()
    }

    /// volts = 2.7 + 0.01·temp  →  temp = 100·volts − 270.
    fn volts_for(temp: f64) -> f64 {
        2.7 + 0.01 * temp
    }

    #[test]
    fn consistent_readings_pass_through() {
        let mut s = stage(ModelAction::Drop);
        for i in 0..50 {
            let temp = 18.0 + (i % 7) as f64;
            let batch = s
                .process(
                    Ts::from_secs(i),
                    vec![reading(Ts::from_secs(i), 1, temp, volts_for(temp))],
                )
                .unwrap();
            assert_eq!(batch.len(), 1, "healthy reading {i} must pass");
        }
        assert_eq!(s.flagged(), 0);
    }

    #[test]
    fn fail_dirty_sensor_detected_from_one_device() {
        let mut s = stage(ModelAction::Drop);
        // Warm up on a healthy sensor.
        for i in 0..30u64 {
            let temp = 18.0 + (i % 7) as f64;
            s.process(
                Ts::from_secs(i),
                vec![reading(Ts::from_secs(i), 1, temp, volts_for(temp))],
            )
            .unwrap();
        }
        // Sensor fails: temperature drifts up, voltage keeps tracking the
        // true ~20 °C environment.
        let mut dropped = 0;
        for i in 0..20u64 {
            let reported = 25.0 + 5.0 * i as f64;
            let out = s
                .process(
                    Ts::from_secs(100 + i),
                    vec![reading(
                        Ts::from_secs(100 + i),
                        1,
                        reported,
                        volts_for(20.0),
                    )],
                )
                .unwrap();
            dropped += usize::from(out.is_empty());
        }
        assert!(
            dropped >= 18,
            "almost all fail-dirty readings dropped, got {dropped}"
        );
        assert!(s.flagged() >= 18);
    }

    #[test]
    fn correct_action_substitutes_prediction() {
        let mut s = stage(ModelAction::Correct);
        for i in 0..30u64 {
            let temp = 15.0 + (i % 10) as f64;
            s.process(
                Ts::from_secs(i),
                vec![reading(Ts::from_secs(i), 1, temp, volts_for(temp))],
            )
            .unwrap();
        }
        // A wild reading with a healthy voltage for 20 °C.
        let out = s
            .process(
                Ts::from_secs(99),
                vec![reading(Ts::from_secs(99), 1, 120.0, volts_for(20.0))],
            )
            .unwrap();
        assert_eq!(out.len(), 1, "corrected, not dropped");
        let corrected = out[0].get("temp").unwrap().as_f64().unwrap();
        assert!(
            (corrected - 20.0).abs() < 1.5,
            "prediction should recover ~20 °C, got {corrected}"
        );
        // Other fields are untouched.
        assert_eq!(out[0].get("receptor_id"), Some(&Value::Int(1)));
    }

    #[test]
    fn models_are_per_device() {
        let mut s = stage(ModelAction::Drop);
        // Device 1: volts = 2.7 + 0.01 t. Device 2: volts = 3.0 − 0.02 t.
        for i in 0..30u64 {
            let t1 = 15.0 + (i % 10) as f64;
            let t2 = 10.0 + (i % 5) as f64;
            s.process(
                Ts::from_secs(i),
                vec![
                    reading(Ts::from_secs(i), 1, t1, 2.7 + 0.01 * t1),
                    reading(Ts::from_secs(i), 2, t2, 3.0 - 0.02 * t2),
                ],
            )
            .unwrap();
        }
        assert_eq!(s.flagged(), 0, "each device judged by its own model");
        // A device-2 reading judged by device-1's model would pass; by its
        // own model it fails.
        let out = s
            .process(
                Ts::from_secs(99),
                vec![reading(Ts::from_secs(99), 2, 50.0, 3.0 - 0.02 * 12.0)],
            )
            .unwrap();
        assert!(out.is_empty(), "inconsistent with device 2's own model");
    }

    #[test]
    fn outliers_do_not_poison_the_model() {
        let mut s = stage(ModelAction::Drop);
        for i in 0..30u64 {
            let temp = 18.0 + (i % 7) as f64;
            s.process(
                Ts::from_secs(i),
                vec![reading(Ts::from_secs(i), 1, temp, volts_for(temp))],
            )
            .unwrap();
        }
        // A long run of fail-dirty readings…
        for i in 0..100u64 {
            s.process(
                Ts::from_secs(100 + i),
                vec![reading(Ts::from_secs(100 + i), 1, 120.0, volts_for(20.0))],
            )
            .unwrap();
        }
        // …after which a healthy reading still passes (model not dragged).
        let out = s
            .process(
                Ts::from_secs(999),
                vec![reading(Ts::from_secs(999), 1, 21.0, volts_for(21.0))],
            )
            .unwrap();
        assert_eq!(out.len(), 1, "healthy reading accepted after failure run");
    }

    #[test]
    fn readings_without_both_channels_pass_unjudged() {
        let mut s = stage(ModelAction::Drop);
        let t = TupleBuilder::new(&well_known::temp_schema(), Ts::ZERO)
            .set("receptor_id", 1i64)
            .unwrap()
            .set("temp", 400.0)
            .unwrap()
            .build()
            .unwrap();
        let out = s.process(Ts::ZERO, vec![t]).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn config_validation() {
        assert!(ModelStage::new("m", "k", "x", "y", 0.0, 10, 0.1, ModelAction::Drop).is_err());
        assert!(ModelStage::new("m", "k", "x", "y", 3.0, 1, 0.1, ModelAction::Drop).is_err());
    }
}
