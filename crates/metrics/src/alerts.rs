//! Threshold-alert accounting (§1, §4).
//!
//! The paper's motivating number: using raw RFID data, a "notify me when a
//! shelf holds fewer than 5 items" application would fire 2.3 times per
//! second — when in reality it should never fire.

/// Counts alerts fired when a reported value drops below a threshold.
#[derive(Debug, Clone, Copy)]
pub struct AlertCounter {
    threshold: f64,
    alerts: u64,
    false_alerts: u64,
    observations: u64,
}

impl AlertCounter {
    /// Alert when the reported value drops strictly below `threshold`.
    pub fn new(threshold: f64) -> AlertCounter {
        AlertCounter {
            threshold,
            alerts: 0,
            false_alerts: 0,
            observations: 0,
        }
    }

    /// Record one observation: the reported value and the true value.
    /// An alert fires when `reported < threshold`; it is *false* when the
    /// truth was not actually below the threshold.
    pub fn record(&mut self, reported: f64, truth: f64) {
        self.observations += 1;
        if reported < self.threshold {
            self.alerts += 1;
            if truth >= self.threshold {
                self.false_alerts += 1;
            }
        }
    }

    /// Total alerts fired.
    pub fn alerts(&self) -> u64 {
        self.alerts
    }

    /// Alerts fired while the truth was above threshold.
    pub fn false_alerts(&self) -> u64 {
        self.false_alerts
    }

    /// Observations recorded.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Alerts per second given the total observed duration.
    pub fn alerts_per_second(&self, duration_secs: f64) -> f64 {
        if duration_secs <= 0.0 {
            0.0
        } else {
            self.alerts as f64 / duration_secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_alerts_below_threshold() {
        let mut c = AlertCounter::new(5.0);
        c.record(3.0, 10.0); // false alert
        c.record(7.0, 10.0); // no alert
        c.record(4.0, 4.0); // true alert
        assert_eq!(c.alerts(), 2);
        assert_eq!(c.false_alerts(), 1);
        assert_eq!(c.observations(), 3);
    }

    #[test]
    fn threshold_is_strict() {
        let mut c = AlertCounter::new(5.0);
        c.record(5.0, 10.0);
        assert_eq!(c.alerts(), 0);
    }

    #[test]
    fn rate_per_second() {
        let mut c = AlertCounter::new(5.0);
        for _ in 0..23 {
            c.record(0.0, 10.0);
        }
        assert!((c.alerts_per_second(10.0) - 2.3).abs() < 1e-12);
        assert_eq!(c.alerts_per_second(0.0), 0.0);
    }
}
