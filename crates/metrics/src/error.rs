//! Error metrics over (reported, truth) pairs.

/// Equation 1 of the paper: the average relative error
/// `Σ |Rᵢ − Tᵢ| / Tᵢ  ÷  N` over all time steps.
///
/// Pairs whose truth is zero are skipped (the metric is undefined there;
/// the paper's shelves always hold at least 10 items).
pub fn average_relative_error(pairs: impl IntoIterator<Item = (f64, f64)>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for (reported, truth) in pairs {
        if truth == 0.0 {
            continue;
        }
        sum += (reported - truth).abs() / truth.abs();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Mean absolute error over (reported, truth) pairs.
pub fn mean_absolute_error(pairs: impl IntoIterator<Item = (f64, f64)>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for (reported, truth) in pairs {
        sum += (reported - truth).abs();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// The fraction of readings within `tolerance` of ground truth
/// (paper §5.2: "99% of these readings were within 1 °C of the logged
/// data").
pub fn fraction_within(pairs: impl IntoIterator<Item = (f64, f64)>, tolerance: f64) -> f64 {
    let mut within = 0u64;
    let mut n = 0u64;
    for (reported, truth) in pairs {
        if (reported - truth).abs() <= tolerance {
            within += 1;
        }
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        within as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_one_textbook() {
        // Counts off by half on average → 0.5.
        let pairs = [(5.0, 10.0), (15.0, 10.0)];
        assert!((average_relative_error(pairs) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_reporting_is_zero_error() {
        let pairs = (0..10).map(|i| (i as f64 + 1.0, i as f64 + 1.0));
        assert_eq!(average_relative_error(pairs), 0.0);
    }

    #[test]
    fn zero_truth_skipped() {
        let pairs = [(5.0, 0.0), (10.0, 10.0)];
        assert_eq!(average_relative_error(pairs), 0.0);
    }

    #[test]
    fn empty_input_yields_zero() {
        assert_eq!(average_relative_error(std::iter::empty()), 0.0);
        assert_eq!(mean_absolute_error(std::iter::empty()), 0.0);
        assert_eq!(fraction_within(std::iter::empty(), 1.0), 1.0);
    }

    #[test]
    fn mae_is_symmetric() {
        let pairs = [(9.0, 10.0), (11.0, 10.0)];
        assert!((mean_absolute_error(pairs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_within_tolerance_boundary_inclusive() {
        let pairs = [(10.5, 10.0), (12.0, 10.0), (11.0, 10.0)];
        let f = fraction_within(pairs, 1.0);
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }
}
