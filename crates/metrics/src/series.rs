//! Experiment output: named series, text rendering, and JSON reports.

use std::fmt::Write as _;

use serde::{Serialize, Value};

/// A named (x, y) series — one line of a paper figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Display name ("Shelf 0 raw", "ESP", …).
    pub name: String,
    /// (x, y) points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Build from an iterator.
    pub fn from_points(
        name: impl Into<String>,
        points: impl IntoIterator<Item = (f64, f64)>,
    ) -> Series {
        Series {
            name: name.into(),
            points: points.into_iter().collect(),
        }
    }

    /// Minimum and maximum y, if non-empty.
    pub fn y_range(&self) -> Option<(f64, f64)> {
        let mut it = self.points.iter().map(|&(_, y)| y);
        let first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for y in it {
            lo = lo.min(y);
            hi = hi.max(y);
        }
        Some((lo, hi))
    }

    /// Mean of y values (0 when empty).
    pub fn y_mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, y)| y).sum::<f64>() / self.points.len() as f64
    }
}

/// Render a series as a fixed-size ASCII plot (rows top-down, `*` marks),
/// for experiment binaries that "draw" the paper's figures in a terminal.
///
/// Non-finite points (NaN/∞ from degenerate experiments) cannot be
/// placed on a finite grid and are skipped — left in, a NaN span would
/// collapse every row index to zero and an infinite one would panic in
/// the row arithmetic. A series with no finite points renders empty,
/// like an empty series.
pub fn ascii_plot(series: &Series, width: usize, height: usize) -> String {
    let mut out = String::new();
    if width == 0 || height == 0 {
        return out;
    }
    let finite: Vec<(f64, f64)> = series
        .points
        .iter()
        .copied()
        .filter(|&(x, y)| x.is_finite() && y.is_finite())
        .collect();
    let (Some(&(x_lo, _)), Some(&(x_hi, _))) = (finite.first(), finite.last()) else {
        return out;
    };
    let (y_lo, y_hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, y)| {
            (lo.min(y), hi.max(y))
        });
    let x_span = (x_hi - x_lo).max(f64::EPSILON);
    let y_span = (y_hi - y_lo).max(f64::EPSILON);
    let mut grid = vec![vec![b' '; width]; height];
    for &(x, y) in &finite {
        let col = (((x - x_lo) / x_span) * (width - 1) as f64).round() as usize;
        let row = (((y - y_lo) / y_span) * (height - 1) as f64).round() as usize;
        grid[height - 1 - row][col.min(width - 1)] = b'*';
    }
    let _ = writeln!(
        out,
        "{} (y: {y_lo:.2}..{y_hi:.2}, x: {x_lo:.1}..{x_hi:.1})",
        series.name
    );
    for row in grid {
        let _ = writeln!(out, "|{}|", String::from_utf8_lossy(&row));
    }
    out
}

impl Serialize for Series {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), self.name.to_value()),
            ("points".to_string(), self.points.to_value()),
        ])
    }
}

/// A complete experiment report: scalars + series, renderable as text and
/// serializable as JSON.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment title ("Figure 5: pipeline ablation", …).
    pub title: String,
    /// Named scalar results (error rates, yields, accuracies).
    pub scalars: Vec<(String, f64)>,
    /// Figure series.
    pub series: Vec<Series>,
}

impl Serialize for Report {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("title".to_string(), self.title.to_value()),
            ("scalars".to_string(), self.scalars.to_value()),
            ("series".to_string(), self.series.to_value()),
        ])
    }
}

impl Report {
    /// An empty report.
    pub fn new(title: impl Into<String>) -> Report {
        Report {
            title: title.into(),
            scalars: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Add a scalar result.
    pub fn scalar(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.scalars.push((name.into(), value));
        self
    }

    /// Add a series.
    pub fn add_series(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Fetch a scalar by name.
    pub fn get_scalar(&self, name: &str) -> Option<f64> {
        self.scalars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Render as an aligned text table (scalars) plus series summaries.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let width = self.scalars.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in &self.scalars {
            let _ = writeln!(out, "  {name:<width$}  {value:>10.4}");
        }
        for s in &self.series {
            let (lo, hi) = s.y_range().unwrap_or((0.0, 0.0));
            let _ = writeln!(
                out,
                "  series '{}': {} points, y in [{lo:.3}, {hi:.3}], mean {:.3}",
                s.name,
                s.points.len(),
                s.y_mean()
            );
        }
        out
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Write the JSON form to `<dir>/<slug>.json`, creating `dir`.
    pub fn write_json(&self, dir: &std::path::Path, slug: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{slug}.json")), self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_stats() {
        let s = Series::from_points("s", [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]);
        assert_eq!(s.y_range(), Some((1.0, 3.0)));
        assert!((s.y_mean() - 2.0).abs() < 1e-12);
        assert_eq!(Series::new("e").y_range(), None);
    }

    #[test]
    fn ascii_plot_shape() {
        let s = Series::from_points("ramp", (0..50).map(|i| (i as f64, i as f64)));
        let plot = ascii_plot(&s, 40, 10);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 11, "header + 10 rows");
        // Monotone ramp: top row marks appear to the right of bottom row's.
        let top = lines[1].find('*').unwrap();
        let bottom = lines[10].find('*').unwrap();
        assert!(top > bottom);
    }

    #[test]
    fn ascii_plot_empty_is_empty() {
        assert!(ascii_plot(&Series::new("e"), 10, 5).is_empty());
        // Degenerate grid dimensions render nothing rather than dividing
        // by a zero-width span.
        let s = Series::from_points("s", [(0.0, 1.0)]);
        assert!(ascii_plot(&s, 0, 5).is_empty());
        assert!(ascii_plot(&s, 10, 0).is_empty());
    }

    #[test]
    fn ascii_plot_single_point() {
        let s = Series::from_points("one", [(3.0, 7.0)]);
        let plot = ascii_plot(&s, 10, 4);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 5, "header + 4 rows");
        assert!(lines[0].contains("7.00..7.00"));
        assert_eq!(
            plot.matches('*').count(),
            1,
            "exactly one mark for one point"
        );
    }

    #[test]
    fn ascii_plot_skips_non_finite_points() {
        let s = Series::from_points(
            "mixed",
            [
                (0.0, 1.0),
                (1.0, f64::NAN),
                (2.0, f64::INFINITY),
                (f64::NAN, 5.0),
                (3.0, 2.0),
            ],
        );
        let plot = ascii_plot(&s, 20, 5);
        assert!(!plot.is_empty());
        // Ranges come from the finite points only.
        assert!(plot.contains("y: 1.00..2.00"), "{plot}");
        assert!(plot.contains("x: 0.0..3.0"), "{plot}");
        assert_eq!(plot.matches('*').count(), 2, "two finite points plotted");
        // All-non-finite series renders empty, like an empty series.
        let nan = Series::from_points("nan", [(f64::NAN, f64::NAN)]);
        assert!(ascii_plot(&nan, 10, 5).is_empty());
    }

    #[test]
    fn report_renders_with_no_scalars_or_points() {
        let mut r = Report::new("empty");
        r.add_series(Series::new("hollow"));
        let text = r.render_text();
        assert!(text.contains("== empty =="));
        assert!(text.contains("'hollow': 0 points"));
        assert_eq!(r.get_scalar("anything"), None);
    }

    #[test]
    fn report_round_trip() {
        let mut r = Report::new("Figure 5");
        r.scalar("raw", 0.41).scalar("smooth+arbitrate", 0.04);
        r.add_series(Series::from_points("trace", [(0.0, 1.0)]));
        assert_eq!(r.get_scalar("raw"), Some(0.41));
        assert_eq!(r.get_scalar("missing"), None);
        let text = r.render_text();
        assert!(text.contains("Figure 5") && text.contains("0.0400"));
        let json = r.to_json();
        assert!(json.contains("\"title\""));
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["scalars"][0][1], 0.41);
    }

    #[test]
    fn report_writes_json_file() {
        let dir = std::env::temp_dir().join("esp-metrics-test");
        let r = Report::new("t");
        r.write_json(&dir, "unit").unwrap();
        let content = std::fs::read_to_string(dir.join("unit.json")).unwrap();
        assert!(content.contains("\"t\""));
    }
}
