//! Binary detection accuracy (§6).

/// Confusion-matrix accounting for a binary detector against ground truth
/// — used to score the digital-home person detector ("ESP is able to
/// correctly indicate that a person is in the room 92% of the time").
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryAccuracy {
    tp: u64,
    tn: u64,
    fp: u64,
    fn_: u64,
}

impl BinaryAccuracy {
    /// Empty tracker.
    pub fn new() -> BinaryAccuracy {
        BinaryAccuracy::default()
    }

    /// Record one epoch: what the detector said vs the truth.
    pub fn record(&mut self, detected: bool, truth: bool) {
        match (detected, truth) {
            (true, true) => self.tp += 1,
            (false, false) => self.tn += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Observations recorded.
    pub fn total(&self) -> u64 {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// Fraction of epochs classified correctly; 1.0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// TP / (TP + FP); 1.0 when the detector never fired.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// TP / (TP + FN); 1.0 when the event never occurred.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// (true positives, true negatives, false positives, false negatives).
    pub fn confusion(&self) -> (u64, u64, u64, u64) {
        (self.tp, self.tn, self.fp, self.fn_)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_accounting() {
        let mut a = BinaryAccuracy::new();
        a.record(true, true);
        a.record(true, true);
        a.record(false, false);
        a.record(true, false);
        a.record(false, true);
        assert_eq!(a.confusion(), (2, 1, 1, 1));
        assert!((a.accuracy() - 0.6).abs() < 1e-12);
        assert!((a.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((a.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let a = BinaryAccuracy::new();
        assert_eq!(a.accuracy(), 1.0);
        assert_eq!(a.precision(), 1.0);
        assert_eq!(a.recall(), 1.0);
        let mut never_fired = BinaryAccuracy::new();
        never_fired.record(false, false);
        assert_eq!(never_fired.precision(), 1.0);
    }
}
