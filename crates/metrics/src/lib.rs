//! # esp-metrics
//!
//! The evaluation metrics used in the ESP paper, plus series/report
//! helpers for the experiment harness:
//!
//! * [`average_relative_error`] — Equation 1 (§4): mean of `|Rᵢ−Tᵢ|/Tᵢ`
//!   over time steps, the RFID shelf-count metric.
//! * [`EpochYield`] — §5.2: readings reported to the application as a
//!   fraction of readings requested.
//! * [`fraction_within`] — §5.2: share of readings within a tolerance of
//!   ground truth (the biologists' 1 °C requirement).
//! * [`AlertCounter`] — §1/§4: restock-alert rate when a count drops below
//!   a threshold (the paper's "2.3 alerts per second" motivation).
//! * [`BinaryAccuracy`] — §6: person-detector accuracy/precision/recall.
//! * [`Series`] / [`Report`] — recording experiment output and rendering
//!   it as aligned text tables, ASCII plots, and JSON (so EXPERIMENTS.md
//!   numbers are regenerable and diffable).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod accuracy;
mod alerts;
mod error;
mod series;
mod yield_;

pub use accuracy::BinaryAccuracy;
pub use alerts::AlertCounter;
pub use error::{average_relative_error, fraction_within, mean_absolute_error};
pub use series::{ascii_plot, Report, Series};
pub use yield_::EpochYield;
