//! Epoch yield (§5.2).

/// Tracks how many requested readings were actually reported.
///
/// "Epoch yield describes the number of the readings reported to the
/// application as a fraction of the total number of readings the
/// application requested." For the raw redwood trace this was 40%; ESP's
/// Smooth stage raised it to 77% and Merge to 92%.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochYield {
    requested: u64,
    reported: u64,
}

impl EpochYield {
    /// An empty tracker.
    pub fn new() -> EpochYield {
        EpochYield::default()
    }

    /// Record one requested reading and whether it was reported.
    pub fn record(&mut self, reported: bool) {
        self.requested += 1;
        if reported {
            self.reported += 1;
        }
    }

    /// Record a batch: `reported` readings out of `requested`.
    pub fn record_many(&mut self, reported: u64, requested: u64) {
        debug_assert!(reported <= requested);
        self.requested += requested;
        self.reported += reported;
    }

    /// Total requested readings.
    pub fn requested(&self) -> u64 {
        self.requested
    }

    /// Total reported readings.
    pub fn reported(&self) -> u64 {
        self.reported
    }

    /// The yield in `[0, 1]`; 1.0 when nothing was requested.
    pub fn value(&self) -> f64 {
        if self.requested == 0 {
            1.0
        } else {
            self.reported as f64 / self.requested as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accounting() {
        let mut y = EpochYield::new();
        for i in 0..10 {
            y.record(i % 5 < 2); // 40%
        }
        assert_eq!(y.requested(), 10);
        assert_eq!(y.reported(), 4);
        assert!((y.value() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn record_many_merges() {
        let mut y = EpochYield::new();
        y.record_many(77, 100);
        y.record_many(15, 100);
        assert!((y.value() - 0.46).abs() < 1e-12);
    }

    #[test]
    fn empty_is_full_yield() {
        assert_eq!(EpochYield::new().value(), 1.0);
    }
}
