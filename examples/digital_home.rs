//! The paper's §6 digital-home scenario: a virtual "person detector" fused
//! from three unreliable receptor types — two RFID readers, three sound
//! motes, three X10 motion detectors — using all five ESP stages,
//! including Virtualize.
//!
//! Run: `cargo run --release -p esp-examples --bin digital_home`

use esp_core::{
    EspProcessor, MergeStage, Pipeline, PointStage, ProximityGroups, ReceptorBinding, SmoothStage,
    VirtualizeStage, VoteRule,
};
use esp_metrics::BinaryAccuracy;
use esp_receptors::office::{OfficeScenario, BADGE_TAG};
use esp_types::{ReceptorType, SpatialGranule, TimeDelta, Ts, Value};

fn main() {
    let scenario = OfficeScenario::paper(5);
    let duration = TimeDelta::from_secs(600);

    let mut groups = ProximityGroups::new();
    let sources = scenario.sources();
    for spec in scenario.groups() {
        let rtype = sources
            .iter()
            .find(|(id, _, _)| spec.members.contains(id))
            .map(|(_, t, _)| *t)
            .expect("every group has a member");
        groups.add_group(rtype, spec.granule.as_str(), spec.members);
    }

    // All five stages; Point/Smooth/Merge dispatch on receptor type, as in
    // the paper's "stages from other deployments can be reused".
    let pipeline = Pipeline::builder()
        .per_receptor("point", |ctx| {
            Ok(Box::new(match ctx.receptor_type {
                // Drop errant tags via the expected-tag list (§6.1).
                Some(ReceptorType::Rfid) => {
                    PointStage::new("point").expected_values("tag_id", [BADGE_TAG])
                }
                _ => PointStage::new("point"),
            }))
        })
        .per_receptor("smooth", |ctx| {
            Ok(match ctx.receptor_type {
                Some(ReceptorType::Rfid) => Box::new(SmoothStage::count_by_key(
                    "smooth",
                    TimeDelta::from_secs(5),
                    ["spatial_granule", "tag_id"],
                )) as Box<dyn esp_core::Stage>,
                Some(ReceptorType::X10Motion) => Box::new(SmoothStage::event_presence(
                    "smooth",
                    TimeDelta::from_secs(10),
                    ["spatial_granule", "receptor_id"],
                    "value",
                    "ON",
                    1,
                )),
                _ => Box::new(SmoothStage::windowed_mean(
                    "smooth",
                    TimeDelta::from_secs(5),
                    ["spatial_granule", "receptor_id"],
                    "noise",
                )),
            })
        })
        .per_group("merge", |ctx| {
            let granule = ctx
                .granule
                .clone()
                .unwrap_or_else(|| SpatialGranule::new("office"));
            Ok(match ctx.receptor_type {
                Some(ReceptorType::Rfid) => Box::new(MergeStage::union_all(
                    "merge",
                    granule,
                    Some("tag_id".into()),
                )) as Box<dyn esp_core::Stage>,
                Some(ReceptorType::X10Motion) => Box::new(MergeStage::vote_threshold(
                    "merge",
                    granule,
                    TimeDelta::from_secs(10),
                    "value",
                    "ON",
                    "receptor_id",
                    2,
                )),
                _ => Box::new(MergeStage::outlier_filtered_mean(
                    "merge",
                    granule,
                    TimeDelta::from_secs(5),
                    "noise",
                    1.0,
                )),
            })
        })
        .global("virtualize", |_ctx| {
            // The paper's Query 6 as threshold voting: 2 of 3 modalities.
            Ok(Box::new(
                VirtualizeStage::voting(
                    "virtualize",
                    "Person-in-room",
                    vec![
                        VoteRule::numeric_above("sound", "noise", 525.0),
                        VoteRule::min_tuples_with("rfid", "tag_id", 1),
                        VoteRule::value_equals("motion", "value", "ON"),
                    ],
                    2,
                )
                .expect("valid voting config"),
            ))
        })
        .build();

    let receptors = sources
        .into_iter()
        .map(|(id, rtype, src)| ReceptorBinding::new(id, rtype, src))
        .collect();
    let processor = EspProcessor::build(groups, &pipeline, receptors).expect("deployment");
    let output = processor
        .run(
            Ts::ZERO,
            TimeDelta::from_secs(1),
            duration.as_millis() / 1000,
        )
        .expect("pipeline runs");

    let mut accuracy = BinaryAccuracy::new();
    let mut strip = String::new();
    for (ts, batch) in &output.trace {
        let detected = batch
            .iter()
            .any(|t| t.get("event") == Some(&Value::str("Person-in-room")));
        accuracy.record(detected, scenario.occupied(*ts));
        if ts.as_millis() % 10_000 == 0 {
            strip.push(if detected { '#' } else { '.' });
        }
    }
    println!("detector output, one mark per 10 s  (# = person reported in room):");
    println!("  {strip}");
    println!("ground truth alternates every 60 s starting occupied");
    let (tp, tn, fp, fn_) = accuracy.confusion();
    println!(
        "\naccuracy {:.1}% (paper: 92%)   precision {:.1}%   recall {:.1}%",
        accuracy.accuracy() * 100.0,
        accuracy.precision() * 100.0,
        accuracy.recall() * 100.0
    );
    println!("confusion: tp={tp} tn={tn} fp={fp} fn={fn_}");
}
