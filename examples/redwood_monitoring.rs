//! The paper's §5.2 environmental-monitoring scenario: 33 motes on a
//! redwood trunk reporting over a network that loses 60% of messages, in
//! bursts. Smooth (with an expanded 30-minute window, §5.2.1) and Merge
//! (2-node proximity groups per altitude band) recover most of the data.
//!
//! Run: `cargo run --release -p esp-examples --bin redwood_monitoring`

use std::collections::HashMap;

use esp_core::{
    EspProcessor, MergeStage, Pipeline, ProximityGroups, ReceptorBinding, SmoothStage,
    TemporalGranule,
};
use esp_metrics::{fraction_within, EpochYield};
use esp_receptors::redwood::RedwoodScenario;
use esp_types::{ReceptorType, SpatialGranule, Ts, Value};

fn main() {
    let scenario = RedwoodScenario::paper(11);
    let period = scenario.config().sample_period; // 5 minutes
    let days = 2.0;
    let n_epochs = (days * 86_400_000.0 / period.as_millis() as f64) as u64;

    // 5-minute granule, window expanded to 30 minutes (§5.2.1).
    let granule = TemporalGranule::expanded_for(period, period, 6).expect("valid expansion");
    println!(
        "temporal granule {} expanded to a {} smoothing window",
        granule.granule(),
        granule.window()
    );

    let mut groups = ProximityGroups::new();
    let specs = scenario.groups();
    for spec in &specs {
        groups.add_group(
            ReceptorType::Mote,
            spec.granule.as_str(),
            spec.members.clone(),
        );
    }

    let pipeline = Pipeline::builder()
        .per_receptor("smooth", move |_ctx| {
            Ok(Box::new(SmoothStage::windowed_mean(
                "smooth",
                granule,
                ["spatial_granule", "receptor_id"],
                "temp",
            )))
        })
        .per_group("merge", move |ctx| {
            let g = ctx
                .granule
                .clone()
                .unwrap_or_else(|| SpatialGranule::new("band"));
            Ok(Box::new(MergeStage::outlier_filtered_mean(
                "merge",
                g,
                TemporalGranule::new(granule.granule()),
                "temp",
                1.0,
            )))
        })
        .build();

    let receptors = scenario
        .sources()
        .into_iter()
        .map(|(id, src)| ReceptorBinding::new(id, ReceptorType::Mote, src))
        .collect();
    let processor = EspProcessor::build(groups, &pipeline, receptors).expect("deployment");
    let output = processor
        .run(Ts::ZERO, period, n_epochs)
        .expect("pipeline runs");

    // Score: yield per granule-epoch + accuracy vs the micro-climate model.
    let granule_index: HashMap<&str, usize> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| (s.granule.as_str(), i))
        .collect();
    let mut epoch_yield = EpochYield::new();
    let mut pairs = Vec::new();
    for (ts, batch) in &output.trace {
        let mut seen = vec![false; specs.len()];
        for t in batch {
            if let (Some(g), Some(v)) = (
                t.get("spatial_granule").and_then(Value::as_str),
                t.get("temp").and_then(Value::as_f64),
            ) {
                if let Some(&gi) = granule_index.get(g) {
                    seen[gi] = true;
                    pairs.push((v, scenario.granule_true_temp(gi, *ts)));
                }
            }
        }
        for s in seen {
            epoch_yield.record(s);
        }
    }
    println!(
        "granule-epoch yield: {:.1}% (raw trace delivered ~40% of readings)",
        epoch_yield.value() * 100.0
    );
    println!(
        "readings within 1 °C of the micro-climate model: {:.1}%",
        fraction_within(pairs.iter().copied(), 1.0) * 100.0
    );
    println!(
        "mean absolute error: {:.3} °C over {} reported granule-epochs",
        esp_metrics::mean_absolute_error(pairs.iter().copied()),
        pairs.len()
    );
}
