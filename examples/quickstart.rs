//! Quickstart: clean a dirty RFID stream in ~40 lines.
//!
//! One reader watches one shelf of 10 tags. Each 200 ms poll misses tags
//! at random, so raw per-poll counts are wrong; a Smooth stage over a
//! 5-second temporal granule recovers the true count.
//!
//! Run: `cargo run -p esp-examples --bin quickstart`

use esp_core::{Pipeline, ProximityGroups, ReceptorBinding, SmoothStage};
use esp_receptors::rfid::{ShelfConfig, ShelfScenario};
use esp_types::{ReceptorId, ReceptorType, TimeDelta, Ts, Value};

fn main() {
    // A one-shelf world with a flaky reader (no mobile tags, no blackouts —
    // just plain missed readings).
    let scenario = ShelfScenario::new(
        ShelfConfig {
            n_shelves: 1,
            mobile_tags: 0,
            p_blackout: 0.0,
            ..ShelfConfig::default()
        },
        42,
    );

    // The application's granules: 5-second temporal granule, one spatial
    // granule ("shelf0") watched by one reader (a proximity group of one).
    let granule = TimeDelta::from_secs(5);
    let mut groups = ProximityGroups::new();
    groups.add_group(ReceptorType::Rfid, "shelf0", [ReceptorId(0)]);

    // The cleaning pipeline: a single Smooth stage per receptor stream.
    let pipeline = Pipeline::builder()
        .per_receptor("smooth", move |_ctx| {
            Ok(Box::new(SmoothStage::count_by_key(
                "smooth",
                granule,
                ["tag_id"],
            )))
        })
        .build();

    // Wire receptors into the processor and run 30 simulated seconds.
    let receptors = scenario
        .sources()
        .into_iter()
        .map(|(id, src)| ReceptorBinding::new(id, ReceptorType::Rfid, src))
        .collect();
    let processor =
        esp_core::EspProcessor::build(groups, &pipeline, receptors).expect("valid deployment");
    let output = processor
        .run(Ts::ZERO, TimeDelta::from_millis(200), 150)
        .expect("pipeline runs");

    // The application: count distinct tags on the shelf each second.
    println!("time  cleaned-count  (truth = 10)");
    for (epoch, batch) in &output.trace {
        if epoch.as_millis() % 5_000 != 0 {
            continue;
        }
        let tags: std::collections::HashSet<&str> = batch
            .iter()
            .filter_map(|t| t.get("tag_id").and_then(Value::as_str))
            .collect();
        println!("{epoch:>6}  {:>13}", tags.len());
    }
}
