//! Hierarchical composition — ESP at the edge of a HiFi-style system.
//!
//! ESP "is intended to clean receptor streams at the edge of the HiFi
//! network" (§2.2), and the paper's conclusions note that "entire
//! pipelines for processing low-level data can be reused as input to
//! application-level cleaning" (§7). This example composes exactly that
//! hierarchy:
//!
//! 1. an **edge ESP pipeline** (Smooth + Arbitrate) cleans each shelf's
//!    RFID streams, as in §4;
//! 2. the cleaned edge stream feeds a **warehouse-level continuous query**
//!    (a plain `esp-query` query, the kind a HiFi interior node would run)
//!    computing total inventory and low-stock alerts — oblivious, as the
//!    paper promises, "to the unreliable behavior beneath it".
//!
//! Run: `cargo run --release -p esp-examples --bin warehouse_hierarchy`

use std::sync::Arc;

use esp_core::{
    ArbitrateStage, EspProcessor, Pipeline, ProximityGroups, ReceptorBinding, SmoothStage, TieBreak,
};
use esp_query::Engine;
use esp_receptors::rfid::ShelfScenario;
use esp_types::{ReceptorType, TimeDelta, Ts, Value};

fn main() {
    let scenario = ShelfScenario::paper(23);
    let period = scenario.config().sample_period;
    let granule = TimeDelta::from_secs(5);

    // ----- Edge node: the §4 cleaning pipeline. -----
    let mut groups = ProximityGroups::new();
    for spec in scenario.groups() {
        groups.add_group(ReceptorType::Rfid, spec.granule.as_str(), spec.members);
    }
    let pipeline = Pipeline::builder()
        .per_receptor("smooth", move |_| {
            Ok(Box::new(SmoothStage::count_by_key(
                "smooth",
                granule,
                ["spatial_granule", "tag_id"],
            )))
        })
        .global("arbitrate", |_| {
            Ok(Box::new(ArbitrateStage::new(
                "arbitrate",
                TieBreak::Priority(vec![Arc::from("shelf1"), Arc::from("shelf0")]),
            )))
        })
        .build();
    let receptors = scenario
        .sources()
        .into_iter()
        .map(|(id, src)| ReceptorBinding::new(id, ReceptorType::Rfid, src))
        .collect();
    let edge = EspProcessor::build(groups, &pipeline, receptors).expect("edge deployment");
    let cleaned = edge
        .run(Ts::ZERO, period, 120 * 1000 / period.as_millis())
        .expect("edge run");

    // ----- Interior node: application-level query over the clean stream. -----
    let engine = Engine::new();
    let mut inventory_q = engine
        .compile(
            "SELECT count(distinct tag_id) AS total \
             FROM warehouse [Range By 'NOW']",
        )
        .expect("warehouse query compiles");
    let mut per_shelf_q = engine
        .compile(
            "SELECT spatial_granule, count(distinct tag_id) AS items \
             FROM warehouse [Range By 'NOW'] \
             GROUP BY spatial_granule \
             HAVING count(distinct tag_id) < 5",
        )
        .expect("low-stock query compiles");

    println!("time   warehouse-total   low-stock alerts");
    let mut alert_epochs = 0usize;
    for (epoch, batch) in &cleaned.trace {
        inventory_q.push("warehouse", batch).expect("push");
        per_shelf_q.push("warehouse", batch).expect("push");
        let totals = inventory_q.tick(*epoch).expect("tick");
        let alerts = per_shelf_q.tick(*epoch).expect("tick");
        alert_epochs += usize::from(!alerts.is_empty());
        if epoch.as_millis() % 10_000 == 0 {
            let total = totals
                .first()
                .and_then(|t| t.get("total").and_then(Value::as_i64))
                .unwrap_or(0);
            let alert_str = if alerts.is_empty() {
                "-".to_string()
            } else {
                alerts
                    .iter()
                    .filter_map(|t| t.get("spatial_granule").and_then(Value::as_str))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            println!("{epoch:>6}  {total:>15}   {alert_str}");
        }
    }
    println!(
        "\nepochs with a (false) low-stock alert: {alert_epochs} of {} — \
         the warehouse holds 25 items throughout",
        cleaned.trace.len()
    );
}
