//! The paper's §4 retail scenario, built on the public API with the
//! Smooth stage expressed **declaratively** (the paper's Query 2) and
//! Arbitrate as a built-in stage.
//!
//! Two shelves × one reader each; 10 static tags per shelf; 5 items
//! relocated between the shelves every 40 s. Reader 0's antenna is
//! stronger and overhears shelf 1, so Smooth alone leaves shelf 0
//! overcounted — Arbitrate attributes each tag to the granule that read it
//! most (ties to the weaker antenna, §4.3.1).
//!
//! Run: `cargo run --release -p esp-examples --bin rfid_shelf`

use std::collections::HashSet;
use std::sync::Arc;

use esp_core::{
    ArbitrateStage, DeclarativeStage, EspProcessor, Pipeline, ProximityGroups, ReceptorBinding,
    TieBreak,
};
use esp_metrics::average_relative_error;
use esp_query::Engine;
use esp_receptors::rfid::ShelfScenario;
use esp_types::{ReceptorType, Ts, Value};

fn main() {
    let scenario = ShelfScenario::paper(7);
    let duration_s = 200u64;
    let period = scenario.config().sample_period;

    // Proximity groups: each reader is its own group; granule = shelf.
    let mut groups = ProximityGroups::new();
    for spec in scenario.groups() {
        groups.add_group(ReceptorType::Rfid, spec.granule.as_str(), spec.members);
    }

    // Smooth as a declarative continuous query — the paper's Query 2,
    // extended with the spatial_granule attribute ESP injects.
    let engine = Engine::new();
    let pipeline = Pipeline::builder()
        .per_receptor("smooth", move |_ctx| {
            let q = engine
                .compile(
                    "SELECT spatial_granule, tag_id, count(*) \
                     FROM smooth_input [Range By '5 sec'] \
                     GROUP BY spatial_granule, tag_id",
                )
                .expect("Query 2 compiles");
            Ok(Box::new(DeclarativeStage::new("smooth(Q2)", q)?))
        })
        .global("arbitrate", |_ctx| {
            Ok(Box::new(ArbitrateStage::new(
                "arbitrate",
                TieBreak::Priority(vec![Arc::from("shelf1"), Arc::from("shelf0")]),
            )))
        })
        .build();

    let receptors = scenario
        .sources()
        .into_iter()
        .map(|(id, src)| ReceptorBinding::new(id, ReceptorType::Rfid, src))
        .collect();
    let processor = EspProcessor::build(groups, &pipeline, receptors).expect("deployment");
    let output = processor
        .run(Ts::ZERO, period, duration_s * 1000 / period.as_millis())
        .expect("pipeline runs");

    // Application query (Query 1): count of items per shelf, scored
    // against ground truth.
    let mut pairs = Vec::new();
    println!("time   shelf0 (truth)   shelf1 (truth)");
    for (epoch, batch) in &output.trace {
        let mut counts = [0usize; 2];
        for (shelf, count) in counts.iter_mut().enumerate() {
            let tags: HashSet<&str> = batch
                .iter()
                .filter(|t| {
                    t.get("spatial_granule").and_then(Value::as_str)
                        == Some(&format!("shelf{shelf}"))
                })
                .filter_map(|t| t.get("tag_id").and_then(Value::as_str))
                .collect();
            *count = tags.len();
            pairs.push((tags.len() as f64, scenario.true_count(shelf, *epoch) as f64));
        }
        if epoch.as_millis() % 10_000 == 0 {
            println!(
                "{epoch:>6}  {:>4}   ({:>2})      {:>4}   ({:>2})",
                counts[0],
                scenario.true_count(0, *epoch),
                counts[1],
                scenario.true_count(1, *epoch),
            );
        }
    }
    println!(
        "\naverage relative error after Smooth(Q2)+Arbitrate: {:.4} (paper: 0.04)",
        average_relative_error(pairs)
    );
}
