//! Networked ingestion: receptors streaming checksummed frames over real
//! TCP sockets into the `esp-gateway` server, which shards granules across
//! worker pipelines and flushes epochs by bounded-lateness watermark.
//!
//! Three "devices" connect as clients — two RFID shelf readers and one
//! temperature mote — each smoothing through its own lossy Gilbert–Elliott
//! uplink. The gateway drops corrupt frames at the edge (the paper's
//! out-of-the-box Point functionality), routes by granule hash, and runs a
//! per-receptor Smooth stage on every shard.
//!
//! Run: `cargo run --release -p esp-examples --bin gateway_ingest`

use std::thread;

use esp_core::{Pipeline, SmoothStage};
use esp_gateway::{Gateway, GatewayClient, GatewayConfig, GatewayGroup};
use esp_receptors::channel::{BernoulliChannel, Channel, Delivery, GilbertElliottChannel};
use esp_receptors::wire::{self, Reading};
use esp_types::{ReceptorId, ReceptorType, TimeDelta, Ts};

fn main() {
    let groups = vec![
        GatewayGroup {
            receptor_type: ReceptorType::Rfid,
            granule: "shelf0".into(),
            members: vec![ReceptorId(0)],
        },
        GatewayGroup {
            receptor_type: ReceptorType::Rfid,
            granule: "shelf1".into(),
            members: vec![ReceptorId(1)],
        },
        GatewayGroup {
            receptor_type: ReceptorType::Mote,
            granule: "room".into(),
            members: vec![ReceptorId(2)],
        },
    ];

    let mut config = GatewayConfig::new(groups);
    config.n_shards = 2;
    config.period = TimeDelta::from_secs(1);
    config.min_connections = 3;

    // Each shard builds the same cascade: Smooth each receptor's stream
    // over a 5 s count window (the paper's Query 2 shape).
    let gateway = Gateway::spawn(config, |_shard| {
        Pipeline::builder()
            .per_receptor("smooth", |ctx| {
                let keys: &[&str] = if ctx.receptor_type == Some(ReceptorType::Rfid) {
                    &["spatial_granule", "tag_id"]
                } else {
                    &["spatial_granule"]
                };
                Ok(Box::new(SmoothStage::count_by_key(
                    "smooth",
                    TimeDelta::from_secs(5),
                    keys.iter().map(|k| k.to_string()),
                )))
            })
            .build()
    })
    .expect("spawn gateway");
    let addr = gateway.local_addr();
    println!("gateway listening on {addr}, 2 shards\n");

    // Three devices connect over TCP, each behind a bursty lossy uplink.
    let clients: Vec<_> = (0..3u32)
        .map(|device| {
            thread::spawn(move || {
                // Bursty loss from the Gilbert–Elliott model; frames that
                // survive pick up a 2% corruption chance (bit errors the
                // gateway's checksum must catch).
                let mut uplink = GilbertElliottChannel::with_yield(device as u64, 0.85, 3.0);
                let mut bits = BernoulliChannel::new(0x5EED + device as u64, 0.0, 0.02);
                let mut client =
                    GatewayClient::connect(addr, TimeDelta::ZERO).expect("connect device");
                for i in 0..60u64 {
                    let ts = Ts::from_millis(i * 250);
                    let reading = match device {
                        0 | 1 => Reading::Tag {
                            receptor: ReceptorId(device),
                            ts,
                            tag_id: format!("tag-{device}-{}", i % 4),
                        },
                        _ => Reading::Scalar {
                            receptor: ReceptorId(device),
                            ts,
                            value: 21.0 + (i as f64 * 0.05),
                        },
                    };
                    let outcome = match uplink.transmit() {
                        Delivery::Delivered => bits.transmit(),
                        lost => lost,
                    };
                    match outcome {
                        Delivery::Lost => {}
                        Delivery::Corrupted => {
                            let mut bad = wire::encode(&reading).to_vec();
                            let mid = bad.len() / 2;
                            bad[mid] ^= 0xff;
                            client.send_raw(&bad).expect("send corrupt frame");
                        }
                        Delivery::Delivered => client.send(&reading).expect("send frame"),
                    }
                }
                client.finish().expect("close device");
            })
        })
        .collect();
    for c in clients {
        c.join().expect("device thread");
    }

    let output = gateway.finish().expect("drain gateway");
    println!("{}", output.stats.report("gateway_ingest").render_text());

    let merged = output.merged_trace();
    println!("cleaned output, last epoch:");
    if let Some((epoch, batch)) = merged.last() {
        for t in batch.iter().take(8) {
            println!("  {epoch}  {:?}", t.values());
        }
        if batch.len() > 8 {
            println!("  … {} more tuples", batch.len() - 8);
        }
    }
}
