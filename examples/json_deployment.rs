//! The paper's configurability claim, taken literally: an entire cleaning
//! deployment — granules, proximity groups, and the stage cascade with an
//! embedded CQL stage — expressed as one JSON document, run against the §4
//! shelf scenario. Reconfiguring for a new deployment means editing this
//! string, not writing Rust.
//!
//! Run: `cargo run --release -p esp-examples --bin json_deployment`

use std::collections::HashSet;

use esp_core::{DeploymentSpec, EspProcessor, ReceptorBinding};
use esp_metrics::average_relative_error;
use esp_query::Engine;
use esp_receptors::rfid::ShelfScenario;
use esp_types::{ReceptorType, Ts, Value};

const DEPLOYMENT: &str = r#"{
    "temporal_granule": "5 sec",
    "groups": [
        { "granule": "shelf0", "receptor_type": "rfid", "members": [0] },
        { "granule": "shelf1", "receptor_type": "rfid", "members": [1] }
    ],
    "stages": [
        { "declarative": {
            "scope": "per_receptor",
            "label": "smooth(Q2)",
            "query": "SELECT spatial_granule, tag_id, count(*) FROM smooth_input [Range By '5 sec'] GROUP BY spatial_granule, tag_id"
        } },
        { "arbitrate": { "tie_break": { "priority": ["shelf1", "shelf0"] } } }
    ]
}"#;

fn main() {
    let spec = DeploymentSpec::from_json(DEPLOYMENT).expect("valid deployment document");
    println!(
        "deployed from JSON: granule {}, {} groups, {} stages",
        spec.granule().unwrap().granule(),
        spec.groups.len(),
        spec.stages.len()
    );

    let scenario = ShelfScenario::paper(41);
    let period = scenario.config().sample_period;
    let engine = Engine::new();
    let pipeline = spec.build_pipeline(&engine).expect("pipeline builds");
    let groups = spec.build_groups().expect("groups build");
    let receptors = scenario
        .sources()
        .into_iter()
        .map(|(id, src)| ReceptorBinding::new(id, ReceptorType::Rfid, src))
        .collect();
    let processor = EspProcessor::build(groups, &pipeline, receptors).expect("deployment");
    let out = processor
        .run(Ts::ZERO, period, 120 * 1000 / period.as_millis())
        .expect("pipeline runs");

    let mut pairs = Vec::new();
    for (epoch, batch) in &out.trace {
        for shelf in 0..2 {
            let tags: HashSet<&str> = batch
                .iter()
                .filter(|t| {
                    t.get("spatial_granule").and_then(Value::as_str)
                        == Some(format!("shelf{shelf}").as_str())
                })
                .filter_map(|t| t.get("tag_id").and_then(Value::as_str))
                .collect();
            pairs.push((tags.len() as f64, scenario.true_count(shelf, *epoch) as f64));
        }
    }
    println!(
        "average relative error of the JSON-configured pipeline: {:.4} (paper: 0.04)",
        average_relative_error(pairs)
    );
}
